#include "serve/sim.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "arch/cost_model.hpp"
#include "arch/registry.hpp"
#include "cms/engine.hpp"
#include "cms/programs.hpp"
#include "common/error.hpp"
#include "core/presets.hpp"
#include "core/tco.hpp"
#include "opt/opt.hpp"
#include "treecode/parallel.hpp"
#include "treecode/perf.hpp"
#include "wcet/wcet.hpp"

namespace bladed::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0x7C;  // field separator so {"a","bc"} != {"ab","c"}
  h *= kFnvPrime;
}

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

/// Field extraction helpers: each checks type + range and reports a precise
/// 400 reason.
struct FieldReader {
  std::string* error;
  bool ok = true;

  bool want_int(const Json& v, const char* name, std::int64_t lo,
                std::int64_t hi, std::int64_t* out) {
    if (!ok) return false;
    if (!v.is_number() || v.as_number() != std::floor(v.as_number())) {
      *error = std::string("field '") + name + "' must be an integer";
      ok = false;
      return false;
    }
    const double d = v.as_number();
    if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
      *error = std::string("field '") + name + "' out of range [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]";
      ok = false;
      return false;
    }
    *out = static_cast<std::int64_t>(d);
    return true;
  }

  bool want_number(const Json& v, const char* name, double lo, double hi,
                   double* out) {
    if (!ok) return false;
    if (!v.is_number()) {
      *error = std::string("field '") + name + "' must be a number";
      ok = false;
      return false;
    }
    if (v.as_number() < lo || v.as_number() > hi) {
      *error = std::string("field '") + name + "' out of range";
      ok = false;
      return false;
    }
    *out = v.as_number();
    return true;
  }

  bool want_bool(const Json& v, const char* name, bool* out) {
    if (!ok) return false;
    if (!v.is_bool()) {
      *error = std::string("field '") + name + "' must be a boolean";
      ok = false;
      return false;
    }
    *out = v.as_bool();
    return true;
  }

  bool want_string(const Json& v, const char* name, std::string* out) {
    if (!ok) return false;
    if (!v.is_string()) {
      *error = std::string("field '") + name + "' must be a string";
      ok = false;
      return false;
    }
    *out = v.as_string();
    return true;
  }
};

[[nodiscard]] std::string known_archs() {
  std::string names;
  for (const arch::ProcessorModel& m : arch::all_processors()) {
    if (!names.empty()) names += ", ";
    names += m.short_name;
  }
  return names;
}

[[nodiscard]] Json tco_json(const core::Tco& t) {
  Json out = Json::object();
  out.set("hardware", t.hardware.value())
      .set("software", t.software.value())
      .set("sysadmin", t.sysadmin.value())
      .set("power_cooling", t.power_cooling.value())
      .set("space", t.space.value())
      .set("downtime", t.downtime.value())
      .set("acquisition", t.acquisition().value())
      .set("operating", t.operating().value())
      .set("total", t.total().value());
  return out;
}

/// Preset cluster whose registered CPU is `arch` (the 24-node chassis the
/// paper prices), or nullopt.
[[nodiscard]] std::optional<core::ClusterSpec> preset_for_arch(
    const std::string& arch_name) {
  const arch::ProcessorModel* cpu = nullptr;
  try {
    cpu = &arch::by_short_name(arch_name);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
  for (const core::ClusterSpec& s : core::table5_clusters()) {
    if (s.cpu == cpu) return s;
  }
  if (core::metablade2().cpu == cpu) return core::metablade2();
  if (core::avalon().cpu == cpu) return core::avalon();
  if (core::green_destiny().cpu == cpu) return core::green_destiny();
  if (core::loki().cpu == cpu) return core::loki();
  return std::nullopt;
}

/// Corpus program for a validated "cms" request.
[[nodiscard]] const cms::NamedProgram* corpus_program(
    const std::string& name) {
  static const std::vector<cms::NamedProgram> corpus = cms::prove_corpus();
  for (const cms::NamedProgram& np : corpus) {
    if (np.name == name) return &np;
  }
  return nullptr;
}

/// The program the engine actually executes for a cms request (the
/// optimizer rewrite applied), plus the engine config — shared by the
/// certifier and the runner so the certificate prices exactly what runs.
[[nodiscard]] cms::MorphingConfig cms_engine_config(const SimRequest& req) {
  cms::MorphingConfig cfg = cms::cms_42x();
  cfg.opt_level = req.opt_level;
  cfg.optimizer = opt::engine_optimizer();
  return cfg;
}

[[nodiscard]] cms::Program cms_executed_program(const SimRequest& req,
                                                const cms::NamedProgram& np) {
  if (req.opt_level <= 0) return np.program;
  opt::OptOptions opts;
  opts.level = req.opt_level;
  opts.mem_doubles = np.mem_doubles;
  return opt::optimize(np.program, opts).program;
}

}  // namespace

std::uint64_t SimRequest::config_hash() const {
  std::uint64_t h = kFnvOffset;
  fnv(h, workload);
  fnv(h, arch);
  if (workload == "cms") {
    // Canonical cms key: the program, the pipeline level and the run count
    // are everything that shapes the (deterministic) result.
    fnv(h, program);
    fnv(h, static_cast<std::uint64_t>(opt_level));
    fnv(h, static_cast<std::uint64_t>(steps));
    return h;
  }
  fnv(h, static_cast<std::uint64_t>(ranks));
  fnv(h, static_cast<std::uint64_t>(particles));
  fnv(h, static_cast<std::uint64_t>(steps));
  fnv(h, seed);
  fnv(h, static_cast<std::uint64_t>(ic_kind));
  // host_threads deliberately excluded: results are bit-identical at every
  // compute width, so it must not split the cache key. `years` only shapes
  // the tco workload.
  if (workload == "tco") {
    fnv(h, static_cast<std::uint64_t>(years * 1e6));
  }
  return h;
}

std::string SimRequest::config_hash_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(config_hash()));
  return buf;
}

std::optional<SimRequest> parse_sim_request(const Json& body,
                                            std::string* error) {
  if (!body.is_object()) {
    *error = "request body must be a JSON object";
    return std::nullopt;
  }
  SimRequest req;
  FieldReader r{error};
  for (const auto& [key, v] : body.as_object()) {
    std::int64_t i = 0;
    if (key == "workload") {
      r.want_string(v, "workload", &req.workload);
    } else if (key == "arch") {
      r.want_string(v, "arch", &req.arch);
    } else if (key == "ranks") {
      if (r.want_int(v, "ranks", 1, 64, &i)) req.ranks = static_cast<int>(i);
    } else if (key == "particles") {
      if (r.want_int(v, "particles", 64, 1000000, &i)) req.particles = i;
    } else if (key == "steps") {
      if (r.want_int(v, "steps", 1, 200, &i)) req.steps = static_cast<int>(i);
    } else if (key == "seed") {
      if (r.want_int(v, "seed", 0, 1LL << 53, &i)) {
        req.seed = static_cast<std::uint64_t>(i);
      }
    } else if (key == "ic") {
      if (r.want_int(v, "ic", 0, 2, &i)) req.ic_kind = static_cast<int>(i);
    } else if (key == "host_threads") {
      if (r.want_int(v, "host_threads", 0, 64, &i)) {
        req.host_threads = static_cast<int>(i);
      }
    } else if (key == "years") {
      r.want_number(v, "years", 0.1, 50.0, &req.years);
    } else if (key == "deadline_ms") {
      r.want_number(v, "deadline_ms", 0.0, 3600000.0, &req.deadline_ms);
    } else if (key == "allow_degraded") {
      r.want_bool(v, "allow_degraded", &req.allow_degraded);
    } else if (key == "force") {
      r.want_bool(v, "force", &req.force);
    } else if (key == "tco") {
      r.want_bool(v, "tco", &req.want_tco);
    } else if (key == "program") {
      r.want_string(v, "program", &req.program);
    } else if (key == "opt_level") {
      if (r.want_int(v, "opt_level", 0, 2, &i)) {
        req.opt_level = static_cast<int>(i);
      }
    } else {
      *error = "unknown field '" + key + "'";
      return std::nullopt;
    }
    if (!r.ok) return std::nullopt;
  }
  if (req.workload != "treecode" && req.workload != "tco" &&
      req.workload != "cms") {
    *error = "unknown workload '" + req.workload +
             "' (supported: treecode, tco, cms)";
    return std::nullopt;
  }
  if (req.workload == "cms") {
    if (req.program.empty()) {
      *error = "cms workload requires field 'program'";
      return std::nullopt;
    }
    if (corpus_program(req.program) == nullptr) {
      std::string names;
      for (const cms::NamedProgram& np : cms::prove_corpus()) {
        if (!names.empty()) names += ", ";
        names += np.name;
      }
      *error = "unknown cms program '" + req.program + "' (known: " + names +
               ")";
      return std::nullopt;
    }
  } else if (!req.program.empty()) {
    *error = "field 'program' is only valid for the cms workload";
    return std::nullopt;
  }
  try {
    (void)arch::by_short_name(req.arch);
  } catch (const PreconditionError&) {
    *error = "unknown arch '" + req.arch + "' (known: " + known_archs() + ")";
    return std::nullopt;
  }
  if (req.workload == "tco" && !preset_for_arch(req.arch).has_value()) {
    *error = "no priced cluster preset uses arch '" + req.arch + "'";
    return std::nullopt;
  }
  return req;
}

namespace {

/// The cms workload: `steps` independent fresh-engine runs of the corpus
/// program, each exactly the fresh-start contract the wcet certificate is
/// sound for (the engine is reset between runs — no cross-run cache warmth
/// the static bound would have to model). Cycles are priced into simulated
/// seconds at the request arch's clock.
[[nodiscard]] SimOutcome run_cms(const SimRequest& req,
                                 const std::atomic<bool>* cancel) {
  const cms::NamedProgram* np = corpus_program(req.program);
  BLADED_REQUIRE_MSG(np != nullptr, "cms workload validated without program");
  const cms::Program prog = cms_executed_program(req, *np);
  cms::MorphingConfig cfg = cms_engine_config(req);
  // The rewrite already happened above (the certificate prices its output);
  // running it again inside the engine would double the pipeline work.
  cfg.opt_level = 0;
  cfg.optimizer = nullptr;
  cms::MorphingEngine engine(cfg);
  cms::MorphingStats total;
  for (int step = 0; step < req.steps; ++step) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("cms run cancelled");
    }
    engine.reset();
    cms::MachineState st(np->mem_doubles);
    const cms::MorphingStats s = engine.run(prog, st);
    total.total_cycles += s.total_cycles;
    total.interpret_cycles += s.interpret_cycles;
    total.translate_cycles += s.translate_cycles;
    total.native_cycles += s.native_cycles;
    total.translations += s.translations;
    total.interpreted_instructions += s.interpreted_instructions;
    total.native_block_executions += s.native_block_executions;
  }
  const arch::ProcessorModel& cpu = arch::by_short_name(req.arch);
  const CmsCertification cert = certify_cms(req);

  SimOutcome out;
  out.virtual_seconds =
      static_cast<double>(total.total_cycles) / cpu.clock_hz();
  out.result = Json::object();
  out.result.set("program", req.program)
      .set("opt_level", static_cast<double>(req.opt_level))
      .set("steps", static_cast<double>(req.steps))
      .set("total_cycles", static_cast<double>(total.total_cycles))
      .set("interpret_cycles", static_cast<double>(total.interpret_cycles))
      .set("translate_cycles", static_cast<double>(total.translate_cycles))
      .set("native_cycles", static_cast<double>(total.native_cycles))
      .set("translations", static_cast<double>(total.translations))
      .set("elapsed_seconds", out.virtual_seconds);
  if (cert.bounded) {
    out.result.set("certified_upper_cycles",
                   static_cast<double>(cert.upper_cycles))
        .set("certified_lower_cycles",
             static_cast<double>(cert.lower_cycles));
  }
  return out;
}

}  // namespace

CmsCertification certify_cms(const SimRequest& req) {
  CmsCertification cert;
  if (req.workload != "cms") return cert;
  const cms::NamedProgram* np = corpus_program(req.program);
  if (np == nullptr) return cert;
  const cms::Program prog = cms_executed_program(req, *np);
  const cms::MorphingConfig cfg = cms_engine_config(req);
  const wcet::Certificate c =
      wcet::certify(prog, np->mem_doubles, wcet::CostParams::from(cfg));
  if (!c.valid || !c.bounded) return cert;
  cert.bounded = true;
  const auto steps = static_cast<std::uint64_t>(req.steps);
  const std::uint64_t sat = std::numeric_limits<std::uint64_t>::max();
  cert.upper_cycles = c.tier2.upper != 0 && steps > sat / c.tier2.upper
                          ? sat
                          : steps * c.tier2.upper;
  cert.lower_cycles = steps * c.tier2.lower;
  cert.upper_seconds = static_cast<double>(cert.upper_cycles) /
                       arch::by_short_name(req.arch).clock_hz();
  return cert;
}

SimOutcome run_simulation(const SimRequest& req,
                          const std::atomic<bool>* cancel) {
  if (req.workload == "cms") return run_cms(req, cancel);
  treecode::ParallelConfig cfg;
  cfg.ranks = req.ranks;
  cfg.particles = static_cast<std::size_t>(req.particles);
  cfg.steps = req.steps;
  cfg.seed = req.seed;
  cfg.ic_kind = req.ic_kind;
  cfg.cpu = &arch::by_short_name(req.arch);
  cfg.host_threads = req.host_threads;
  cfg.cancel = cancel;
  const treecode::ParallelResult r = treecode::run_parallel_nbody(cfg);

  SimOutcome out;
  out.virtual_seconds = r.elapsed_seconds;
  Json& res = out.result;
  res = Json::object();
  res.set("elapsed_seconds", r.elapsed_seconds)
      .set("compute_seconds", r.compute_seconds)
      .set("sustained_gflops", r.sustained_gflops)
      .set("mflops_per_proc", r.mflops_per_proc)
      .set("total_flops", static_cast<double>(r.total_flops))
      .set("interactions", static_cast<double>(r.interactions))
      .set("network_bytes", static_cast<double>(r.bytes))
      .set("network_messages", static_cast<double>(r.messages))
      .set("kinetic", r.kinetic)
      .set("potential", r.potential);
  if (req.want_tco) {
    const Json tco = tco_for_arch(req.arch, req.years);
    if (!tco.is_null()) res.set("tco", tco);
  }
  return out;
}

SimOutcome run_inline(const SimRequest& req) {
  BLADED_REQUIRE_MSG(req.inline_workload(),
                     "run_inline on non-inline workload " + req.workload);
  const std::optional<core::ClusterSpec> spec = preset_for_arch(req.arch);
  BLADED_REQUIRE_MSG(spec.has_value(),
                     "tco workload validated without a preset");
  core::CostContext ctx;
  ctx.years = req.years;
  SimOutcome out;
  out.result = Json::object();
  out.result.set("cluster", spec->name)
      .set("nodes", spec->nodes)
      .set("years", req.years)
      .set("total_watts", spec->total_power().value())
      .set("tco", tco_json(core::compute_tco(*spec, ctx)));
  return out;
}

SimOutcome approximate_simulation(const SimRequest& req) {
  if (req.workload == "cms") {
    // The degraded cms answer IS the static certificate: no engine run, the
    // certified bounds bracket what a run would have reported.
    const CmsCertification cert = certify_cms(req);
    SimOutcome out;
    out.result = Json::object();
    out.result.set("program", req.program)
        .set("opt_level", static_cast<double>(req.opt_level))
        .set("steps", static_cast<double>(req.steps))
        .set("model", "wcet-certificate");
    if (cert.bounded) {
      out.result.set("elapsed_seconds", cert.upper_seconds)
          .set("certified_upper_cycles",
               static_cast<double>(cert.upper_cycles))
          .set("certified_lower_cycles",
               static_cast<double>(cert.lower_cycles));
    }
    return out;
  }
  // Estimated interaction count for a Barnes-Hut pass: ~c * log2(N) cell
  // interactions per particle per step (c from the instrumented reference
  // runs; accuracy is secondary — this is the degraded answer).
  const arch::ProcessorModel& cpu = arch::by_short_name(req.arch);
  const double n = static_cast<double>(req.particles);
  const double interactions =
      28.0 * n * std::log2(std::max(2.0, n)) * req.steps;
  const double flops = 38.0 * interactions;
  const double mflops_proc = treecode::single_proc_treecode_mflops(cpu);
  // Parallel efficiency falls with rank count (LET exchange + imbalance);
  // 0.85 at 1 rank sliding toward ~0.6 at 24 matches the Table 2 scaling.
  const double eff =
      std::max(0.5, 0.85 - 0.01 * static_cast<double>(req.ranks));
  const double rate = mflops_proc * 1e6 * req.ranks * eff;
  const double elapsed = flops / std::max(1.0, rate);

  SimOutcome out;
  out.virtual_seconds = 0.0;  // no simulated run happened
  out.result = Json::object();
  out.result.set("elapsed_seconds", elapsed)
      .set("sustained_gflops", flops / std::max(1e-12, elapsed) / 1e9)
      .set("mflops_per_proc", mflops_proc * eff)
      .set("total_flops", flops)
      .set("interactions", interactions)
      .set("model", "analytic-estimate");
  if (req.want_tco) {
    const Json tco = tco_for_arch(req.arch, req.years);
    if (!tco.is_null()) out.result.set("tco", tco);
  }
  return out;
}

Json tco_for_arch(const std::string& arch, double years) {
  const std::optional<core::ClusterSpec> spec = preset_for_arch(arch);
  if (!spec.has_value()) return Json{};
  core::CostContext ctx;
  ctx.years = years;
  Json out = tco_json(core::compute_tco(*spec, ctx));
  out.set("cluster", spec->name).set("years", years);
  return out;
}

}  // namespace bladed::serve
