#pragma once

/// Request schema and execution bridge between the HTTP surface and the
/// simulator: a validated SimRequest (strict field/range checks -> 400s),
/// a canonical FNV-1a config hash (the session/cache key), the real
/// simulation runner (treecode on the virtual cluster, cancellable through
/// simnet::Cluster::Config::cancel), the pure-model TCO evaluation, and the
/// cheap analytic estimator used as the degraded answer under overload.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.hpp"

namespace bladed::serve {

struct SimRequest {
  /// "treecode": real parallel N-body run on the simulated cluster
  ///             (executes on a JobPool worker; cancellable).
  /// "tco":      total-cost-of-ownership model for a preset/derived cluster
  ///             (pure arithmetic; answered inline on the event loop).
  /// "cms":      a corpus CMS program on the morphing engine, `steps`
  ///             independent certified runs (executes on a JobPool worker;
  ///             admission is gated by the bladed::wcet certificate — a
  ///             request whose certified bound already exceeds its deadline
  ///             is refused with 422 before submission).
  std::string workload = "treecode";
  std::string arch = "TM5600";  ///< arch::by_short_name key
  int ranks = 24;
  std::int64_t particles = 4000;
  int steps = 1;
  std::uint64_t seed = 1;
  int ic_kind = 0;
  /// Compute width of this job inside the worker (Cluster host_threads).
  int host_threads = 1;
  double years = 4.0;  ///< TCO operating period
  // cms workload only.
  std::string program;  ///< cms::prove_corpus program name
  int opt_level = 2;    ///< verified pipeline level the engine runs at

  // Per-request serving policy (not part of the config hash).
  double deadline_ms = 0.0;    ///< 0 = server default
  bool allow_degraded = true;  ///< accept cached/approximate under overload
  bool force = false;          ///< bypass the result cache
  bool want_tco = false;       ///< attach the TCO table to a treecode run

  /// True for workloads executed inline on the event loop (no admission).
  [[nodiscard]] bool inline_workload() const { return workload == "tco"; }

  /// FNV-1a over the canonical config fields (everything that changes the
  /// simulation's result; serving policy excluded). Hex-printed in
  /// responses as "config".
  [[nodiscard]] std::uint64_t config_hash() const;
  [[nodiscard]] std::string config_hash_hex() const;
};

/// Parse + validate a /v1/simulate body. Returns std::nullopt and sets
/// `error` (a human-readable 400 reason) on any unknown field, wrong type
/// or out-of-range value — unknown fields are rejected, not ignored, so
/// client typos fail loudly.
[[nodiscard]] std::optional<SimRequest> parse_sim_request(
    const Json& body, std::string* error);

struct SimOutcome {
  Json result;                   ///< response "result" object
  double virtual_seconds = 0.0;  ///< simulated elapsed time (deterministic)
};

/// Execute the (non-inline) simulation for real. Throws CancelledError when
/// `cancel` fires mid-run; may throw SimulationError on internal failure.
[[nodiscard]] SimOutcome run_simulation(const SimRequest& req,
                                        const std::atomic<bool>* cancel);

/// Inline workloads ("tco"): evaluated immediately, microseconds.
[[nodiscard]] SimOutcome run_inline(const SimRequest& req);

/// Analytic stand-in for a treecode run: prices an estimated interaction
/// count through the arch cost model instead of simulating. Used as the
/// degraded answer when the pool is saturated and no cached result exists.
[[nodiscard]] SimOutcome approximate_simulation(const SimRequest& req);

/// TCO table for the preset cluster whose CPU matches `arch` (24-node
/// MetaBlade-style chassis); null Json when no preset uses that CPU.
[[nodiscard]] Json tco_for_arch(const std::string& arch, double years);

/// bladed::wcet certificate for a "cms" request, totalled over its `steps`
/// fresh engine runs and priced in simulated seconds on the request arch's
/// clock. `bounded == false` (non-cms request, or no trip-count license)
/// means there is no static cost statement and admission proceeds as usual.
struct CmsCertification {
  bool bounded = false;
  std::uint64_t upper_cycles = 0;  ///< certified tier-2 total, all steps
  std::uint64_t lower_cycles = 0;
  double upper_seconds = 0.0;  ///< upper_cycles at the arch clock
};

/// Certify the cms workload of `req` (validated request). Deterministic and
/// cheap enough for the event loop; the server memoizes per config hash.
[[nodiscard]] CmsCertification certify_cms(const SimRequest& req);

}  // namespace bladed::serve
