#include "simnet/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "commcheck/recorder.hpp"
#include "common/error.hpp"
#include "fault/crc32.hpp"
#include "hostperf/hostperf.hpp"
#include "mc/shim.hpp"
#include "simnet/comm.hpp"

// Engine concurrency model (see also DESIGN.md §9). Every rank is a real
// thread. Outside the engine (kComputing) ranks run concurrently, bounded by
// the hostperf::ComputeSlots pool; a rank's atomic clock is then a monotonic
// *lower bound* on the virtual time of its next engine transition (user code
// only advances it, via Comm::compute). Every engine op is an arrive/grant
// point: the rank frees its compute slot, parks as kReady and waits for the
// scheduler, which admits parked ranks one at a time ordered by
// (virtual time, rank id) — and only once no still-computing rank could
// arrive at or before that time (its clock lower bound exceeds the grant
// horizon). All shared mutations (link timeline, mailboxes, fault trace,
// message ids) happen inside granted sections, so their order is a pure
// function of virtual time: bit-identical at any host_threads, and identical
// to the historical serial engine, whose scheduler picked the same
// (time, id) order with the arriving rank winning ties against wakes.
//
// The handshake below is written against the mc:: shims (mc/shim.hpp): in
// production builds they are the plain std types; under -DBLADED_MC=ON they
// route through the bladed-mc model checker. Accesses carrying proof
// obligations are tagged with the protocol model that covers them:
//   [mc:handshake]     src/mc/protocols.cpp handshake-order / -progress
//   [mc:recv-fastpath] recv-fastpath model (lock-gated mailbox scan)
//   [mc:slot-pool]     slot-pool model (+ hostperf::ComputeSlots)

namespace bladed::simnet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Thrown into a rank thread to unwind it when the simulation aborts.
struct AbortSim {};
/// Thrown into a rank thread when its node's scheduled crash fires.
struct NodeCrash {};
}  // namespace

struct Cluster::Rank {
  std::thread thread;
  mc::condvar cv;
  State state = State::kIdle;
  /// Virtual clock. Owner-written; lock-free stores from the Comm::compute
  /// fast path make it a live lower bound the scheduler may read while the
  /// rank computes (seq_cst on that handshake, relaxed elsewhere).
  /// [mc:handshake] modeled as the per-rank `clock` cell; the progress
  /// scenario proves the seq_cst store/load pair cannot lose the wakeup.
  mc::atomic<double> clock{0.0};
  /// Whether this thread holds a compute slot (owner thread only).
  bool holds_slot = false;
  // Pending recv match criteria while kBlockedRecv.
  int want_src = kAnySource;
  int want_tag = 0;
  double recv_deadline = kInf;  ///< timeout wake time while kBlockedRecv
  double block_start = 0.0;     ///< clock when the rank blocked (stall report)
  WakeReason wake_reason = WakeReason::kMessage;
  // Fault state.
  bool dead = false;
  double dead_at = kInf;
  double crash_at = kInf;  ///< attempt-local scheduled crash time
  /// Open commcheck barrier event awaiting on_barrier_complete.
  std::size_t barrier_event = static_cast<std::size_t>(-1);
  std::list<Message> mailbox;
  RankStats stats;

  [[nodiscard]] double now() const {
    return clock.load(std::memory_order_relaxed);
  }
  void set_now(double t) { clock.store(t, std::memory_order_relaxed); }
};

struct ClusterImpl {
  /// [mc:handshake][mc:recv-fastpath] the engine lock (`mu` in the models).
  mc::mutex mu;
  /// [mc:handshake] `sched_cv` in the models: parked-rank arrivals and
  /// horizon crossings wake the scheduler through it.
  mc::condvar sched_cv;
  bool abort = false;
  std::exception_ptr error;
  int barrier_waiting = 0;
  std::uint64_t barrier_epoch = 0;
  std::uint64_t next_msg_id = 0;  ///< FT transport sequence numbers
  /// Grant horizon the scheduler is currently blocked on: a computing rank
  /// whose clock crosses it must wake the scheduler (Dekker handshake with
  /// the lock-free Comm::compute path). kInf = scheduler not waiting on it.
  /// [mc:handshake] `threshold` in the models; the seeded bug weak-publish
  /// shows any order below seq_cst here is a lost wakeup.
  mc::atomic<double> sched_threshold{kInf};
  /// Bounded pool of compute-region slots (sized min(host_threads, ranks)).
  hostperf::ComputeSlots slots;
};

Cluster::Cluster(Config cfg)
    : impl_(std::make_unique<ClusterImpl>()),
      links_(cfg.ranks, cfg.network),
      host_threads_(hostperf::resolve_host_threads(cfg.host_threads)),
      record_trace_(cfg.record_trace),
      injector_(cfg.fault),
      recorder_(cfg.recorder),
      cancel_(cfg.cancel) {
  BLADED_REQUIRE_MSG(cfg.ranks > 0, "cluster needs at least one rank");
  BLADED_REQUIRE_MSG(recorder_ == nullptr || recorder_->ranks() == cfg.ranks,
                     "commcheck recorder sized for " +
                         std::to_string(recorder_ ? recorder_->ranks() : 0) +
                         " ranks attached to a " + std::to_string(cfg.ranks) +
                         "-rank cluster");
  ranks_.reserve(cfg.ranks);
  for (int i = 0; i < cfg.ranks; ++i) ranks_.push_back(std::make_unique<Rank>());
}

Cluster::~Cluster() = default;

double Cluster::elapsed_seconds() const {
  double t = 0.0;
  for (const auto& r : ranks_) t = std::max(t, r->stats.finish_time);
  return t;
}

const RankStats& Cluster::stats(int rank) const {
  BLADED_REQUIRE(rank >= 0 && rank < ranks());
  return ranks_[rank]->stats;
}

std::vector<int> Cluster::failed_nodes() const {
  mc::lock_guard lk(impl_->mu);
  std::vector<int> out;
  for (int i = 0; i < ranks(); ++i) {
    if (ranks_[i]->dead) out.push_back(i);
  }
  return out;
}

bool Cluster::node_failed(int rank) const {
  BLADED_REQUIRE(rank >= 0 && rank < ranks());
  mc::lock_guard lk(impl_->mu);
  return ranks_[rank]->dead;
}

void Cluster::die(int r, double at) {
  Rank& me = *ranks_[r];
  me.dead = true;
  me.dead_at = at;
  me.set_now(std::max(me.now(), at));
  ++fault_stats_.crashes;
  fault_trace_.push_back(
      {at, fault::ExecutedFault::Action::kCrash, r, -1, 0});
  throw NodeCrash{};
}

void Cluster::apply_hang_and_crash(int r) {
  if (!injector_.enabled()) return;
  Rank& me = *ranks_[r];
  if (me.dead) throw NodeCrash{};
  const double resume = injector_.hang_end(r, me.now());
  if (resume > me.now()) {
    ++fault_stats_.hangs;
    fault_stats_.hang_seconds += resume - me.now();
    fault_trace_.push_back(
        {me.now(), fault::ExecutedFault::Action::kHang, r, -1, 0});
    me.stats.comm_seconds += resume - me.now();
    me.set_now(resume);
  }
  if (me.crash_at <= me.now()) die(r, me.crash_at);
}

void Cluster::abort_cancelled(int r) {
  ClusterImpl& eng = *impl_;
  Rank& me = *ranks_[r];
  // The caller may hold a compute slot; free it so draining peers that are
  // blocked in ComputeSlots::acquire can unwind too.
  if (me.holds_slot) {
    me.holds_slot = false;
    eng.slots.release();
  }
  mc::lock_guard lk(eng.mu);
  if (!eng.abort) {
    if (!eng.error) {
      eng.error = std::make_exception_ptr(CancelledError(
          "simnet: run cancelled (deadline expired or caller abandoned the "
          "request) at rank " + std::to_string(r) + ", t=" +
          std::to_string(me.now())));
    }
    eng.abort = true;
    eng.sched_cv.notify_all();
    for (auto& rk : ranks_) rk->cv.notify_all();
  }
  throw AbortSim{};
}

mc::unique_lock Cluster::enter_op(int r) {
  ClusterImpl& eng = *impl_;
  Rank& me = *ranks_[r];
  if (cancel_requested()) abort_cancelled(r);
  // [mc:slot-pool] Free the compute slot before parking: a slot holder must
  // never wait on a scheduler grant, or slot waiters could deadlock behind a
  // parked holder. The seeded bug hold-while-parked removes this release and
  // the checker wedges the pool.
  if (me.holds_slot) {
    me.holds_slot = false;
    eng.slots.release();
  }
  mc::unique_lock lk(eng.mu);
  me.state = State::kReady;
  eng.sched_cv.notify_one();
  me.cv.wait(lk, [&] { return me.state == State::kRunning || eng.abort; });
  if (eng.abort) throw AbortSim{};
  apply_hang_and_crash(r);
  return lk;
}

void Cluster::leave_op(int r, mc::unique_lock& lk) {
  ClusterImpl& eng = *impl_;
  Rank& me = *ranks_[r];
  me.state = State::kComputing;
  eng.sched_cv.notify_one();
  lk.unlock();
  // [mc:slot-pool] Re-acquire only after dropping the engine lock, so a slot
  // waiter never blocks the scheduler.
  eng.slots.acquire();
  me.holds_slot = true;
}

Cluster::Wake Cluster::next_wake(int i) const {
  const Rank& me = *ranks_[i];
  Wake w{kInf, WakeReason::kTimeout};
  const auto has_match = [&] {
    return std::any_of(me.mailbox.begin(), me.mailbox.end(),
                       [&](const Message& m) {
                         return (me.want_src == kAnySource ||
                                 m.src == me.want_src) &&
                                m.tag == me.want_tag;
                       });
  };
  if (me.state == State::kBlockedRecv) {
    if (me.recv_deadline < w.t) w = {me.recv_deadline, WakeReason::kTimeout};
    if (injector_.enabled()) {
      // Heartbeat failure detector: a recv that can only be satisfied by
      // dead peers fails `detect_latency` after the (latest) death.
      const double lat = injector_.policy().detect_latency();
      double failed_at = -1.0;
      if (me.want_src >= 0) {
        const Rank& p = *ranks_[me.want_src];
        if (p.dead) failed_at = p.dead_at;
      } else if (ranks_.size() > 1) {
        bool all_dead = true;
        for (std::size_t j = 0; j < ranks_.size(); ++j) {
          if (static_cast<int>(j) == i) continue;
          if (!ranks_[j]->dead) {
            all_dead = false;
            break;
          }
          failed_at = std::max(failed_at, ranks_[j]->dead_at);
        }
        if (!all_dead) failed_at = -1.0;
      }
      if (failed_at >= 0.0 && !has_match()) {
        const double t = std::max(me.now(), failed_at + lat);
        if (t < w.t) w = {t, WakeReason::kPeerFailure};
      }
    }
  }
  if ((me.state == State::kBlockedRecv ||
       me.state == State::kBlockedBarrier) &&
      me.crash_at < kInf && !me.dead) {
    const double t = std::max(me.now(), me.crash_at);
    if (t <= w.t) w = {t, WakeReason::kSelfCrash};
  }
  return w;
}

void Cluster::run(const std::function<void(Comm&)>& program) {
  ClusterImpl& eng = *impl_;
  const int n = ranks();
  // Reset per-run state so a Cluster can be reused.
  {
    mc::lock_guard lk(eng.mu);
    eng.abort = false;
    eng.error = nullptr;
    eng.barrier_waiting = 0;
    eng.next_msg_id = 0;
    eng.sched_threshold.store(kInf, std::memory_order_relaxed);
    eng.slots.reset(std::min(host_threads_, n));
    links_.reset();
    trace_.clear();
    fault_stats_ = fault::FaultStats{};
    fault_trace_.clear();
    for (int i = 0; i < n; ++i) {
      Rank& r = *ranks_[i];
      r.state = State::kComputing;
      r.set_now(0.0);
      r.holds_slot = false;
      r.mailbox.clear();
      r.stats = RankStats{};
      r.recv_deadline = kInf;
      r.block_start = 0.0;
      r.wake_reason = WakeReason::kMessage;
      r.dead = false;
      r.dead_at = kInf;
      r.crash_at = injector_.crash_time(i);
      r.barrier_event = static_cast<std::size_t>(-1);
    }
  }

  for (int i = 0; i < n; ++i) {
    ranks_[i]->thread = std::thread([this, &eng, &program, i] {
      Rank& me = *ranks_[i];
      eng.slots.acquire();
      me.holds_slot = true;
      try {
        Comm comm(*this, i);
        program(comm);
      } catch (const AbortSim&) {
      } catch (const NodeCrash&) {
      } catch (...) {
        mc::lock_guard lk(eng.mu);
        if (!eng.error) eng.error = std::current_exception();
        eng.abort = true;
        for (auto& r : ranks_) r->cv.notify_all();
      }
      if (me.holds_slot) {
        me.holds_slot = false;
        eng.slots.release();
      }
      mc::lock_guard lk(eng.mu);
      me.state = State::kDone;
      me.stats.finish_time = me.now();
      eng.sched_cv.notify_one();
    });
  }

  // Scheduler: grant parked ranks one at a time in (virtual time, rank id)
  // order — but only once no still-computing rank could arrive at or before
  // the grant time — or fire the earliest pending wake deadline (recv
  // timeout, failure detection, scheduled crash) when it is strictly
  // earlier than every arrival.
  {
    mc::unique_lock lk(eng.mu);
    for (;;) {
      if (eng.abort) break;
      // Scheduler-side cancellation point: covers runs where every rank is
      // parked (nothing computing on the host) so no rank-side check fires.
      if (cancel_requested()) {
        if (!eng.error) {
          eng.error = std::make_exception_ptr(CancelledError(
              "simnet: run cancelled (deadline expired or caller abandoned "
              "the request)"));
        }
        eng.abort = true;
        break;
      }
      int ready = -1;
      bool all_done = true;
      int computing = 0;
      for (int i = 0; i < n; ++i) {
        const State s = ranks_[i]->state;
        if (s != State::kDone) all_done = false;
        if (s == State::kComputing) {
          ++computing;
        } else if (s == State::kReady &&
                   (ready == -1 || ranks_[i]->now() < ranks_[ready]->now())) {
          ready = i;
        }
      }
      if (all_done) break;

      int who = -1;
      Wake wake{kInf, WakeReason::kTimeout};
      for (int i = 0; i < n; ++i) {
        const State s = ranks_[i]->state;
        if (s != State::kBlockedRecv && s != State::kBlockedBarrier) continue;
        const Wake w = next_wake(i);
        if (w.t < wake.t) {
          wake = w;
          who = i;
        }
      }

      const double ready_t = ready != -1 ? ranks_[ready]->now() : kInf;
      const double horizon = std::min(ready_t, wake.t);

      if (computing > 0) {
        // [mc:handshake] Dekker handshake with the lock-free Comm::compute
        // path: publish the horizon, then re-read the computing clocks;
        // either a computing rank sees the horizon when it crosses it and
        // wakes us, or we see its advanced clock here. A rank at or below
        // the horizon could still arrive at an earlier (time, id) point, so
        // we must wait for it to arrive or compute past the horizon before
        // committing. Both sides must be seq_cst (W_threshold here, R_clock
        // below): the checker refutes weak-publish and weak-clock variants.
        eng.sched_threshold.store(horizon, std::memory_order_seq_cst);
        double min_lb = kInf;
        for (int i = 0; i < n; ++i) {
          if (ranks_[i]->state == State::kComputing) {
            min_lb = std::min(
                min_lb, ranks_[i]->clock.load(std::memory_order_seq_cst));
          }
        }
        if (min_lb <= horizon) {
          // [mc:handshake] Park with the horizon still published; the
          // no-recheck seeded bug (granting without re-reading the clocks
          // after this wait) breaks (time, id) grant order.
          eng.sched_cv.wait(lk);
          eng.sched_threshold.store(kInf, std::memory_order_seq_cst);
          continue;
        }
        eng.sched_threshold.store(kInf, std::memory_order_seq_cst);
      }

      if (ready != -1 && ready_t <= wake.t) {
        Rank& g = *ranks_[ready];
        g.state = State::kRunning;
        g.cv.notify_all();
        eng.sched_cv.wait(lk, [&] {
          return ranks_[ready]->state != State::kRunning || eng.abort;
        });
        continue;
      }
      if (who != -1) {
        Rank& w = *ranks_[who];
        w.set_now(std::max(w.now(), wake.t));
        w.wake_reason = wake.reason;
        w.state = State::kReady;
        continue;
      }

      // Stall: nobody can run and no deadline is pending. Report which
      // ranks are blocked on what instead of wedging the process.
      std::string msg = "simnet: no rank can make progress";
      std::vector<int> dead;
      char buf[160];
      for (int i = 0; i < n; ++i) {
        const Rank& rk = *ranks_[i];
        switch (rk.state) {
          case State::kBlockedRecv:
            if (rk.want_src == kAnySource) {
              std::snprintf(buf, sizeof buf,
                            "; rank %d blocked in recv(src=any, tag=%d) "
                            "since t=%.6g",
                            i, rk.want_tag, rk.block_start);
            } else {
              std::snprintf(buf, sizeof buf,
                            "; rank %d blocked in recv(src=%d, tag=%d) "
                            "since t=%.6g",
                            i, rk.want_src, rk.want_tag, rk.block_start);
            }
            msg += buf;
            break;
          case State::kBlockedBarrier:
            std::snprintf(buf, sizeof buf,
                          "; rank %d blocked in barrier since t=%.6g", i,
                          rk.block_start);
            msg += buf;
            break;
          case State::kDone:
            if (rk.dead) {
              dead.push_back(i);
              std::snprintf(buf, sizeof buf, "; rank %d crashed at t=%.6g",
                            i, rk.dead_at);
              msg += buf;
            }
            break;
          default:
            break;
        }
      }
      if (!eng.error) {
        if (!dead.empty()) {
          eng.error = std::make_exception_ptr(NodeFailureError(msg, dead));
        } else {
          eng.error = std::make_exception_ptr(SimulationError(msg));
        }
      }
      eng.abort = true;
      break;
    }
    if (eng.abort) {
      for (auto& r : ranks_) r->cv.notify_all();
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (impl_->error) {
    if (recorder_) recorder_->mark_aborted();
    std::rethrow_exception(impl_->error);
  }
}

double Cluster::op_now(int r) {
  // Owner read of the rank's own clock: other threads only write it while
  // this rank is parked, so no lock is needed.
  return ranks_[r]->now();
}

void Cluster::op_compute(int r, double seconds) {
  BLADED_REQUIRE(seconds >= 0.0);
  ClusterImpl& eng = *impl_;
  Rank& me = *ranks_[r];
  if (!injector_.enabled()) {
    // Cooperative cancellation point: compute-bound phases call
    // Comm::compute between kernels, so a cancelled run unwinds within one
    // kernel even when no communication is pending.
    if (cancel_requested()) abort_cancelled(r);
    // [mc:handshake] Lock-free fast path (the rank half of the Dekker
    // handshake): advancing our own clock inside a compute region needs no
    // engine transition — the seq_cst store keeps the scheduler's lower
    // bound live, and crossing a published grant horizon wakes it (the
    // notify is taken under the lock so the wakeup cannot be lost; the
    // weak-clock seeded bug relaxes the store and loses it).
    const double t = me.now() + seconds;
    me.clock.store(t, std::memory_order_seq_cst);
    me.stats.compute_seconds += seconds;
    if (t >= eng.sched_threshold.load(std::memory_order_seq_cst)) {
      mc::lock_guard lk(eng.mu);
      eng.sched_cv.notify_one();
    }
    return;
  }
  // With fault injection on, a hang or crash can fire here and must land in
  // the executed-fault trace in deterministic order: take the full grant.
  auto lk = enter_op(r);
  if (me.crash_at < me.now() + seconds) {
    // Dies mid-computation, at virtual-time precision.
    me.stats.compute_seconds += std::max(0.0, me.crash_at - me.now());
    die(r, me.crash_at);
  }
  me.set_now(me.now() + seconds);
  me.stats.compute_seconds += seconds;
  leave_op(r, lk);
}

void Cluster::deliver(int src, int dst, int tag,
                      std::vector<std::byte> payload, double send_time,
                      double available_at, std::size_t send_event) {
  if (record_trace_) {
    trace_.push_back(
        {send_time, available_at, src, dst, tag, payload.size()});
  }
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.available_at = available_at;
  msg.send_event = send_event;
  msg.payload = std::move(payload);

  Rank& peer = *ranks_[dst];
  const bool matches =
      peer.state == State::kBlockedRecv &&
      (peer.want_src == kAnySource || peer.want_src == src) &&
      peer.want_tag == tag && available_at <= peer.recv_deadline;
  peer.mailbox.push_back(std::move(msg));
  if (matches) {
    peer.wake_reason = WakeReason::kMessage;
    peer.state = State::kReady;
  }
}

void Cluster::ft_send(int r, int dst, int tag, std::vector<std::byte> payload,
                      double depart, std::size_t send_event) {
  using Action = fault::ExecutedFault::Action;
  const fault::TransportPolicy& pol = injector_.policy();
  const std::uint64_t id = impl_->next_msg_id++;
  const std::uint32_t crc = fault::crc32_of(payload);
  const double dst_crash = injector_.crash_time(dst);
  const std::size_t wire_bytes = payload.size() + pol.frame_bytes;

  double t = depart;
  for (int attempt = 0; attempt < pol.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++fault_stats_.retransmits;
      fault_trace_.push_back({t, Action::kRetransmit, r, dst, attempt});
    }
    const fault::FaultInjector::XmitFate fate =
        injector_.xmit(r, dst, t, id, attempt);
    double available = links_.schedule(r, dst, wire_bytes, t);
    if (fate.extra_delay > 0.0) {
      ++fault_stats_.delays;
      fault_stats_.delay_seconds += fate.extra_delay;
      fault_trace_.push_back({t, Action::kDelay, r, dst, attempt});
      available += fate.extra_delay;
    }
    if (fate.dropped || available >= dst_crash) {
      // Lost on the link (or swallowed by a dead NIC): the retransmission
      // timer fires rto * backoff^attempt after this departure.
      ++fault_stats_.drops;
      fault_trace_.push_back({t, Action::kDrop, r, dst, attempt});
      t += pol.retry_delay(attempt);
      continue;
    }
    if (fate.corrupted) {
      std::vector<std::byte> damaged = payload;
      injector_.corrupt_payload(damaged, id, attempt);
      ++fault_stats_.corruptions;
      if (fault::crc32_of(damaged) != crc) {
        // Receiver transport catches the flip via the CRC32 frame, nacks;
        // sender retransmits after the control frame's round trip.
        ++fault_stats_.crc_rejects;
        fault_trace_.push_back({available, Action::kCorrupt, r, dst, attempt});
        t = available + links_.model().latency +
            links_.model().wire_time(pol.frame_bytes);
        continue;
      }
      // CRC collision (astronomically unlikely): delivered damaged.
      deliver(r, dst, tag, std::move(damaged), depart, available, send_event);
      return;
    }
    deliver(r, dst, tag, std::move(payload), depart, available, send_event);
    return;
  }
  ++fault_stats_.messages_lost;
  fault_trace_.push_back({t, Action::kLost, r, dst, pol.max_attempts});
}

void Cluster::op_send(int r, int dst, int tag,
                      std::vector<std::byte> payload) {
  BLADED_REQUIRE_MSG(dst >= 0 && dst < ranks(),
                     "Comm::send destination rank " + std::to_string(dst) +
                         " out of range [0," + std::to_string(ranks()) + ")");
  // The arrival *is* the pre-commit yield of the serial engine: any rank
  // with a smaller (time, id) performs its network actions before we commit
  // link occupancy, keeping the shared LinkTimeline in deterministic order.
  auto lk = enter_op(r);
  Rank& me = *ranks_[r];

  const NetworkModel& net = links_.model();
  me.stats.bytes_sent += payload.size();
  ++me.stats.messages_sent;
  const std::size_t send_event =
      recorder_ ? recorder_->on_send(r, dst, tag, payload.size(), me.now())
                : static_cast<std::size_t>(-1);

  if (dst == r) {
    // Loopback: no network involved; available immediately.
    Message msg;
    msg.src = r;
    msg.tag = tag;
    msg.available_at = me.now();
    msg.send_event = send_event;
    msg.payload = std::move(payload);
    me.mailbox.push_back(std::move(msg));
    leave_op(r, lk);
    return;
  }

  const double depart = me.now() + net.send_overhead;
  me.set_now(depart);
  me.stats.comm_seconds += net.send_overhead;

  if (injector_.enabled()) {
    ft_send(r, dst, tag, std::move(payload), depart, send_event);
    leave_op(r, lk);
    return;
  }
  const double available = links_.schedule(r, dst, payload.size(), depart);
  deliver(r, dst, tag, std::move(payload), depart, available, send_event);
  leave_op(r, lk);
}

std::optional<std::vector<std::byte>> Cluster::op_recv(
    int r, int src, int tag, double timeout, bool timeout_throws,
    std::uint64_t elem_bytes, std::uint64_t elems) {
  BLADED_REQUIRE_MSG(
      src == kAnySource || (src >= 0 && src < ranks()),
      "Comm::recv source rank " + std::to_string(src) + " out of range");
  ClusterImpl& eng = *impl_;
  Rank& me = *ranks_[r];

  // [mc:recv-fastpath] Fast path (no fault injection): scan the mailbox
  // without a grant, but under the engine lock — the plain-mailbox seeded
  // bug drops the lock and the checker flags the scan/deliver data race.
  // Committed messages are always a prefix of the deterministic grant
  // sequence, so if a match is present now it is the same first-in-append-
  // order match every schedule sees; consuming it touches only this rank's
  // state. With the injector on, ops take the full grant so hang/crash
  // effects stay in trace order.
  const bool fast = !injector_.enabled();
  mc::unique_lock lk;
  if (fast) {
    lk = mc::unique_lock(eng.mu);
    if (eng.abort) throw AbortSim{};
  } else {
    lk = enter_op(r);
  }
  bool granted = !fast;  // parked through enter_op / a blocked wake

  double effective = timeout;
  if (effective < 0.0) {
    effective = injector_.enabled() ? injector_.policy().recv_timeout : 0.0;
  }
  const double deadline = effective > 0.0 ? me.now() + effective : kInf;
  const double block_start = me.now();
  const std::size_t recv_event =
      recorder_
          ? recorder_->on_recv_post(r, src, tag, elem_bytes, elems, me.now())
          : static_cast<std::size_t>(-1);

  // Leave the op from whichever mode we are in: a granted rank hands back
  // to the scheduler; a fast-path rank just drops the lock (it still holds
  // its compute slot and never left kComputing).
  const auto finish = [&] {
    if (granted) {
      leave_op(r, lk);
    } else {
      lk.unlock();
    }
  };

  for (;;) {
    auto it = std::find_if(me.mailbox.begin(), me.mailbox.end(),
                           [&](const Message& m) {
                             return (src == kAnySource || m.src == src) &&
                                    m.tag == tag &&
                                    m.available_at <= deadline;
                           });
    if (it != me.mailbox.end()) {
      if (it->available_at > me.now()) {
        me.stats.comm_seconds += it->available_at - me.now();
        me.set_now(it->available_at);
      }
      const double o = links_.model().recv_overhead;
      if (injector_.enabled() && me.crash_at <= me.now() + o) {
        die(r, me.crash_at);
      }
      me.set_now(me.now() + o);
      me.stats.comm_seconds += o;
      std::vector<std::byte> payload = std::move(it->payload);
      if (recorder_) {
        recorder_->on_recv_match(r, recv_event, it->src, it->send_event,
                                 payload.size(), me.now());
      }
      me.mailbox.erase(it);
      finish();
      return payload;
    }
    if (!granted) {
      // About to park: free the compute slot first (see enter_op).
      me.holds_slot = false;
      eng.slots.release();
      granted = true;
    }
    me.want_src = src;
    me.want_tag = tag;
    me.recv_deadline = deadline;
    me.block_start = me.now();
    me.state = State::kBlockedRecv;
    eng.sched_cv.notify_one();
    me.cv.wait(lk, [&] { return me.state == State::kRunning || eng.abort; });
    if (eng.abort) throw AbortSim{};
    me.recv_deadline = kInf;
    switch (me.wake_reason) {
      case WakeReason::kMessage:
        break;  // rescan the mailbox
      case WakeReason::kTimeout: {
        me.stats.comm_seconds += me.now() - block_start;
        if (recorder_) recorder_->on_recv_timeout(r, recv_event, me.now());
        if (!timeout_throws) {
          finish();
          return std::nullopt;
        }
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "Comm::recv timeout: rank %d waited %.6gs for src=%s "
                      "tag=%d",
                      r, me.now() - block_start,
                      src == kAnySource ? "any" : std::to_string(src).c_str(),
                      tag);
        RecvTimeoutError err(buf, r, src, tag, me.now() - block_start);
        finish();
        throw err;
      }
      case WakeReason::kPeerFailure: {
        me.stats.comm_seconds += me.now() - block_start;
        double failed_at = 0.0;
        for (const auto& p : ranks_) {
          if (p->dead) failed_at = std::max(failed_at, p->dead_at);
        }
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "Comm::recv peer failure: rank %d waiting on src=%s "
                      "tag=%d, peer declared dead (failed at t=%.6g)",
                      r, src == kAnySource ? "any" : std::to_string(src).c_str(),
                      tag, failed_at);
        PeerFailureError err(buf, r, src, failed_at);
        finish();
        throw err;
      }
      case WakeReason::kSelfCrash:
        die(r, me.crash_at);
    }
  }
}

void Cluster::op_barrier(int r) {
  ClusterImpl& eng = *impl_;
  auto lk = enter_op(r);
  Rank& me = *ranks_[r];
  const int n = ranks();
  if (recorder_) {
    me.barrier_event = recorder_->on_collective_begin(
        r, commcheck::CollectiveKind::kBarrier, /*root=*/-1, /*elems=*/0,
        me.now());
  }

  ++eng.barrier_waiting;
  if (eng.barrier_waiting < n) {
    const std::uint64_t epoch = eng.barrier_epoch;
    me.block_start = me.now();
    me.state = State::kBlockedBarrier;
    eng.sched_cv.notify_one();
    me.cv.wait(lk, [&] {
      return eng.abort ||
             (me.state == State::kRunning &&
              me.wake_reason == WakeReason::kSelfCrash) ||
             eng.barrier_epoch != epoch;
    });
    if (eng.abort) throw AbortSim{};
    if (me.state == State::kRunning &&
        me.wake_reason == WakeReason::kSelfCrash) {
      --eng.barrier_waiting;
      die(r, me.crash_at);
    }
    // Barrier completed: the last arriver advanced our clock and set us back
    // to kComputing before notifying, so just reclaim a compute slot.
    lk.unlock();
    eng.slots.acquire();
    me.holds_slot = true;
    return;
  }

  // Last arriver completes the barrier: dissemination-barrier cost model,
  // ceil(log2 n) rounds of short messages.
  const NetworkModel& net = links_.model();
  const double rounds = n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 0.0;
  const double cost =
      rounds * (net.latency + net.send_overhead + net.recv_overhead +
                2.0 * net.wire_time(8));
  double t = 0.0;
  for (const auto& rank : ranks_) t = std::max(t, rank->now());
  t += cost;
  for (const auto& rank : ranks_) {
    if (t > rank->now()) {
      rank->stats.comm_seconds += t - rank->now();
      rank->set_now(t);
    }
  }
  eng.barrier_waiting = 0;
  ++eng.barrier_epoch;
  if (recorder_) {
    // Everyone who entered this barrier epoch synchronizes: join clocks.
    std::vector<std::pair<int, std::size_t>> participants;
    participants.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (ranks_[i]->barrier_event != static_cast<std::size_t>(-1)) {
        participants.emplace_back(i, ranks_[i]->barrier_event);
        ranks_[i]->barrier_event = static_cast<std::size_t>(-1);
      }
    }
    recorder_->on_barrier_complete(participants, t);
  }
  for (const auto& rank : ranks_) {
    if (rank->state == State::kBlockedBarrier) {
      rank->wake_reason = WakeReason::kMessage;
      rank->state = State::kComputing;
      rank->cv.notify_all();
    }
  }
  leave_op(r, lk);
}

void Cluster::op_collective_begin(int r, commcheck::CollectiveKind kind,
                                  int root, std::uint64_t elems) {
  // Scope markers run inside the compute region: no engine transition, no
  // engine lock. The recorder's per-rank mutex orders the append against
  // cross-rank readers (recv-match clock joins, barrier completion).
  recorder_->on_collective_begin(r, kind, root, elems, ranks_[r]->now());
}

void Cluster::op_collective_end(int r) {
  recorder_->on_collective_end(r, ranks_[r]->now());
}

}  // namespace bladed::simnet
