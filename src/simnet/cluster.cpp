#include "simnet/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "commcheck/recorder.hpp"
#include "common/error.hpp"
#include "fault/crc32.hpp"
#include "simnet/comm.hpp"

namespace bladed::simnet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Thrown into a rank thread to unwind it when the simulation aborts.
struct AbortSim {};
/// Thrown into a rank thread when its node's scheduled crash fires.
struct NodeCrash {};
}  // namespace

struct Cluster::Rank {
  std::thread thread;
  std::condition_variable cv;
  State state = State::kIdle;
  double clock = 0.0;
  // Pending recv match criteria while kBlockedRecv.
  int want_src = kAnySource;
  int want_tag = 0;
  double recv_deadline = kInf;  ///< timeout wake time while kBlockedRecv
  double block_start = 0.0;     ///< clock when the rank blocked (stall report)
  WakeReason wake_reason = WakeReason::kMessage;
  // Fault state.
  bool dead = false;
  double dead_at = kInf;
  double crash_at = kInf;  ///< attempt-local scheduled crash time
  /// Open commcheck barrier event awaiting on_barrier_complete.
  std::size_t barrier_event = static_cast<std::size_t>(-1);
  std::list<Message> mailbox;
  RankStats stats;
};

struct ClusterImpl {
  std::mutex mu;
  std::condition_variable sched_cv;
  int running = -1;     ///< rank currently executing, -1 = scheduler's turn
  bool abort = false;
  std::exception_ptr error;
  int barrier_waiting = 0;
  std::uint64_t barrier_epoch = 0;
  std::uint64_t next_msg_id = 0;  ///< FT transport sequence numbers
};

Cluster::Cluster(Config cfg)
    : impl_(std::make_unique<ClusterImpl>()),
      links_(cfg.ranks, cfg.network),
      record_trace_(cfg.record_trace),
      injector_(cfg.fault),
      recorder_(cfg.recorder) {
  BLADED_REQUIRE_MSG(cfg.ranks > 0, "cluster needs at least one rank");
  BLADED_REQUIRE_MSG(recorder_ == nullptr || recorder_->ranks() == cfg.ranks,
                     "commcheck recorder sized for " +
                         std::to_string(recorder_ ? recorder_->ranks() : 0) +
                         " ranks attached to a " + std::to_string(cfg.ranks) +
                         "-rank cluster");
  ranks_.reserve(cfg.ranks);
  for (int i = 0; i < cfg.ranks; ++i) ranks_.push_back(std::make_unique<Rank>());
}

Cluster::~Cluster() = default;

double Cluster::elapsed_seconds() const {
  double t = 0.0;
  for (const auto& r : ranks_) t = std::max(t, r->stats.finish_time);
  return t;
}

const RankStats& Cluster::stats(int rank) const {
  BLADED_REQUIRE(rank >= 0 && rank < ranks());
  return ranks_[rank]->stats;
}

std::vector<int> Cluster::failed_nodes() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<int> out;
  for (int i = 0; i < ranks(); ++i) {
    if (ranks_[i]->dead) out.push_back(i);
  }
  return out;
}

bool Cluster::node_failed(int rank) const {
  BLADED_REQUIRE(rank >= 0 && rank < ranks());
  std::lock_guard<std::mutex> lk(impl_->mu);
  return ranks_[rank]->dead;
}

namespace {
/// Called with the engine lock held, on the rank's own thread: hand control
/// back to the scheduler and sleep until rescheduled.
void block_here(std::unique_lock<std::mutex>& lk, ClusterImpl& eng,
                std::condition_variable& my_cv, auto is_running) {
  eng.running = -1;
  eng.sched_cv.notify_one();
  my_cv.wait(lk, [&] { return is_running() || eng.abort; });
  if (eng.abort) throw AbortSim{};
}
}  // namespace

void Cluster::die(int r, double at) {
  Rank& me = *ranks_[r];
  me.dead = true;
  me.dead_at = at;
  me.clock = std::max(me.clock, at);
  ++fault_stats_.crashes;
  fault_trace_.push_back(
      {at, fault::ExecutedFault::Action::kCrash, r, -1, 0});
  throw NodeCrash{};
}

void Cluster::apply_hang_and_crash(int r) {
  if (!injector_.enabled()) return;
  Rank& me = *ranks_[r];
  if (me.dead) throw NodeCrash{};
  const double resume = injector_.hang_end(r, me.clock);
  if (resume > me.clock) {
    ++fault_stats_.hangs;
    fault_stats_.hang_seconds += resume - me.clock;
    fault_trace_.push_back(
        {me.clock, fault::ExecutedFault::Action::kHang, r, -1, 0});
    me.stats.comm_seconds += resume - me.clock;
    me.clock = resume;
  }
  if (me.crash_at <= me.clock) die(r, me.crash_at);
}

Cluster::Wake Cluster::next_wake(int i) const {
  const Rank& me = *ranks_[i];
  Wake w{kInf, WakeReason::kTimeout};
  const auto has_match = [&] {
    return std::any_of(me.mailbox.begin(), me.mailbox.end(),
                       [&](const Message& m) {
                         return (me.want_src == kAnySource ||
                                 m.src == me.want_src) &&
                                m.tag == me.want_tag;
                       });
  };
  if (me.state == State::kBlockedRecv) {
    if (me.recv_deadline < w.t) w = {me.recv_deadline, WakeReason::kTimeout};
    if (injector_.enabled()) {
      // Heartbeat failure detector: a recv that can only be satisfied by
      // dead peers fails `detect_latency` after the (latest) death.
      const double lat = injector_.policy().detect_latency();
      double failed_at = -1.0;
      if (me.want_src >= 0) {
        const Rank& p = *ranks_[me.want_src];
        if (p.dead) failed_at = p.dead_at;
      } else if (ranks_.size() > 1) {
        bool all_dead = true;
        for (std::size_t j = 0; j < ranks_.size(); ++j) {
          if (static_cast<int>(j) == i) continue;
          if (!ranks_[j]->dead) {
            all_dead = false;
            break;
          }
          failed_at = std::max(failed_at, ranks_[j]->dead_at);
        }
        if (!all_dead) failed_at = -1.0;
      }
      if (failed_at >= 0.0 && !has_match()) {
        const double t = std::max(me.clock, failed_at + lat);
        if (t < w.t) w = {t, WakeReason::kPeerFailure};
      }
    }
  }
  if ((me.state == State::kBlockedRecv ||
       me.state == State::kBlockedBarrier) &&
      me.crash_at < kInf && !me.dead) {
    const double t = std::max(me.clock, me.crash_at);
    if (t <= w.t) w = {t, WakeReason::kSelfCrash};
  }
  return w;
}

void Cluster::run(const std::function<void(Comm&)>& program) {
  ClusterImpl& eng = *impl_;
  // Reset per-run state so a Cluster can be reused.
  {
    std::lock_guard<std::mutex> lk(eng.mu);
    eng.running = -1;
    eng.abort = false;
    eng.error = nullptr;
    eng.barrier_waiting = 0;
    eng.next_msg_id = 0;
    links_.reset();
    trace_.clear();
    fault_stats_ = fault::FaultStats{};
    fault_trace_.clear();
    for (int i = 0; i < ranks(); ++i) {
      Rank& r = *ranks_[i];
      r.state = State::kRunnable;
      r.clock = 0.0;
      r.mailbox.clear();
      r.stats = RankStats{};
      r.recv_deadline = kInf;
      r.block_start = 0.0;
      r.wake_reason = WakeReason::kMessage;
      r.dead = false;
      r.dead_at = kInf;
      r.crash_at = injector_.crash_time(i);
      r.barrier_event = static_cast<std::size_t>(-1);
    }
  }

  const int n = ranks();
  for (int i = 0; i < n; ++i) {
    ranks_[i]->thread = std::thread([this, &eng, &program, i] {
      Rank& me = *ranks_[i];
      std::unique_lock<std::mutex> lk(eng.mu);
      me.cv.wait(lk, [&] { return me.state == State::kRunning || eng.abort; });
      if (!eng.abort) {
        lk.unlock();
        try {
          Comm comm(*this, i);
          program(comm);
          lk.lock();
        } catch (const AbortSim&) {
          lk.lock();
        } catch (const NodeCrash&) {
          lk.lock();
        } catch (...) {
          lk.lock();
          if (!eng.error) eng.error = std::current_exception();
          eng.abort = true;
          for (auto& r : ranks_) r->cv.notify_all();
        }
      }
      Rank& self = *ranks_[i];
      self.state = State::kDone;
      self.stats.finish_time = self.clock;
      eng.running = -1;
      eng.sched_cv.notify_one();
    });
  }

  // Scheduler: always resume the runnable rank (or fire the pending wake
  // deadline — recv timeout, failure detection, scheduled crash) with the
  // smallest virtual time.
  {
    std::unique_lock<std::mutex> lk(eng.mu);
    for (;;) {
      int next = -1;
      bool all_done = true;
      for (int i = 0; i < n; ++i) {
        const State s = ranks_[i]->state;
        if (s != State::kDone) all_done = false;
        if (s == State::kRunnable &&
            (next == -1 || ranks_[i]->clock < ranks_[next]->clock)) {
          next = i;
        }
      }
      if (eng.abort || all_done) break;

      int who = -1;
      Wake wake{kInf, WakeReason::kTimeout};
      for (int i = 0; i < n; ++i) {
        const State s = ranks_[i]->state;
        if (s != State::kBlockedRecv && s != State::kBlockedBarrier) continue;
        const Wake w = next_wake(i);
        if (w.t < wake.t) {
          wake = w;
          who = i;
        }
      }

      if (next != -1 && (who == -1 || ranks_[next]->clock <= wake.t)) {
        ranks_[next]->state = State::kRunning;
        eng.running = next;
        ranks_[next]->cv.notify_all();
        eng.sched_cv.wait(lk, [&] { return eng.running == -1; });
        continue;
      }
      if (who != -1) {
        Rank& w = *ranks_[who];
        w.clock = std::max(w.clock, wake.t);
        w.wake_reason = wake.reason;
        w.state = State::kRunnable;
        continue;
      }

      // Stall: nobody can run and no deadline is pending. Report which
      // ranks are blocked on what instead of wedging the process.
      std::string msg = "simnet: no rank can make progress";
      std::vector<int> dead;
      char buf[160];
      for (int i = 0; i < n; ++i) {
        const Rank& rk = *ranks_[i];
        switch (rk.state) {
          case State::kBlockedRecv:
            if (rk.want_src == kAnySource) {
              std::snprintf(buf, sizeof buf,
                            "; rank %d blocked in recv(src=any, tag=%d) "
                            "since t=%.6g",
                            i, rk.want_tag, rk.block_start);
            } else {
              std::snprintf(buf, sizeof buf,
                            "; rank %d blocked in recv(src=%d, tag=%d) "
                            "since t=%.6g",
                            i, rk.want_src, rk.want_tag, rk.block_start);
            }
            msg += buf;
            break;
          case State::kBlockedBarrier:
            std::snprintf(buf, sizeof buf,
                          "; rank %d blocked in barrier since t=%.6g", i,
                          rk.block_start);
            msg += buf;
            break;
          case State::kDone:
            if (rk.dead) {
              dead.push_back(i);
              std::snprintf(buf, sizeof buf, "; rank %d crashed at t=%.6g",
                            i, rk.dead_at);
              msg += buf;
            }
            break;
          default:
            break;
        }
      }
      if (!eng.error) {
        if (!dead.empty()) {
          eng.error = std::make_exception_ptr(NodeFailureError(msg, dead));
        } else {
          eng.error = std::make_exception_ptr(SimulationError(msg));
        }
      }
      eng.abort = true;
      for (auto& r : ranks_) r->cv.notify_all();
      break;
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (impl_->error) {
    if (recorder_) recorder_->mark_aborted();
    std::rethrow_exception(impl_->error);
  }
}

double Cluster::op_now(int r) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return ranks_[r]->clock;
}

void Cluster::op_compute(int r, double seconds) {
  BLADED_REQUIRE(seconds >= 0.0);
  std::lock_guard<std::mutex> lk(impl_->mu);
  Rank& me = *ranks_[r];
  apply_hang_and_crash(r);
  if (injector_.enabled() && me.crash_at < me.clock + seconds) {
    // Dies mid-computation, at virtual-time precision.
    me.stats.compute_seconds += std::max(0.0, me.crash_at - me.clock);
    die(r, me.crash_at);
  }
  me.clock += seconds;
  me.stats.compute_seconds += seconds;
}

void Cluster::deliver(int src, int dst, int tag,
                      std::vector<std::byte> payload, double send_time,
                      double available_at, std::size_t send_event) {
  if (record_trace_) {
    trace_.push_back(
        {send_time, available_at, src, dst, tag, payload.size()});
  }
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.available_at = available_at;
  msg.send_event = send_event;
  msg.payload = std::move(payload);

  Rank& peer = *ranks_[dst];
  const bool matches =
      peer.state == State::kBlockedRecv &&
      (peer.want_src == kAnySource || peer.want_src == src) &&
      peer.want_tag == tag && available_at <= peer.recv_deadline;
  peer.mailbox.push_back(std::move(msg));
  if (matches) {
    peer.wake_reason = WakeReason::kMessage;
    peer.state = State::kRunnable;
  }
}

void Cluster::ft_send(int r, int dst, int tag, std::vector<std::byte> payload,
                      double depart, std::size_t send_event) {
  using Action = fault::ExecutedFault::Action;
  const fault::TransportPolicy& pol = injector_.policy();
  const std::uint64_t id = impl_->next_msg_id++;
  const std::uint32_t crc = fault::crc32_of(payload);
  const double dst_crash = injector_.crash_time(dst);
  const std::size_t wire_bytes = payload.size() + pol.frame_bytes;

  double t = depart;
  for (int attempt = 0; attempt < pol.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++fault_stats_.retransmits;
      fault_trace_.push_back({t, Action::kRetransmit, r, dst, attempt});
    }
    const fault::FaultInjector::XmitFate fate =
        injector_.xmit(r, dst, t, id, attempt);
    double available = links_.schedule(r, dst, wire_bytes, t);
    if (fate.extra_delay > 0.0) {
      ++fault_stats_.delays;
      fault_stats_.delay_seconds += fate.extra_delay;
      fault_trace_.push_back({t, Action::kDelay, r, dst, attempt});
      available += fate.extra_delay;
    }
    if (fate.dropped || available >= dst_crash) {
      // Lost on the link (or swallowed by a dead NIC): the retransmission
      // timer fires rto * backoff^attempt after this departure.
      ++fault_stats_.drops;
      fault_trace_.push_back({t, Action::kDrop, r, dst, attempt});
      t += pol.retry_delay(attempt);
      continue;
    }
    if (fate.corrupted) {
      std::vector<std::byte> damaged = payload;
      injector_.corrupt_payload(damaged, id, attempt);
      ++fault_stats_.corruptions;
      if (fault::crc32_of(damaged) != crc) {
        // Receiver transport catches the flip via the CRC32 frame, nacks;
        // sender retransmits after the control frame's round trip.
        ++fault_stats_.crc_rejects;
        fault_trace_.push_back({available, Action::kCorrupt, r, dst, attempt});
        t = available + links_.model().latency +
            links_.model().wire_time(pol.frame_bytes);
        continue;
      }
      // CRC collision (astronomically unlikely): delivered damaged.
      deliver(r, dst, tag, std::move(damaged), depart, available, send_event);
      return;
    }
    deliver(r, dst, tag, std::move(payload), depart, available, send_event);
    return;
  }
  ++fault_stats_.messages_lost;
  fault_trace_.push_back({t, Action::kLost, r, dst, pol.max_attempts});
}

void Cluster::op_send(int r, int dst, int tag,
                      std::vector<std::byte> payload) {
  BLADED_REQUIRE_MSG(dst >= 0 && dst < ranks(),
                     "Comm::send destination rank " + std::to_string(dst) +
                         " out of range [0," + std::to_string(ranks()) + ")");
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];
  apply_hang_and_crash(r);

  // Yield first so that any runnable rank with a smaller clock performs its
  // network actions before we commit link occupancy — keeps the shared
  // LinkTimeline updated in (approximately) nondecreasing time order.
  me.state = State::kRunnable;
  block_here(lk, eng, me.cv, [&] { return me.state == State::kRunning; });

  const NetworkModel& net = links_.model();
  me.stats.bytes_sent += payload.size();
  ++me.stats.messages_sent;
  const std::size_t send_event =
      recorder_ ? recorder_->on_send(r, dst, tag, payload.size(), me.clock)
                : static_cast<std::size_t>(-1);

  if (dst == r) {
    // Loopback: no network involved; available immediately.
    Message msg;
    msg.src = r;
    msg.tag = tag;
    msg.available_at = me.clock;
    msg.send_event = send_event;
    msg.payload = std::move(payload);
    me.mailbox.push_back(std::move(msg));
    return;
  }

  const double depart = me.clock + net.send_overhead;
  me.clock = depart;
  me.stats.comm_seconds += net.send_overhead;

  if (injector_.enabled()) {
    ft_send(r, dst, tag, std::move(payload), depart, send_event);
    return;
  }
  const double available = links_.schedule(r, dst, payload.size(), depart);
  deliver(r, dst, tag, std::move(payload), depart, available, send_event);
}

std::optional<std::vector<std::byte>> Cluster::op_recv(
    int r, int src, int tag, double timeout, bool timeout_throws,
    std::uint64_t elem_bytes, std::uint64_t elems) {
  BLADED_REQUIRE_MSG(
      src == kAnySource || (src >= 0 && src < ranks()),
      "Comm::recv source rank " + std::to_string(src) + " out of range");
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];
  apply_hang_and_crash(r);

  double effective = timeout;
  if (effective < 0.0) {
    effective = injector_.enabled() ? injector_.policy().recv_timeout : 0.0;
  }
  const double deadline = effective > 0.0 ? me.clock + effective : kInf;
  const double block_start = me.clock;
  const std::size_t recv_event =
      recorder_
          ? recorder_->on_recv_post(r, src, tag, elem_bytes, elems, me.clock)
          : static_cast<std::size_t>(-1);

  for (;;) {
    auto it = std::find_if(me.mailbox.begin(), me.mailbox.end(),
                           [&](const Message& m) {
                             return (src == kAnySource || m.src == src) &&
                                    m.tag == tag &&
                                    m.available_at <= deadline;
                           });
    if (it != me.mailbox.end()) {
      if (it->available_at > me.clock) {
        me.stats.comm_seconds += it->available_at - me.clock;
        me.clock = it->available_at;
      }
      const double o = links_.model().recv_overhead;
      if (injector_.enabled() && me.crash_at <= me.clock + o) {
        die(r, me.crash_at);
      }
      me.clock += o;
      me.stats.comm_seconds += o;
      std::vector<std::byte> payload = std::move(it->payload);
      if (recorder_) {
        recorder_->on_recv_match(r, recv_event, it->src, it->send_event,
                                 payload.size(), me.clock);
      }
      me.mailbox.erase(it);
      return payload;
    }
    me.want_src = src;
    me.want_tag = tag;
    me.recv_deadline = deadline;
    me.block_start = me.clock;
    me.state = State::kBlockedRecv;
    block_here(lk, eng, me.cv, [&] { return me.state == State::kRunning; });
    me.recv_deadline = kInf;
    switch (me.wake_reason) {
      case WakeReason::kMessage:
        break;  // rescan the mailbox
      case WakeReason::kTimeout: {
        me.stats.comm_seconds += me.clock - block_start;
        if (recorder_) recorder_->on_recv_timeout(r, recv_event, me.clock);
        if (!timeout_throws) return std::nullopt;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "Comm::recv timeout: rank %d waited %.6gs for src=%s "
                      "tag=%d",
                      r, me.clock - block_start,
                      src == kAnySource ? "any" : std::to_string(src).c_str(),
                      tag);
        throw RecvTimeoutError(buf, r, src, tag, me.clock - block_start);
      }
      case WakeReason::kPeerFailure: {
        me.stats.comm_seconds += me.clock - block_start;
        double failed_at = 0.0;
        for (const auto& p : ranks_) {
          if (p->dead) failed_at = std::max(failed_at, p->dead_at);
        }
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "Comm::recv peer failure: rank %d waiting on src=%s "
                      "tag=%d, peer declared dead (failed at t=%.6g)",
                      r, src == kAnySource ? "any" : std::to_string(src).c_str(),
                      tag, failed_at);
        throw PeerFailureError(buf, r, src, failed_at);
      }
      case WakeReason::kSelfCrash:
        die(r, me.crash_at);
    }
  }
}

void Cluster::op_barrier(int r) {
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];
  apply_hang_and_crash(r);
  const int n = ranks();
  if (recorder_) {
    me.barrier_event = recorder_->on_collective_begin(
        r, commcheck::CollectiveKind::kBarrier, /*root=*/-1, /*elems=*/0,
        me.clock);
  }

  ++eng.barrier_waiting;
  if (eng.barrier_waiting < n) {
    const std::uint64_t epoch = eng.barrier_epoch;
    me.block_start = me.clock;
    me.state = State::kBlockedBarrier;
    block_here(lk, eng, me.cv, [&] {
      return me.state == State::kRunning &&
             (eng.barrier_epoch != epoch ||
              me.wake_reason == WakeReason::kSelfCrash);
    });
    if (me.wake_reason == WakeReason::kSelfCrash) {
      --eng.barrier_waiting;
      die(r, me.crash_at);
    }
    return;
  }

  // Last arriver completes the barrier: dissemination-barrier cost model,
  // ceil(log2 n) rounds of short messages.
  const NetworkModel& net = links_.model();
  const double rounds = n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 0.0;
  const double cost =
      rounds * (net.latency + net.send_overhead + net.recv_overhead +
                2.0 * net.wire_time(8));
  double t = 0.0;
  for (const auto& rank : ranks_) t = std::max(t, rank->clock);
  t += cost;
  for (const auto& rank : ranks_) {
    if (t > rank->clock) {
      rank->stats.comm_seconds += t - rank->clock;
      rank->clock = t;
    }
  }
  eng.barrier_waiting = 0;
  ++eng.barrier_epoch;
  if (recorder_) {
    // Everyone who entered this barrier epoch synchronizes: join clocks.
    std::vector<std::pair<int, std::size_t>> participants;
    participants.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (ranks_[i]->barrier_event != static_cast<std::size_t>(-1)) {
        participants.emplace_back(i, ranks_[i]->barrier_event);
        ranks_[i]->barrier_event = static_cast<std::size_t>(-1);
      }
    }
    recorder_->on_barrier_complete(participants, t);
  }
  for (const auto& rank : ranks_) {
    if (rank->state == State::kBlockedBarrier) {
      rank->wake_reason = WakeReason::kMessage;
      rank->state = State::kRunnable;
      rank->cv.notify_all();
    }
  }
}

void Cluster::op_collective_begin(int r, commcheck::CollectiveKind kind,
                                  int root, std::uint64_t elems) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  recorder_->on_collective_begin(r, kind, root, elems, ranks_[r]->clock);
}

void Cluster::op_collective_end(int r) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  recorder_->on_collective_end(r, ranks_[r]->clock);
}

}  // namespace bladed::simnet
