#include "simnet/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "simnet/comm.hpp"

namespace bladed::simnet {

namespace {
/// Thrown into a rank thread to unwind it when the simulation aborts.
struct AbortSim {};
}  // namespace

struct Cluster::Rank {
  std::thread thread;
  std::condition_variable cv;
  State state = State::kIdle;
  double clock = 0.0;
  // Pending recv match criteria while kBlockedRecv.
  int want_src = kAnySource;
  int want_tag = 0;
  std::list<Message> mailbox;
  RankStats stats;
};

struct ClusterImpl {
  std::mutex mu;
  std::condition_variable sched_cv;
  int running = -1;     ///< rank currently executing, -1 = scheduler's turn
  bool abort = false;
  std::exception_ptr error;
  int barrier_waiting = 0;
  std::uint64_t barrier_epoch = 0;
};

Cluster::Cluster(Config cfg)
    : impl_(std::make_unique<ClusterImpl>()),
      links_(cfg.ranks, cfg.network),
      record_trace_(cfg.record_trace) {
  BLADED_REQUIRE_MSG(cfg.ranks > 0, "cluster needs at least one rank");
  ranks_.reserve(cfg.ranks);
  for (int i = 0; i < cfg.ranks; ++i) ranks_.push_back(std::make_unique<Rank>());
}

Cluster::~Cluster() = default;

double Cluster::elapsed_seconds() const {
  double t = 0.0;
  for (const auto& r : ranks_) t = std::max(t, r->stats.finish_time);
  return t;
}

const RankStats& Cluster::stats(int rank) const {
  BLADED_REQUIRE(rank >= 0 && rank < ranks());
  return ranks_[rank]->stats;
}

namespace {
/// Called with the engine lock held, on the rank's own thread: hand control
/// back to the scheduler and sleep until rescheduled.
void block_here(std::unique_lock<std::mutex>& lk, ClusterImpl& eng,
                std::condition_variable& my_cv, auto is_running) {
  eng.running = -1;
  eng.sched_cv.notify_one();
  my_cv.wait(lk, [&] { return is_running() || eng.abort; });
  if (eng.abort) throw AbortSim{};
}
}  // namespace

void Cluster::run(const std::function<void(Comm&)>& program) {
  ClusterImpl& eng = *impl_;
  // Reset per-run state so a Cluster can be reused.
  {
    std::lock_guard<std::mutex> lk(eng.mu);
    eng.running = -1;
    eng.abort = false;
    eng.error = nullptr;
    eng.barrier_waiting = 0;
    links_.reset();
    trace_.clear();
    for (auto& r : ranks_) {
      r->state = State::kRunnable;
      r->clock = 0.0;
      r->mailbox.clear();
      r->stats = RankStats{};
    }
  }

  const int n = ranks();
  for (int i = 0; i < n; ++i) {
    ranks_[i]->thread = std::thread([this, &eng, &program, i] {
      Rank& me = *ranks_[i];
      std::unique_lock<std::mutex> lk(eng.mu);
      me.cv.wait(lk, [&] { return me.state == State::kRunning || eng.abort; });
      if (!eng.abort) {
        lk.unlock();
        try {
          Comm comm(*this, i);
          program(comm);
          lk.lock();
        } catch (const AbortSim&) {
          lk.lock();
        } catch (...) {
          lk.lock();
          if (!eng.error) eng.error = std::current_exception();
          eng.abort = true;
          for (auto& r : ranks_) r->cv.notify_all();
        }
      }
      Rank& self = *ranks_[i];
      self.state = State::kDone;
      self.stats.finish_time = self.clock;
      eng.running = -1;
      eng.sched_cv.notify_one();
    });
  }

  // Scheduler: always resume the runnable rank with the smallest clock.
  bool deadlock = false;
  {
    std::unique_lock<std::mutex> lk(eng.mu);
    for (;;) {
      int next = -1;
      bool all_done = true;
      for (int i = 0; i < n; ++i) {
        const State s = ranks_[i]->state;
        if (s != State::kDone) all_done = false;
        if (s == State::kRunnable &&
            (next == -1 || ranks_[i]->clock < ranks_[next]->clock)) {
          next = i;
        }
      }
      if (eng.abort || all_done) break;
      if (next == -1) {  // everyone blocked: communication deadlock
        deadlock = true;
        eng.abort = true;
        for (auto& r : ranks_) r->cv.notify_all();
        break;
      }
      ranks_[next]->state = State::kRunning;
      eng.running = next;
      ranks_[next]->cv.notify_all();
      eng.sched_cv.wait(lk, [&] { return eng.running == -1; });
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (impl_->error) std::rethrow_exception(impl_->error);
  if (deadlock) {
    throw SimulationError(
        "simnet: communication deadlock — every rank is blocked and no "
        "message is in flight");
  }
}

double Cluster::op_now(int r) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return ranks_[r]->clock;
}

void Cluster::op_compute(int r, double seconds) {
  BLADED_REQUIRE(seconds >= 0.0);
  std::lock_guard<std::mutex> lk(impl_->mu);
  Rank& me = *ranks_[r];
  me.clock += seconds;
  me.stats.compute_seconds += seconds;
}

void Cluster::op_send(int r, int dst, int tag,
                      std::vector<std::byte> payload) {
  BLADED_REQUIRE(dst >= 0 && dst < ranks());
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];

  // Yield first so that any runnable rank with a smaller clock performs its
  // network actions before we commit link occupancy — keeps the shared
  // LinkTimeline updated in (approximately) nondecreasing time order.
  me.state = State::kRunnable;
  block_here(lk, eng, me.cv, [&] { return me.state == State::kRunning; });

  const NetworkModel& net = links_.model();
  me.stats.bytes_sent += payload.size();
  ++me.stats.messages_sent;

  Message msg;
  msg.src = r;
  msg.tag = tag;

  if (dst == r) {
    // Loopback: no network involved; available immediately.
    msg.available_at = me.clock;
    msg.payload = std::move(payload);
    me.mailbox.push_back(std::move(msg));
    return;
  }

  const double depart = me.clock + net.send_overhead;
  me.clock = depart;
  me.stats.comm_seconds += net.send_overhead;
  msg.available_at = links_.schedule(r, dst, payload.size(), depart);
  if (record_trace_) {
    trace_.push_back(
        {depart, msg.available_at, r, dst, tag, payload.size()});
  }
  msg.payload = std::move(payload);

  Rank& peer = *ranks_[dst];
  const bool matches =
      peer.state == State::kBlockedRecv &&
      (peer.want_src == kAnySource || peer.want_src == r) &&
      peer.want_tag == tag;
  peer.mailbox.push_back(std::move(msg));
  if (matches) peer.state = State::kRunnable;
}

std::vector<std::byte> Cluster::op_recv(int r, int src, int tag) {
  BLADED_REQUIRE(src == kAnySource || (src >= 0 && src < ranks()));
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];

  for (;;) {
    auto it = std::find_if(me.mailbox.begin(), me.mailbox.end(),
                           [&](const Message& m) {
                             return (src == kAnySource || m.src == src) &&
                                    m.tag == tag;
                           });
    if (it != me.mailbox.end()) {
      if (it->available_at > me.clock) {
        me.stats.comm_seconds += it->available_at - me.clock;
        me.clock = it->available_at;
      }
      const double o = links_.model().recv_overhead;
      me.clock += o;
      me.stats.comm_seconds += o;
      std::vector<std::byte> payload = std::move(it->payload);
      me.mailbox.erase(it);
      return payload;
    }
    me.want_src = src;
    me.want_tag = tag;
    me.state = State::kBlockedRecv;
    block_here(lk, eng, me.cv, [&] { return me.state == State::kRunning; });
  }
}

void Cluster::op_barrier(int r) {
  ClusterImpl& eng = *impl_;
  std::unique_lock<std::mutex> lk(eng.mu);
  Rank& me = *ranks_[r];
  const int n = ranks();

  ++eng.barrier_waiting;
  if (eng.barrier_waiting < n) {
    const std::uint64_t epoch = eng.barrier_epoch;
    me.state = State::kBlockedBarrier;
    block_here(lk, eng, me.cv, [&] {
      return eng.barrier_epoch != epoch && me.state == State::kRunning;
    });
    return;
  }

  // Last arriver completes the barrier: dissemination-barrier cost model,
  // ceil(log2 n) rounds of short messages.
  const NetworkModel& net = links_.model();
  const double rounds = n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 0.0;
  const double cost =
      rounds * (net.latency + net.send_overhead + net.recv_overhead +
                2.0 * net.wire_time(8));
  double t = 0.0;
  for (const auto& rank : ranks_) t = std::max(t, rank->clock);
  t += cost;
  for (const auto& rank : ranks_) {
    if (t > rank->clock) {
      rank->stats.comm_seconds += t - rank->clock;
      rank->clock = t;
    }
  }
  eng.barrier_waiting = 0;
  ++eng.barrier_epoch;
  for (const auto& rank : ranks_) {
    if (rank->state == State::kBlockedBarrier) {
      rank->state = State::kRunnable;
      rank->cv.notify_all();
    }
  }
}

}  // namespace bladed::simnet
