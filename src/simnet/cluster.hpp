#pragma once

/// Deterministic virtual-time cluster simulator. Each simulated node (rank)
/// runs a real C++ program on its own thread. Between communication points
/// ranks execute *concurrently* on a bounded worker pool
/// (Config::host_threads compute slots); every engine transition — send,
/// recv, barrier — is an arrive/grant point where the scheduler admits
/// exactly one rank at a time in (virtual time, rank id) order, and a grant
/// at time t only fires once no still-computing rank can arrive at or before
/// t. Host scheduling therefore never decides a Comm match: results, timings
/// and commcheck traces are reproducible bit-for-bit at any host_threads,
/// and identical to the historical one-rank-at-a-time engine. Computation
/// advances a rank's clock explicitly (Comm::compute); messages carry real
/// payloads between ranks while their delivery times come from the
/// star-switch LinkTimeline model.
///
/// This is the substitute for the paper's physical 24-node Fast Ethernet
/// cluster: the communication pattern, payload bytes and overlap structure
/// are those of the real parallel program, and only the per-byte/per-message
/// costs come from the model.
///
/// Fault tolerance (Config::fault.enabled): a seeded FaultSchedule is
/// executed against the run at virtual-time precision — node crashes/hangs,
/// link-drop / corruption / transient-delay windows — and the engine layers a
/// reliable transport under Comm (CRC32 framing, retransmission with
/// exponential backoff, bounded attempts) plus a heartbeat failure detector,
/// so every blocking operation either completes, times out with a typed
/// error, or is reported by the stall detector instead of hanging.

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "mc/shim.hpp"
#include "simnet/network.hpp"

namespace bladed::commcheck {
class Recorder;
enum class CollectiveKind : std::uint8_t;
}  // namespace bladed::commcheck

namespace bladed::simnet {

class Comm;
struct ClusterImpl;  // engine internals (cluster.cpp)

/// Wildcard source for Comm::recv_bytes.
inline constexpr int kAnySource = -1;

/// One point-to-point message, as observed by the (optional) trace.
struct TraceRecord {
  double send_time = 0.0;     ///< sender's clock when the send was issued
  double deliver_time = 0.0;  ///< when the payload became available
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

struct RankStats {
  double compute_seconds = 0.0;  ///< time spent in Comm::compute
  double comm_seconds = 0.0;     ///< overheads + time blocked waiting
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  double finish_time = 0.0;  ///< virtual clock when the program returned
};

class Cluster {
 public:
  struct Config {
    int ranks = 1;
    NetworkModel network = NetworkModel::fast_ethernet();
    /// Record every network message into trace() — for tests, debugging
    /// and communication-timeline analysis. Off by default (costs memory).
    bool record_trace = false;
    /// Fault injection + fault-tolerant transport (off by default: the
    /// engine behaves exactly as the original failure-free simulator).
    fault::FaultPlan fault{};
    /// Non-owning commcheck event recorder; when set, every Comm operation
    /// is recorded with vector clocks for offline protocol verification
    /// (bladed-commcheck). Must outlive the Cluster and be sized to
    /// `ranks`. Null = no recording, zero overhead.
    commcheck::Recorder* recorder = nullptr;
    /// Bound on how many rank threads run user code concurrently between
    /// communication points. 1 (default) serializes compute regions like the
    /// historical engine; 0 resolves via BLADED_HOST_THREADS / the host's
    /// hardware concurrency (hostperf::resolve_host_threads). Results are
    /// bit-identical for every value — only wall-clock changes.
    int host_threads = 1;
    /// Optional cooperative cancellation flag (non-owning; must outlive the
    /// run). When it becomes true — a serve-layer deadline expired, the
    /// client went away, the daemon is draining — every rank aborts at its
    /// next engine transition (and the Comm::compute fast path), and run()
    /// throws CancelledError. Null = never cancelled (zero overhead beyond
    /// one pointer test per op).
    const std::atomic<bool>* cancel = nullptr;
  };

  explicit Cluster(Config cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Execute `program` SPMD on every rank to completion. Throws
  /// SimulationError (with a per-rank stall report) on communication
  /// deadlock, NodeFailureError when progress is impossible because nodes
  /// died; exceptions thrown by the program on any rank — including the
  /// typed PeerFailureError / RecvTimeoutError raised inside Comm calls —
  /// are rethrown here.
  void run(const std::function<void(Comm&)>& program);

  [[nodiscard]] int ranks() const { return static_cast<int>(ranks_.size()); }
  /// Virtual time at which the slowest rank finished (valid after run()).
  [[nodiscard]] double elapsed_seconds() const;
  [[nodiscard]] const RankStats& stats(int rank) const;
  [[nodiscard]] std::uint64_t total_bytes() const {
    return links_.bytes_carried();
  }
  [[nodiscard]] std::uint64_t total_messages() const {
    return links_.messages_carried();
  }
  [[nodiscard]] const NetworkModel& network() const { return links_.model(); }
  /// Effective compute-slot bound (Config::host_threads after resolution).
  [[nodiscard]] int host_threads() const { return host_threads_; }
  /// Message trace (empty unless Config::record_trace); stable order is the
  /// order sends were committed to the link timeline.
  [[nodiscard]] const std::vector<TraceRecord>& trace() const {
    return trace_;
  }

  // --- fault observability (valid during/after run()) ---------------------

  /// Counters of executed fault actions and recoveries.
  [[nodiscard]] const fault::FaultStats& fault_stats() const {
    return fault_stats_;
  }
  /// Every executed fault action in engine order — the recovery trace; two
  /// runs from one seed produce identical traces.
  [[nodiscard]] const std::vector<fault::ExecutedFault>& fault_trace() const {
    return fault_trace_;
  }
  /// Nodes that crashed during the last run, ascending.
  [[nodiscard]] std::vector<int> failed_nodes() const;
  [[nodiscard]] bool node_failed(int rank) const;

 private:
  friend class Comm;

  struct Message {
    int src = 0;
    int tag = 0;
    std::vector<std::byte> payload;
    double available_at = 0.0;
    /// Index of the sender's commcheck send event (clock join on match).
    std::size_t send_event = static_cast<std::size_t>(-1);
  };

  enum class State {
    kIdle,
    kComputing,  ///< in user code outside the engine; clock is a lower bound
    kReady,      ///< parked at an engine transition, awaiting its grant
    kRunning,    ///< granted: performing an engine op under the lock
    kBlockedRecv,
    kBlockedBarrier,
    kDone,
  };

  /// Why a blocked rank was resumed.
  enum class WakeReason { kMessage, kTimeout, kPeerFailure, kSelfCrash };

  struct Rank;  // defined in cluster.cpp (holds thread + cv)

  // Operations invoked by Comm on the owning rank's thread; all take the
  // engine lock internally.
  void op_compute(int r, double seconds);
  void op_send(int r, int dst, int tag, std::vector<std::byte> payload);
  /// Blocking receive. `timeout` < 0 uses the transport policy's default;
  /// 0 waits forever. On expiry: throws RecvTimeoutError when
  /// `timeout_throws`, else returns nullopt. `elem_bytes`/`elems` describe
  /// the caller's typed expectation for the commcheck recorder (0 = none).
  std::optional<std::vector<std::byte>> op_recv(
      int r, int src, int tag, double timeout = -1.0,
      bool timeout_throws = true, std::uint64_t elem_bytes = 0,
      std::uint64_t elems = 0);
  void op_barrier(int r);
  [[nodiscard]] double op_now(int r);
  /// Cheap recording test for Comm (recorder_ is immutable after
  /// construction, so no lock is needed).
  [[nodiscard]] bool recording() const { return recorder_ != nullptr; }
  // Collective entry/exit markers for the commcheck recorder; only called
  // when recording() is true.
  void op_collective_begin(int r, commcheck::CollectiveKind kind, int root,
                           std::uint64_t elems);
  void op_collective_end(int r);

  /// Pending deadline for a blocked rank (scheduler's wake plan).
  struct Wake {
    double t;  ///< infinity = nothing pending
    WakeReason reason;
  };
  [[nodiscard]] Wake next_wake(int r) const;

  /// Arrive at an engine transition: free the compute slot, park as kReady
  /// and sleep until the scheduler grants this rank in (time, id) order.
  /// Returns holding the engine lock; fault hang/crash effects are applied
  /// inside the granted section so the executed-fault trace stays in grant
  /// (= virtual-time) order. Throws AbortSim when the simulation aborts.
  [[nodiscard]] mc::unique_lock enter_op(int r);
  /// Finish a granted op: return to kComputing, wake the scheduler, drop
  /// the engine lock and re-acquire a compute slot before user code resumes.
  void leave_op(int r, mc::unique_lock& lk);

  /// True once Config::cancel fired (cheap relaxed test; null-safe).
  [[nodiscard]] bool cancel_requested() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  /// Record CancelledError as the run's outcome, wake every thread and
  /// unwind the calling rank. Takes the engine lock itself.
  [[noreturn]] void abort_cancelled(int r);

  // Fault machinery (engine lock held).
  void apply_hang_and_crash(int r);
  [[noreturn]] void die(int r, double at);
  void ft_send(int r, int dst, int tag, std::vector<std::byte> payload,
               double depart, std::size_t send_event);
  void deliver(int r, int dst, int tag, std::vector<std::byte> payload,
               double send_time, double available_at, std::size_t send_event);

  std::unique_ptr<ClusterImpl> impl_;
  LinkTimeline links_;
  int host_threads_ = 1;
  std::vector<std::unique_ptr<Rank>> ranks_;
  bool record_trace_ = false;
  std::vector<TraceRecord> trace_;
  fault::FaultInjector injector_;
  fault::FaultStats fault_stats_;
  std::vector<fault::ExecutedFault> fault_trace_;
  commcheck::Recorder* recorder_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace bladed::simnet
