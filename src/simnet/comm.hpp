#pragma once

/// Rank-side message-passing API, deliberately shaped like the small MPI
/// subset most programs use (LLNL tutorial: "most MPI programs can be written
/// using a dozen or less routines"): send/recv, barrier, broadcast, reduce,
/// allreduce, allgather, gather and alltoall. Payloads are real data; the
/// collectives are built from point-to-point messages (binomial trees, rings,
/// pairwise exchange) so their cost emerges from the network model rather
/// than being asserted.

#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "commcheck/event.hpp"
#include "common/error.hpp"
#include "simnet/cluster.hpp"

namespace bladed::simnet {

class Comm {
 public:
  Comm(Cluster& cluster, int rank) : cluster_(cluster), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return cluster_.ranks(); }
  /// This rank's virtual clock, seconds.
  [[nodiscard]] double now() const { return cluster_.op_now(rank_); }

  /// Advance this rank's clock by `seconds` of computation.
  void compute(double seconds) { cluster_.op_compute(rank_, seconds); }

  // --- point-to-point -----------------------------------------------------

  void send_bytes(int dst, int tag, std::vector<std::byte> payload) {
    cluster_.op_send(rank_, dst, tag, std::move(payload));
  }
  /// Blocking receive; src may be kAnySource. With fault injection enabled
  /// this can throw RecvTimeoutError (transport-policy receive timeout) or
  /// PeerFailureError (the failure detector declared the peer dead).
  std::vector<std::byte> recv_bytes(int src, int tag) {
    return recv_bytes_typed(src, tag, 0, 0);
  }

  /// Receive with an explicit timeout (virtual seconds); returns nullopt on
  /// expiry instead of throwing. `timeout` <= 0 waits forever.
  std::optional<std::vector<std::byte>> recv_bytes_for(int src, int tag,
                                                       double timeout) {
    return cluster_.op_recv(rank_, src, tag, timeout > 0.0 ? timeout : 0.0,
                            /*timeout_throws=*/false);
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send(int dst, int tag, const std::vector<T>& v) {
    std::vector<std::byte> bytes(v.size() * sizeof(T));
    std::memcpy(bytes.data(), v.data(), bytes.size());
    send_bytes(dst, tag, std::move(bytes));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv(int src, int tag) {
    std::vector<std::byte> bytes = recv_bytes_typed(src, tag, sizeof(T), 0);
    BLADED_REQUIRE_MSG(
        bytes.size() % sizeof(T) == 0,
        "Comm::recv payload size mismatch: src=" + src_name(src) +
            " dst=" + std::to_string(rank_) + " tag=" + std::to_string(tag) +
            ": " + std::to_string(bytes.size()) +
            " bytes is not a multiple of element size " +
            std::to_string(sizeof(T)));
    std::vector<T> v(bytes.size() / sizeof(T));
    std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  /// Timed typed receive; nullopt on expiry. `timeout` <= 0 waits forever.
  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::optional<std::vector<T>> recv_for(int src, int tag, double timeout) {
    std::optional<std::vector<std::byte>> bytes =
        cluster_.op_recv(rank_, src, tag, timeout > 0.0 ? timeout : 0.0,
                         /*timeout_throws=*/false, sizeof(T), 0);
    if (!bytes) return std::nullopt;
    BLADED_REQUIRE_MSG(
        bytes->size() % sizeof(T) == 0,
        "Comm::recv_for payload size mismatch: src=" + src_name(src) +
            " dst=" + std::to_string(rank_) + " tag=" + std::to_string(tag) +
            ": " + std::to_string(bytes->size()) +
            " bytes is not a multiple of element size " +
            std::to_string(sizeof(T)));
    std::vector<T> v(bytes->size() / sizeof(T));
    std::memcpy(v.data(), bytes->data(), bytes->size());
    return v;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, int tag, const T& value) {
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    send_bytes(dst, tag, std::move(bytes));
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src, int tag) {
    std::vector<std::byte> bytes = recv_bytes_typed(src, tag, sizeof(T), 1);
    BLADED_REQUIRE_MSG(
        bytes.size() == sizeof(T),
        "Comm::recv_value payload size mismatch: src=" + src_name(src) +
            " dst=" + std::to_string(rank_) + " tag=" + std::to_string(tag) +
            ": got " + std::to_string(bytes.size()) + " bytes, expected " +
            std::to_string(sizeof(T)));
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  // --- collectives ----------------------------------------------------------
  // Every rank must call each collective in the same order; an internal
  // per-rank sequence number keeps concurrent collectives' messages apart.
  // Each collective drops an entry marker into the commcheck recorder (when
  // attached) so the offline analyzer can verify every rank entered the
  // same collective with the same root; the barrier records engine-side,
  // where its completion joins all participants' vector clocks.

  void barrier() { cluster_.op_barrier(rank_); }

  /// Binomial-tree broadcast of a vector from `root`.
  template <class T>
  std::vector<T> bcast(std::vector<T> v, int root) {
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kBcast,
                                root, v.size());
    const int tag = next_tag();
    const int n = size();
    if (n == 1) return v;
    // Work in root-relative rank space so any root uses the rank-0 tree.
    const int rel = (rank() - root + n) % n;
    int rounds = 0;
    while ((1 << rounds) < n) ++rounds;
    if (rel != 0) {
      int hb = 0;
      while ((1 << (hb + 1)) <= rel) ++hb;
      const int parent = (rel - (1 << hb) + root) % n;
      v = recv<T>(parent, tag);
      for (int k = hb + 1; k < rounds; ++k) {
        const int child = rel + (1 << k);
        if (child < n) send((child + root) % n, tag, v);
      }
    } else {
      for (int k = 0; k < rounds; ++k) {
        const int child = 1 << k;
        if (child < n) send((child + root) % n, tag, v);
      }
    }
    return v;
  }

  /// Binomial-tree reduction of a scalar to `root`; every rank must pass the
  /// same op. Returns the reduced value on root, the partial elsewhere.
  template <class T, class Op>
    requires std::is_trivially_copyable_v<T>
  T reduce(T value, Op op, int root) {
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kReduce,
                                root, 1);
    const int tag = next_tag();
    const int n = size();
    const int rel = (rank() - root + n) % n;
    for (int mask = 1; mask < n; mask <<= 1) {
      if (rel & mask) {
        send_value((rel - mask + root) % n, tag, value);
        break;
      }
      if (rel + mask < n) {
        value = op(value, recv_value<T>((rel + mask + root) % n, tag));
      }
    }
    return value;
  }

  /// Reduce-to-0 followed by broadcast; every rank gets the total.
  template <class T, class Op>
  T allreduce(T value, Op op) {
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kAllreduce,
                                0, 1);
    value = reduce(value, op, 0);
    std::vector<T> v = bcast(rank() == 0 ? std::vector<T>{value}
                                         : std::vector<T>{},
                             0);
    return v.at(0);
  }

  /// Elementwise allreduce over equally-sized vectors (binomial reduce to 0,
  /// then broadcast).
  template <class T, class Op>
  std::vector<T> allreduce_vec(std::vector<T> v, Op op) {
    const CollectiveScope scope(*this,
                                commcheck::CollectiveKind::kAllreduceVec, 0,
                                v.size());
    const int tag = next_tag();
    const int n = size();
    const int r = rank();
    for (int mask = 1; mask < n; mask <<= 1) {
      if (r & mask) {
        send(r - mask, tag, v);
        break;
      }
      if (r + mask < n) {
        const std::vector<T> other = recv<T>(r + mask, tag);
        BLADED_REQUIRE_MSG(
            other.size() == v.size(),
            "Comm::allreduce_vec length mismatch: rank " + std::to_string(r) +
                " holds " + std::to_string(v.size()) + " elements but rank " +
                std::to_string(r + mask) + " sent " +
                std::to_string(other.size()));
        for (std::size_t i = 0; i < v.size(); ++i) v[i] = op(v[i], other[i]);
      }
    }
    return bcast(std::move(v), 0);
  }

  /// Ring allgather: returns the concatenation of every rank's vector in
  /// rank order (ranks may contribute different lengths).
  template <class T>
  std::vector<std::vector<T>> allgather(const std::vector<T>& mine) {
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kAllgather,
                                -1, mine.size());
    const int tag = next_tag();
    const int n = size();
    std::vector<std::vector<T>> all(n);
    all[rank()] = mine;
    const int right = (rank() + 1) % n;
    const int left = (rank() - 1 + n) % n;
    int have = rank();  // the block we forward this step
    for (int step = 0; step < n - 1; ++step) {
      send(right, tag, all[have]);
      const int incoming = (have - 1 + n) % n;
      all[incoming] = recv<T>(left, tag);
      have = incoming;
    }
    return all;
  }

  /// Gather every rank's vector at `root` (empty results elsewhere).
  template <class T>
  std::vector<std::vector<T>> gather(const std::vector<T>& mine, int root) {
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kGather,
                                root, mine.size());
    const int tag = next_tag();
    const int n = size();
    std::vector<std::vector<T>> all;
    if (rank() == root) {
      all.resize(n);
      all[root] = mine;
      for (int i = 0; i < n; ++i) {
        if (i != root) all[i] = recv<T>(i, tag);
      }
    } else {
      send(root, tag, mine);
    }
    return all;
  }

  /// Pairwise-exchange alltoall: blocks[i] goes to rank i; returns the
  /// blocks received (blocks[rank()] is kept as-is).
  template <class T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& blocks) {
    const int n = size();
    BLADED_REQUIRE_MSG(static_cast<int>(blocks.size()) == n,
                       "Comm::alltoall on rank " + std::to_string(rank_) +
                           ": got " + std::to_string(blocks.size()) +
                           " blocks for " + std::to_string(n) + " ranks");
    const CollectiveScope scope(*this, commcheck::CollectiveKind::kAlltoall,
                                -1, blocks.size());
    const int tag = next_tag();
    std::vector<std::vector<T>> out(n);
    out[rank()] = blocks[rank()];
    for (int step = 1; step < n; ++step) {
      const int dst = (rank() + step) % n;
      const int src = (rank() - step + n) % n;
      send(dst, tag, blocks[dst]);
      out[src] = recv<T>(src, tag);
    }
    return out;
  }

 private:
  /// RAII collective entry/exit marker for the commcheck recorder. The exit
  /// marker is skipped while unwinding an exception, so a collective a rank
  /// never finished stays visibly open in the trace.
  class CollectiveScope {
   public:
    CollectiveScope(Comm& comm, commcheck::CollectiveKind kind, int root,
                    std::uint64_t elems)
        : comm_(comm),
          active_(comm.cluster_.recording()),
          exceptions_(std::uncaught_exceptions()) {
      if (active_) {
        comm_.cluster_.op_collective_begin(comm_.rank_, kind, root, elems);
      }
    }
    CollectiveScope(const CollectiveScope&) = delete;
    CollectiveScope& operator=(const CollectiveScope&) = delete;
    ~CollectiveScope() {
      if (active_ && std::uncaught_exceptions() == exceptions_) {
        comm_.cluster_.op_collective_end(comm_.rank_);
      }
    }

   private:
    Comm& comm_;
    bool active_;
    int exceptions_;
  };

  /// Shared blocking-receive core; `elem_bytes`/`elems` describe the typed
  /// wrapper's expectation for the commcheck recorder.
  std::vector<std::byte> recv_bytes_typed(int src, int tag,
                                          std::uint64_t elem_bytes,
                                          std::uint64_t elems) {
    std::optional<std::vector<std::byte>> got =
        cluster_.op_recv(rank_, src, tag, /*timeout=*/-1.0,
                         /*timeout_throws=*/true, elem_bytes, elems);
    BLADED_REQUIRE_MSG(got.has_value(),
                       "Comm::recv on rank " + std::to_string(rank_) +
                           ": engine returned no payload without throwing");
    return std::move(*got);
  }

  static std::string src_name(int src) {
    return src == kAnySource ? std::string("any") : std::to_string(src);
  }

  /// Tags >= kCollectiveBase are reserved for collectives.
  static constexpr int kCollectiveBase = 1 << 20;

  int next_tag() {
    return kCollectiveBase + (collective_seq_++ % kCollectiveBase);
  }

  Cluster& cluster_;
  int rank_;
  int collective_seq_ = 0;
};

}  // namespace bladed::simnet
