#include "simnet/network.hpp"

#include <algorithm>

namespace bladed::simnet {

LinkTimeline::LinkTimeline(int nodes, NetworkModel model)
    : model_(model), out_busy_(nodes, 0.0), in_busy_(nodes, 0.0) {
  BLADED_REQUIRE(nodes > 0);
  BLADED_REQUIRE(model_.bandwidth > 0.0);
  BLADED_REQUIRE(model_.latency >= 0.0);
}

void LinkTimeline::reset() {
  std::fill(out_busy_.begin(), out_busy_.end(), 0.0);
  std::fill(in_busy_.begin(), in_busy_.end(), 0.0);
  medium_busy_ = 0.0;
  bytes_carried_ = 0;
  messages_ = 0;
}

double LinkTimeline::schedule(int src, int dst, std::size_t bytes,
                              double depart_time) {
  BLADED_REQUIRE(src >= 0 && src < nodes());
  BLADED_REQUIRE(dst >= 0 && dst < nodes());
  BLADED_REQUIRE_MSG(src != dst, "loopback messages bypass the network");

  const double ser = model_.wire_time(bytes);

  if (model_.topology == Topology::kSharedHub) {
    // One half-duplex collision domain: every transmission in the cluster
    // serializes on the single shared medium.
    const double start = std::max(depart_time, medium_busy_);
    const double end = start + ser;
    medium_busy_ = end;
    bytes_carried_ += bytes + model_.header_bytes;
    ++messages_;
    return end + model_.latency;
  }

  // Serialize on the sender's egress link.
  const double out_start = std::max(depart_time, out_busy_[src]);
  const double out_end = out_start + ser;
  out_busy_[src] = out_end;

  // Store-and-forward switch: forwarding begins after full reception, plus
  // the fixed latency; then serialize on the receiver's ingress link, which
  // is where concurrent senders to one destination queue.
  const double in_start = std::max(out_end + model_.latency, in_busy_[dst]);
  const double in_end = in_start + ser;
  in_busy_[dst] = in_end;

  bytes_carried_ += bytes + model_.header_bytes;
  ++messages_;
  return in_end;
}

}  // namespace bladed::simnet
