#pragma once

/// Network timing model for a switched star topology (the paper's cluster:
/// every node on a 100 Mb/s Fast Ethernet switch). Messages pay a LogGP-style
/// CPU overhead at each end, serialize over the sender's link, cross the
/// switch (store-and-forward), and serialize again over the receiver's link.
/// Per-link busy times model contention: concurrent messages to one receiver
/// queue on its ingress link.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace bladed::simnet {

/// Wiring of the shared medium.
enum class Topology {
  kSwitchedStar,  ///< full-duplex per-port links through a switch (paper)
  kSharedHub,     ///< one half-duplex collision domain (a repeater hub)
};

struct NetworkModel {
  Topology topology = Topology::kSwitchedStar;
  /// One-way switch + stack latency per message (s). TCP/IP over Fast
  /// Ethernet on 2001-era hardware measured ~70-150 us end-to-end.
  double latency = 90e-6;
  /// Effective link bandwidth, bytes/s. 100 Mb/s raw less framing/protocol
  /// overhead.
  double bandwidth = 11.0e6;
  /// CPU time consumed on the sender per message (s).
  double send_overhead = 20e-6;
  /// CPU time consumed on the receiver per message (s).
  double recv_overhead = 20e-6;
  /// Fixed per-message wire overhead (headers), bytes.
  std::size_t header_bytes = 58;

  /// Pure serialization time of a payload on one link.
  [[nodiscard]] double wire_time(std::size_t payload_bytes) const {
    return (static_cast<double>(payload_bytes + header_bytes)) / bandwidth;
  }

  /// Uncontended end-to-end time from send call to data available.
  [[nodiscard]] double uncontended(std::size_t payload_bytes) const {
    return send_overhead + 2.0 * wire_time(payload_bytes) + latency;
  }

  /// 100 Mb/s Fast Ethernet defaults (the paper's cluster).
  static NetworkModel fast_ethernet() { return NetworkModel{}; }
  /// Channel-bonded Fast Ethernet: each RLX ServerBlade carries three
  /// 100 Mb/s interfaces (§1); bonding k of them multiplies link bandwidth
  /// while latency and per-message CPU overheads stay put.
  static NetworkModel fast_ethernet_bonded(int channels) {
    BLADED_REQUIRE(channels >= 1 && channels <= 3);
    NetworkModel n;
    n.bandwidth *= channels;
    return n;
  }
  /// A repeater hub: same Fast Ethernet wire, but every message contends
  /// for one shared half-duplex medium — the budget wiring a 2001 cluster
  /// builder might have been tempted by.
  static NetworkModel fast_ethernet_hub() {
    NetworkModel n;
    n.topology = Topology::kSharedHub;
    return n;
  }
  /// Gigabit-class network for ablation comparisons.
  static NetworkModel gigabit() {
    NetworkModel n;
    n.latency = 35e-6;
    n.bandwidth = 110.0e6;
    n.send_overhead = 12e-6;
    n.recv_overhead = 12e-6;
    return n;
  }
};

/// Tracks per-node link occupancy and computes message delivery times.
class LinkTimeline {
 public:
  LinkTimeline(int nodes, NetworkModel model);

  /// Schedule a `bytes`-byte payload from `src` (whose local clock is
  /// `depart_time`, already including the sender overhead) to `dst`.
  /// Returns the virtual time at which the payload is fully available at the
  /// receiver. Updates both link occupancies.
  double schedule(int src, int dst, std::size_t bytes, double depart_time);

  /// Clear occupancy and counters (a fresh run on the same wiring).
  void reset();

  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] int nodes() const { return static_cast<int>(out_busy_.size()); }

  /// Total bytes that crossed the switch (payload + headers).
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_carried_; }
  [[nodiscard]] std::uint64_t messages_carried() const { return messages_; }

 private:
  NetworkModel model_;
  std::vector<double> out_busy_;  ///< node egress link free-at time
  std::vector<double> in_busy_;   ///< node ingress link free-at time
  double medium_busy_ = 0.0;      ///< shared-hub collision domain free-at
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace bladed::simnet
