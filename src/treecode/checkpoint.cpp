#include "treecode/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "fault/checkpoint.hpp"
#include "simnet/cluster.hpp"
#include "simnet/comm.hpp"
#include "treecode/io.hpp"
#include "treecode/morton.hpp"
#include "treecode/parallel_internal.hpp"
#include "treecode/perf.hpp"

namespace bladed::treecode {

namespace {

std::vector<std::size_t> split_bounds(std::size_t n, int ranks) {
  std::vector<std::size_t> b(static_cast<std::size_t>(ranks) + 1);
  for (int r = 0; r <= ranks; ++r) {
    b[static_cast<std::size_t>(r)] = n * static_cast<std::size_t>(r) /
                                     static_cast<std::size_t>(ranks);
  }
  return b;
}

std::string snapshot_path(const std::string& dir, int version, int rank) {
  return dir + "/ck_v" + std::to_string(version) + "_r" +
         std::to_string(rank) + ".bin";
}

std::vector<std::byte> pack_state(const ParticleSet& p) {
  fault::BlobWriter w;
  w.put_vec(p.x);
  w.put_vec(p.y);
  w.put_vec(p.z);
  w.put_vec(p.vx);
  w.put_vec(p.vy);
  w.put_vec(p.vz);
  w.put_vec(p.m);
  return w.take();
}

ParticleSet unpack_state(const std::vector<std::byte>& blob) {
  fault::BlobReader r(blob);
  ParticleSet p;
  p.x = r.get_vec<double>();
  p.y = r.get_vec<double>();
  p.z = r.get_vec<double>();
  p.vx = r.get_vec<double>();
  p.vy = r.get_vec<double>();
  p.vz = r.get_vec<double>();
  p.m = r.get_vec<double>();
  const std::size_t n = p.x.size();
  BLADED_REQUIRE_MSG(p.y.size() == n && p.z.size() == n &&
                         p.vx.size() == n && p.vy.size() == n &&
                         p.vz.size() == n && p.m.size() == n,
                     "checkpoint blob has inconsistent array lengths");
  p.ax.assign(n, 0.0);
  p.ay.assign(n, 0.0);
  p.az.assign(n, 0.0);
  p.pot.assign(n, 0.0);
  return p;
}

}  // namespace

FtResult run_parallel_nbody_ft(const FtConfig& cfg) {
  const ParallelConfig& base = cfg.base;
  BLADED_REQUIRE_MSG(base.cpu != nullptr, "ParallelConfig.cpu is required");
  BLADED_REQUIRE(base.ranks >= 1);
  BLADED_REQUIRE(base.steps >= 1);
  BLADED_REQUIRE(base.particles >= static_cast<std::size_t>(base.ranks));
  BLADED_REQUIRE(cfg.checkpoint_every >= 0);
  BLADED_REQUIRE(cfg.max_restarts >= 0);
  BLADED_REQUIRE(cfg.restart_penalty_seconds >= 0.0);
  BLADED_REQUIRE(cfg.checkpoint_write_bw > 0.0);

  // Global IC in Morton order, exactly as the fault-free driver builds it.
  ParticleSet global = detail::make_ic(base);
  {
    const BoundingBox box = BoundingBox::containing(global);
    const std::vector<std::uint64_t> keys = morton_keys(global, box);
    global.apply_permutation(sort_permutation(keys));
  }

  FtResult out;
  fault::CheckpointStore store;
  std::atomic<int> committed{-1};      ///< last complete checkpoint version
  std::atomic<int> committed_ranks{0}; ///< rank count that wrote it
  std::atomic<int> ckpt_count{0};
  std::atomic<double> last_commit_time{0.0};  ///< within the current attempt

  double consumed = 0.0;  ///< virtual seconds across attempts + penalties
  int ranks_now = base.ranks;

  for (;;) {
    // Starting state for this attempt: checkpoint slices if a complete
    // version exists (concatenated in rank order — contiguous in global
    // Morton order — then re-split over the current rank count), else IC.
    int start_step = 0;
    std::vector<ParticleSet> start(static_cast<std::size_t>(ranks_now));
    bool from_checkpoint = false;
    if (committed.load() >= 0) {
      const int version = committed.load();
      const int writers = committed_ranks.load();
      ParticleSet whole;
      bool intact = true;
      for (int r = 0; r < writers && intact; ++r) {
        if (!cfg.snapshot_dir.empty()) {
          try {
            whole.append(load_snapshot(
                snapshot_path(cfg.snapshot_dir, version, r)));
          } catch (const SimulationError&) {
            intact = false;  // missing or checksum-rejected snapshot file
          }
        } else {
          const auto blob = store.load(r, version);
          if (!blob) {
            intact = false;  // absent or CRC-rejected blob
          } else {
            whole.append(unpack_state(*blob));
          }
        }
      }
      if (intact) {
        const auto b = split_bounds(whole.size(), ranks_now);
        for (int r = 0; r < ranks_now; ++r) {
          start[static_cast<std::size_t>(r)] =
              whole.slice(b[static_cast<std::size_t>(r)],
                          b[static_cast<std::size_t>(r) + 1]);
        }
        start_step = version;
        from_checkpoint = true;
      }
    }
    if (!from_checkpoint) {
      // No (usable) checkpoint: restart the physics from the beginning.
      const auto b = split_bounds(global.size(), ranks_now);
      for (int r = 0; r < ranks_now; ++r) {
        start[static_cast<std::size_t>(r)] =
            global.slice(b[static_cast<std::size_t>(r)],
                         b[static_cast<std::size_t>(r) + 1]);
      }
      start_step = 0;
    }
    if (out.restarts > 0) out.resumed_from_step = start_step;

    fault::FaultPlan plan;
    plan.enabled = true;
    plan.schedule = cfg.schedule;
    plan.transport = cfg.transport;
    plan.seed = cfg.fault_seed;
    plan.time_offset = consumed;

    simnet::Cluster cluster(
        {.ranks = ranks_now, .network = base.network, .fault = plan,
         .host_threads = base.host_threads});
    std::vector<detail::RankWork> work(static_cast<std::size_t>(ranks_now));
    last_commit_time.store(0.0);

    try {
      cluster.run([&](simnet::Comm& comm) {
        const int r = comm.rank();
        detail::RankWork& w = work[static_cast<std::size_t>(r)];
        w.mine = std::move(start[static_cast<std::size_t>(r)]);

        detail::evaluate_forces(comm, base, w);  // prime accelerations
        const double h = 0.5 * base.dt;
        for (int s = start_step; s < base.steps; ++s) {
          detail::kick(w, h);
          detail::drift(w, base.dt);
          detail::evaluate_forces(comm, base, w);
          detail::kick(w, h);
          comm.compute(arch::estimate_seconds(*base.cpu,
                                              update_profile(w.update_ops)));
          w.update_ops = OpCounter{};

          const int done = s + 1;
          if (cfg.checkpoint_every > 0 &&
              done % cfg.checkpoint_every == 0 && done < base.steps) {
            comm.barrier();  // quiesce: no checkpoint spans in-flight sends
            std::size_t blob_bytes = 0;
            if (!cfg.snapshot_dir.empty()) {
              save_snapshot(w.mine,
                            snapshot_path(cfg.snapshot_dir, done, r));
              blob_bytes = w.mine.size() * 7 * sizeof(double);
            } else {
              std::vector<std::byte> blob = pack_state(w.mine);
              blob_bytes = blob.size();
              store.save(r, done, std::move(blob));
            }
            comm.compute(static_cast<double>(blob_bytes) /
                         cfg.checkpoint_write_bw);
            comm.barrier();  // every rank committed => version is complete
            if (r == 0) {
              committed.store(done);
              committed_ranks.store(comm.size());
              ckpt_count.fetch_add(1);
              last_commit_time.store(comm.now());
            }
          }
        }
        w.kinetic =
            comm.allreduce(w.mine.kinetic_energy(), std::plus<double>{});
        w.potential =
            comm.allreduce(w.mine.potential_energy(), std::plus<double>{});
      });
    } catch (const FaultError&) {
      const double attempt_elapsed = cluster.elapsed_seconds();
      consumed += attempt_elapsed + cfg.restart_penalty_seconds;
      out.lost_virtual_seconds += (attempt_elapsed - last_commit_time.load()) +
                                  cfg.restart_penalty_seconds;
      out.fault_stats += cluster.fault_stats();
      out.fault_trace.insert(out.fault_trace.end(),
                             cluster.fault_trace().begin(),
                             cluster.fault_trace().end());
      const std::vector<int> newly_dead = cluster.failed_nodes();
      out.failed_nodes.insert(out.failed_nodes.end(), newly_dead.begin(),
                              newly_dead.end());
      if (out.restarts >= cfg.max_restarts) throw;
      ++out.restarts;
      ++out.attempts;
      if (cfg.on_node_loss == NodeLossPolicy::kDegrade) {
        ranks_now -= static_cast<int>(newly_dead.size());
        BLADED_REQUIRE_MSG(ranks_now >= 1, "no ranks survived the failures");
      }
      continue;
    }

    // Success: finalize metrics from this attempt, overhead from the whole.
    consumed += cluster.elapsed_seconds();
    out.fault_stats += cluster.fault_stats();
    out.fault_trace.insert(out.fault_trace.end(),
                           cluster.fault_trace().begin(),
                           cluster.fault_trace().end());
    ParallelResult& res = out.result;
    res.elapsed_seconds = cluster.elapsed_seconds();
    res.bytes = cluster.total_bytes();
    res.messages = cluster.total_messages();
    for (int r = 0; r < ranks_now; ++r) {
      const detail::RankWork& w = work[static_cast<std::size_t>(r)];
      const OpCounter all = w.force_ops + w.build_ops;
      res.total_flops += all.flops();
      res.interactions += w.traversal.interactions();
      res.compute_seconds =
          std::max(res.compute_seconds, cluster.stats(r).compute_seconds);
      res.particles_out.append(w.mine);
    }
    res.kinetic = work[0].kinetic;
    res.potential = work[0].potential;
    if (res.elapsed_seconds > 0.0) {
      res.sustained_gflops =
          static_cast<double>(res.total_flops) / res.elapsed_seconds / 1e9;
      res.mflops_per_proc = res.sustained_gflops * 1000.0 / ranks_now;
    }
    out.final_ranks = ranks_now;
    out.checkpoints = ckpt_count.load();
    out.total_virtual_seconds = consumed;
    return out;
  }
}

}  // namespace bladed::treecode
