#pragma once

/// Coordinated checkpoint/restart for the parallel treecode driver, run
/// against the fault-injecting cluster engine. Every `checkpoint_every`
/// steps the ranks synchronize at a barrier, each commits its particle slice
/// (positions, velocities, masses — the full dynamical state; forces are
/// derived and recomputed on restart), and a second barrier marks the
/// version complete. When an injected failure kills the run, the driver
/// restarts from the last complete version — on a replacement node
/// (kReplace, same rank count, bit-identical final state) or on the
/// survivors (kDegrade, fewer ranks) — shifting the fault schedule by the
/// virtual time already consumed so repaired failures do not re-fire.
///
/// The result separates physics (final particle state) from the economics
/// the paper's Table 5 needs: total virtual seconds including recovery,
/// and the virtual seconds actually thrown away (recomputed work plus
/// restart penalties) — the executed input to the DTC model.

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "treecode/parallel.hpp"

namespace bladed::treecode {

enum class NodeLossPolicy {
  kReplace,  ///< restart on the same rank count (crashed node swapped out)
  kDegrade,  ///< restart on the surviving ranks only (graceful degradation)
};

struct FtConfig {
  ParallelConfig base;
  fault::FaultSchedule schedule;  ///< absolute run-timeline fault events
  fault::TransportPolicy transport;
  std::uint64_t fault_seed = 1;
  /// Steps between coordinated checkpoints; 0 = never checkpoint (a failure
  /// restarts the run from scratch).
  int checkpoint_every = 4;
  NodeLossPolicy on_node_loss = NodeLossPolicy::kReplace;
  /// Modelled time to detect + reboot/replace + redeploy after a failure,
  /// charged once per restart on the virtual timeline.
  double restart_penalty_seconds = 1.0;
  /// Modelled checkpoint write bandwidth per rank (bytes/s) — each commit
  /// charges blob_bytes / bandwidth of compute time to the writing rank.
  double checkpoint_write_bw = 20e6;
  int max_restarts = 8;  ///< exceeded => the last FaultError is rethrown
  /// Non-empty: checkpoints go to per-rank binary snapshot files
  /// `<dir>/ck_v<version>_r<rank>.bin` (treecode/io format, FNV-checksummed)
  /// instead of the in-memory CRC32 store.
  std::string snapshot_dir;
};

struct FtResult {
  /// Metrics and final particle state of the successful attempt.
  ParallelResult result;
  int attempts = 1;  ///< 1 = ran through with no restart
  int restarts = 0;
  int checkpoints = 0;        ///< committed coordinated checkpoints
  int resumed_from_step = -1; ///< last restart's resume step (-1 = none)
  int final_ranks = 0;
  /// Virtual seconds of the whole run: every attempt plus restart
  /// penalties. >= result.elapsed_seconds, equal when no faults fired.
  double total_virtual_seconds = 0.0;
  /// Virtual seconds of discarded work: failed-attempt time past the last
  /// commit, plus restart penalties. The executed recovery overhead.
  double lost_virtual_seconds = 0.0;
  fault::FaultStats fault_stats;  ///< accumulated across attempts
  std::vector<fault::ExecutedFault> fault_trace;
  std::vector<int> failed_nodes;  ///< logical rank ids, in failure order
};

/// Run the parallel N-body simulation to completion under the fault plan,
/// restarting from checkpoints as needed. Throws the underlying FaultError
/// if `max_restarts` is exceeded or (kDegrade) no ranks survive.
[[nodiscard]] FtResult run_parallel_nbody_ft(const FtConfig& cfg);

}  // namespace bladed::treecode
