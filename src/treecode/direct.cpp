#include "treecode/direct.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bladed::treecode {

OpCounter compute_forces_direct(ParticleSet& p, const GravityParams& params) {
  const std::size_t n = p.size();
  const double eps2 = params.softening * params.softening;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dx = p.x[j] - p.x[i];
      const double dy = p.y[j] - p.y[i];
      const double dz = p.z[j] - p.z[i];
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double r = std::sqrt(r2);
      const double s = params.G * p.m[j] / (r2 * r);
      ax += s * dx;
      ay += s * dy;
      az += s * dz;
      pot -= s * r2;  // G m / r
    }
    p.ax[i] += ax;
    p.ay[i] += ay;
    p.az[i] += az;
    p.pot[i] += pot;
  }
  const std::uint64_t pairs = static_cast<std::uint64_t>(n) * (n - 1);
  return interaction_ops(RsqrtImpl::kLibm) * pairs;
}

double max_rel_force_error(const ParticleSet& approx,
                           const ParticleSet& exact) {
  BLADED_REQUIRE(approx.size() == exact.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double dax = approx.ax[i] - exact.ax[i];
    const double day = approx.ay[i] - exact.ay[i];
    const double daz = approx.az[i] - exact.az[i];
    const double num =
        std::sqrt(dax * dax + day * day + daz * daz);
    const double den = std::sqrt(exact.ax[i] * exact.ax[i] +
                                 exact.ay[i] * exact.ay[i] +
                                 exact.az[i] * exact.az[i]);
    worst = std::max(worst, num / std::max(den, 1e-12));
  }
  return worst;
}

double rms_force_error(const ParticleSet& approx, const ParticleSet& exact) {
  BLADED_REQUIRE(approx.size() == exact.size());
  BLADED_REQUIRE(approx.size() > 0);
  double err2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double dax = approx.ax[i] - exact.ax[i];
    const double day = approx.ay[i] - exact.ay[i];
    const double daz = approx.az[i] - exact.az[i];
    err2 += dax * dax + day * day + daz * daz;
    ref2 += exact.ax[i] * exact.ax[i] + exact.ay[i] * exact.ay[i] +
            exact.az[i] * exact.az[i];
  }
  return std::sqrt(err2 / std::max(ref2, 1e-300));
}

}  // namespace bladed::treecode
