#include "treecode/direct.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace bladed::treecode {

namespace {
/// Source-loop tile: 4 streams (x,y,z,m) * 8 B * 1024 = 32 KiB, L1-resident
/// across the whole target sweep of the tile.
constexpr std::size_t kSourceTile = 1024;
}  // namespace

OpCounter compute_forces_direct(ParticleSet& p, const GravityParams& params) {
  const std::size_t n = p.size();
  const double eps2 = params.softening * params.softening;
  // Cache-blocked loop interchange: sweep all targets i against one source
  // tile [j0,j1) at a time, carrying each target's partial sums in a scratch
  // array between tiles. The partial is reloaded into a register, extended
  // with the tile's terms in ascending-j order and stored back, so the
  // floating-point add chain per target is exactly the naive loop's
  // (ascending tiles × ascending j within = globally ascending j):
  // bit-identical results, ~n/kSourceTile× fewer source-stream cache misses.
  std::vector<double> ax(n, 0.0), ay(n, 0.0), az(n, 0.0), pot(n, 0.0);
  for (std::size_t j0 = 0; j0 < n; j0 += kSourceTile) {
    const std::size_t j1 = std::min(n, j0 + kSourceTile);
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = p.x[i], yi = p.y[i], zi = p.z[i];
      double axi = ax[i], ayi = ay[i], azi = az[i], poti = pot[i];
      for (std::size_t j = j0; j < j1; ++j) {
        if (j == i) continue;
        const double dx = p.x[j] - xi;
        const double dy = p.y[j] - yi;
        const double dz = p.z[j] - zi;
        const double r2 = dx * dx + dy * dy + dz * dz + eps2;
        const double r = std::sqrt(r2);
        const double s = params.G * p.m[j] / (r2 * r);
        axi += s * dx;
        ayi += s * dy;
        azi += s * dz;
        poti -= s * r2;  // G m / r
      }
      ax[i] = axi;
      ay[i] = ayi;
      az[i] = azi;
      pot[i] = poti;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    p.ax[i] += ax[i];
    p.ay[i] += ay[i];
    p.az[i] += az[i];
    p.pot[i] += pot[i];
  }
  const std::uint64_t pairs = static_cast<std::uint64_t>(n) * (n - 1);
  return interaction_ops(RsqrtImpl::kLibm) * pairs;
}

OpCounter symmetric_interaction_ops() {
  OpCounter o;
  // Shared per pair: deltas 3, r2 2+1(softening); per partner: acc 3, pot 1.
  o.fadd = 14;
  // Shared: squares 3, r2*r 1; per partner: s = f*m 1, s*d 3, pot = s*r2 1.
  o.fmul = 14;
  o.fdiv = 1;   // f = G / (r2*r), shared by both partners
  o.fsqrt = 1;  // r = sqrt(r2), shared
  o.load = 8;   // source x,y,z,m + the partner's four partial sums
  o.store = 4;  // write the partner's partial sums back
  o.iop = 4;
  o.branch = 1;
  return o;
}

OpCounter compute_forces_direct_symmetric(ParticleSet& p,
                                          const GravityParams& params) {
  const std::size_t n = p.size();
  const double eps2 = params.softening * params.softening;
  // Upper-triangle (i<j) sweep with the same source tiling as the full
  // kernel: target i's partial rides in registers across the tile, partner
  // j's partials accumulate through the scratch arrays.
  std::vector<double> ax(n, 0.0), ay(n, 0.0), az(n, 0.0), pot(n, 0.0);
  for (std::size_t j0 = 0; j0 < n; j0 += kSourceTile) {
    const std::size_t j1 = std::min(n, j0 + kSourceTile);
    for (std::size_t i = 0; i + 1 < j1; ++i) {
      const std::size_t js = std::max(j0, i + 1);
      if (js >= j1) continue;
      const double xi = p.x[i], yi = p.y[i], zi = p.z[i];
      const double mi = p.m[i];
      double axi = ax[i], ayi = ay[i], azi = az[i], poti = pot[i];
      for (std::size_t j = js; j < j1; ++j) {
        const double dx = p.x[j] - xi;
        const double dy = p.y[j] - yi;
        const double dz = p.z[j] - zi;
        const double r2 = dx * dx + dy * dy + dz * dz + eps2;
        const double r = std::sqrt(r2);
        const double f = params.G / (r2 * r);
        const double si = f * p.m[j];
        const double sj = f * mi;
        axi += si * dx;
        ayi += si * dy;
        azi += si * dz;
        poti -= si * r2;
        ax[j] -= sj * dx;
        ay[j] -= sj * dy;
        az[j] -= sj * dz;
        pot[j] -= sj * r2;
      }
      ax[i] = axi;
      ay[i] = ayi;
      az[i] = azi;
      pot[i] = poti;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    p.ax[i] += ax[i];
    p.ay[i] += ay[i];
    p.az[i] += az[i];
    p.pot[i] += pot[i];
  }
  const std::uint64_t pairs =
      n >= 2 ? static_cast<std::uint64_t>(n) * (n - 1) / 2 : 0;
  return symmetric_interaction_ops() * pairs;
}

double max_rel_force_error(const ParticleSet& approx,
                           const ParticleSet& exact) {
  BLADED_REQUIRE(approx.size() == exact.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double dax = approx.ax[i] - exact.ax[i];
    const double day = approx.ay[i] - exact.ay[i];
    const double daz = approx.az[i] - exact.az[i];
    const double num =
        std::sqrt(dax * dax + day * day + daz * daz);
    const double den = std::sqrt(exact.ax[i] * exact.ax[i] +
                                 exact.ay[i] * exact.ay[i] +
                                 exact.az[i] * exact.az[i]);
    worst = std::max(worst, num / std::max(den, 1e-12));
  }
  return worst;
}

double rms_force_error(const ParticleSet& approx, const ParticleSet& exact) {
  BLADED_REQUIRE(approx.size() == exact.size());
  BLADED_REQUIRE(approx.size() > 0);
  double err2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double dax = approx.ax[i] - exact.ax[i];
    const double day = approx.ay[i] - exact.ay[i];
    const double daz = approx.az[i] - exact.az[i];
    err2 += dax * dax + day * day + daz * daz;
    ref2 += exact.ax[i] * exact.ax[i] + exact.ay[i] * exact.ay[i] +
            exact.az[i] * exact.az[i];
  }
  return std::sqrt(err2 / std::max(ref2, 1e-300));
}

}  // namespace bladed::treecode
