#pragma once

/// Direct O(N^2) summation — the brute-force reference the treecode is
/// validated against, and the baseline for the accuracy/θ ablation bench.

#include "common/opcount.hpp"
#include "treecode/particle.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {

/// Softened all-pairs forces and potentials (accumulated; zero first).
/// Returns the operation counts under the same conventions as the treecode.
/// Cache-blocked over the source loop; per-target summation order (and so
/// every result bit) is identical to the naive i×j loop.
OpCounter compute_forces_direct(ParticleSet& p, const GravityParams& params);

/// Symmetric i<j direct summation: evaluates each pair once and applies
/// Newton's third law, halving the pair evaluations (n(n-1)/2 instead of
/// n(n-1)). Results agree with compute_forces_direct to rounding (the
/// accumulation order differs); op accounting stays exact —
/// symmetric_interaction_ops() per evaluated pair.
OpCounter compute_forces_direct_symmetric(ParticleSet& p,
                                          const GravityParams& params);

/// Dynamic operations of one symmetric pair evaluation (serves both
/// partners): the shared distance/inverse-cube work is counted once, the
/// per-partner scale/accumulate twice.
[[nodiscard]] OpCounter symmetric_interaction_ops();

/// Max relative acceleration error of `approx` vs `exact` over all particles
/// (|Δa| / |a_exact|, guarding tiny denominators). Note this is dominated by
/// particles whose net force nearly cancels (cluster centers); prefer
/// rms_force_error for accuracy assertions.
[[nodiscard]] double max_rel_force_error(const ParticleSet& approx,
                                         const ParticleSet& exact);

/// RMS acceleration error normalized by the RMS acceleration magnitude —
/// the standard treecode accuracy figure (O(theta^2 .. theta^3) for
/// monopole Barnes–Hut).
[[nodiscard]] double rms_force_error(const ParticleSet& approx,
                                     const ParticleSet& exact);

}  // namespace bladed::treecode
