#pragma once

/// Direct O(N^2) summation — the brute-force reference the treecode is
/// validated against, and the baseline for the accuracy/θ ablation bench.

#include "common/opcount.hpp"
#include "treecode/particle.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {

/// Softened all-pairs forces and potentials (accumulated; zero first).
/// Returns the operation counts under the same conventions as the treecode.
OpCounter compute_forces_direct(ParticleSet& p, const GravityParams& params);

/// Max relative acceleration error of `approx` vs `exact` over all particles
/// (|Δa| / |a_exact|, guarding tiny denominators). Note this is dominated by
/// particles whose net force nearly cancels (cluster centers); prefer
/// rms_force_error for accuracy assertions.
[[nodiscard]] double max_rel_force_error(const ParticleSet& approx,
                                         const ParticleSet& exact);

/// RMS acceleration error normalized by the RMS acceleration magnitude —
/// the standard treecode accuracy figure (O(theta^2 .. theta^3) for
/// monopole Barnes–Hut).
[[nodiscard]] double rms_force_error(const ParticleSet& approx,
                                     const ParticleSet& exact);

}  // namespace bladed::treecode
