#include "treecode/ic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bladed::treecode {

ParticleSet plummer_sphere(std::size_t n, std::uint64_t seed, double mass,
                           double a) {
  BLADED_REQUIRE(n > 0);
  BLADED_REQUIRE(mass > 0.0 && a > 0.0);
  ParticleSet p;
  Rng rng(seed);
  const double mi = mass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile M(r)/M = r^3/(r^2+a^2)^{3/2}.
    const double u = rng.uniform(1e-10, 0.999);  // avoid the tail blow-up
    const double r = a / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Isotropic direction.
    const double ct = rng.uniform(-1.0, 1.0);
    const double st = std::sqrt(1.0 - ct * ct);
    const double phi = rng.uniform(0.0, 2.0 * M_PI);
    p.add(r * st * std::cos(phi), r * st * std::sin(phi), r * ct, mi);

    // Velocity via the Aarseth/Henon/Wielen rejection scheme: f(q) ~
    // q^2 (1-q^2)^{7/2}, v = q * v_escape(r).
    double q, g;
    do {
      q = rng.uniform(0.0, 1.0);
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc =
        std::sqrt(2.0 * mass) * std::pow(r * r + a * a, -0.25);
    const double v = q * vesc;
    const double cvt = rng.uniform(-1.0, 1.0);
    const double svt = std::sqrt(1.0 - cvt * cvt);
    const double vphi = rng.uniform(0.0, 2.0 * M_PI);
    p.vx.back() = v * svt * std::cos(vphi);
    p.vy.back() = v * svt * std::sin(vphi);
    p.vz.back() = v * cvt;
  }

  // Shift to the center-of-mass frame so the cluster stays put.
  const ParticleSet::Com com = p.center_of_mass();
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] -= com.x;
    p.y[i] -= com.y;
    p.z[i] -= com.z;
    p.vx[i] -= com.vx;
    p.vy[i] -= com.vy;
    p.vz[i] -= com.vz;
  }
  return p;
}

ParticleSet uniform_cube(std::size_t n, std::uint64_t seed, double mass,
                         double half) {
  BLADED_REQUIRE(n > 0);
  ParticleSet p;
  Rng rng(seed);
  const double mi = mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.add(rng.uniform(-half, half), rng.uniform(-half, half),
          rng.uniform(-half, half), mi);
  }
  return p;
}

ParticleSet colliding_pair(std::size_t n, std::uint64_t seed,
                           double separation, double closing_speed) {
  BLADED_REQUIRE(n >= 2);
  ParticleSet a = plummer_sphere(n / 2, seed, 0.5, 1.0);
  ParticleSet b = plummer_sphere(n - n / 2, seed ^ 0xabcdef, 0.5, 1.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.x[i] -= 0.5 * separation;
    a.vx[i] += 0.5 * closing_speed;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.x[i] += 0.5 * separation;
    b.vx[i] -= 0.5 * closing_speed;
  }
  a.append(b);
  return a;
}

}  // namespace bladed::treecode
