#pragma once

/// Initial-condition generators: the Plummer sphere (the standard
/// gravitational N-body test model and the shape of the paper's Figure 3
/// simulation at intermediate stages), a uniform cube, and a two-cluster
/// collision setup for the galaxy example.

#include <cstdint>

#include "treecode/particle.hpp"

namespace bladed::treecode {

/// Plummer model with total mass `mass` and scale radius `a`, velocities
/// from the isotropic distribution function, center-of-mass frame.
[[nodiscard]] ParticleSet plummer_sphere(std::size_t n, std::uint64_t seed,
                                         double mass = 1.0, double a = 1.0);

/// Uniformly random positions in [-half, half]^3, equal masses, at rest.
[[nodiscard]] ParticleSet uniform_cube(std::size_t n, std::uint64_t seed,
                                       double mass = 1.0, double half = 1.0);

/// Two Plummer spheres of n/2 particles each, separated by `separation`
/// along x and approaching with relative speed `closing_speed`.
[[nodiscard]] ParticleSet colliding_pair(std::size_t n, std::uint64_t seed,
                                         double separation = 6.0,
                                         double closing_speed = 0.3);

}  // namespace bladed::treecode
