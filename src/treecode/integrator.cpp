#include "treecode/integrator.hpp"

#include "common/error.hpp"

namespace bladed::treecode {

LeapfrogIntegrator::LeapfrogIntegrator(GravityParams gravity,
                                       Octree::Params tree, double dt)
    : gravity_(gravity), tree_params_(tree), dt_(dt) {
  BLADED_REQUIRE(dt > 0.0);
}

void LeapfrogIntegrator::evaluate(ParticleSet& p, StepStats& s) {
  p.zero_accelerations();
  Octree tree = Octree::build(p, tree_params_);
  s.build_ops += tree.build_ops();
  s.traversal += compute_forces(p, tree, gravity_);
}

StepStats LeapfrogIntegrator::step(ParticleSet& p) {
  StepStats s;
  const std::size_t n = p.size();
  if (!primed_) {
    evaluate(p, s);
    primed_ = true;
  }
  const double h = 0.5 * dt_;
  // Kick (half).
  for (std::size_t i = 0; i < n; ++i) {
    p.vx[i] += h * p.ax[i];
    p.vy[i] += h * p.ay[i];
    p.vz[i] += h * p.az[i];
  }
  // Drift.
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] += dt_ * p.vx[i];
    p.y[i] += dt_ * p.vy[i];
    p.z[i] += dt_ * p.vz[i];
  }
  // New forces, then the closing half-kick.
  evaluate(p, s);
  for (std::size_t i = 0; i < n; ++i) {
    p.vx[i] += h * p.ax[i];
    p.vy[i] += h * p.ay[i];
    p.vz[i] += h * p.az[i];
  }
  s.kinetic = p.kinetic_energy();
  s.potential = p.potential_energy();
  return s;
}

StepStats LeapfrogIntegrator::run(ParticleSet& p, int steps) {
  BLADED_REQUIRE(steps >= 1);
  StepStats total;
  for (int i = 0; i < steps; ++i) {
    const StepStats s = step(p);
    total.traversal += s.traversal;
    total.build_ops += s.build_ops;
    total.kinetic = s.kinetic;      // energies are snapshots, keep the last
    total.potential = s.potential;
  }
  return total;
}

}  // namespace bladed::treecode
