#pragma once

/// Leapfrog (kick-drift-kick) time integration with a tree rebuild and force
/// evaluation per step — the loop structure of the paper's production N-body
/// runs. Tracks per-step interaction statistics and energies.

#include "treecode/traverse.hpp"

namespace bladed::treecode {

struct StepStats {
  TraversalStats traversal;
  OpCounter build_ops;
  double kinetic = 0.0;
  double potential = 0.0;
  [[nodiscard]] double total_energy() const { return kinetic + potential; }
};

class LeapfrogIntegrator {
 public:
  LeapfrogIntegrator(GravityParams gravity, Octree::Params tree, double dt);

  /// Advance `p` by one step; the first call performs the initial force
  /// evaluation. Returns the step's statistics (energies computed from the
  /// tree-approximated potential).
  StepStats step(ParticleSet& p);

  /// Run `steps` steps, returning the accumulated statistics.
  StepStats run(ParticleSet& p, int steps);

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const GravityParams& gravity() const { return gravity_; }

 private:
  void evaluate(ParticleSet& p, StepStats& s);

  GravityParams gravity_;
  Octree::Params tree_params_;
  double dt_;
  bool primed_ = false;
};

}  // namespace bladed::treecode
