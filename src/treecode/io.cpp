#include "treecode/io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.hpp"

namespace bladed::treecode {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw SimulationError("cannot open '" + path + "' with mode " + mode);
  }
  return f;
}

constexpr char kMagic[8] = {'B', 'L', 'A', 'D', 'E', 'D', 'P', 'S'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const double* data, std::size_t count,
                    std::uint64_t h = 1469598103934665603ULL) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < count * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw SimulationError("short write to '" + path + "'");
  }
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    throw SimulationError("short read from '" + path + "'");
  }
}

}  // namespace

void write_csv(const ParticleSet& p, const std::string& path,
               std::size_t max_rows) {
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(), "x,y,z,m\n");
  const std::size_t stride =
      max_rows == 0 ? 1 : std::max<std::size_t>(1, p.size() / max_rows);
  for (std::size_t i = 0; i < p.size(); i += stride) {
    std::fprintf(f.get(), "%.9g,%.9g,%.9g,%.9g\n", p.x[i], p.y[i], p.z[i],
                 p.m[i]);
  }
}

void save_snapshot(const ParticleSet& p, const std::string& path) {
  File f = open_or_throw(path, "wb");
  write_exact(f.get(), kMagic, sizeof kMagic, path);
  write_exact(f.get(), &kVersion, sizeof kVersion, path);
  const std::uint64_t n = p.size();
  write_exact(f.get(), &n, sizeof n, path);

  std::uint64_t checksum = 1469598103934665603ULL;
  for (const std::vector<double>* arr :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.m}) {
    checksum = fnv1a(arr->data(), arr->size(), checksum);
  }
  write_exact(f.get(), &checksum, sizeof checksum, path);
  for (const std::vector<double>* arr :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.m}) {
    write_exact(f.get(), arr->data(), arr->size() * sizeof(double), path);
  }
}

ParticleSet load_snapshot(const std::string& path) {
  File f = open_or_throw(path, "rb");
  char magic[8];
  read_exact(f.get(), magic, sizeof magic, path);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw SimulationError("'" + path + "' is not a bladed snapshot");
  }
  std::uint32_t version = 0;
  read_exact(f.get(), &version, sizeof version, path);
  if (version != kVersion) {
    throw SimulationError("unsupported snapshot version in '" + path + "'");
  }
  std::uint64_t n = 0;
  read_exact(f.get(), &n, sizeof n, path);
  std::uint64_t stored_checksum = 0;
  read_exact(f.get(), &stored_checksum, sizeof stored_checksum, path);

  ParticleSet p;
  p.resize(n);
  for (std::vector<double>* arr :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.m}) {
    read_exact(f.get(), arr->data(), arr->size() * sizeof(double), path);
  }
  std::uint64_t checksum = 1469598103934665603ULL;
  for (const std::vector<double>* arr :
       {&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz, &p.m}) {
    checksum = fnv1a(arr->data(), arr->size(), checksum);
  }
  if (checksum != stored_checksum) {
    throw SimulationError("snapshot checksum mismatch in '" + path + "'");
  }
  return p;
}

}  // namespace bladed::treecode
