#pragma once

/// Snapshot I/O for particle sets: a CSV form for plotting (the Figure 3
/// and galaxy-example artifacts) and a compact binary form with a header
/// and checksum for exact save/restore of simulation state.

#include <string>

#include "treecode/particle.hpp"

namespace bladed::treecode {

/// Write positions and masses as "x,y,z,m" CSV (optionally thinned to at
/// most `max_rows` evenly strided rows; 0 = all). Throws SimulationError on
/// I/O failure.
void write_csv(const ParticleSet& p, const std::string& path,
               std::size_t max_rows = 0);

/// Full state (positions, velocities, masses) in a binary container with
/// magic, version, count and an FNV-1a payload checksum.
void save_snapshot(const ParticleSet& p, const std::string& path);

/// Load a snapshot written by save_snapshot; verifies magic, version and
/// checksum (throws SimulationError on mismatch or short file).
/// Accelerations and potentials are zeroed (they are derived state).
[[nodiscard]] ParticleSet load_snapshot(const std::string& path);

}  // namespace bladed::treecode
