#include "treecode/morton.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace bladed::treecode {

BoundingBox BoundingBox::containing(const ParticleSet& p, double pad) {
  BLADED_REQUIRE_MSG(p.size() > 0, "bounding box of an empty set");
  double lo[3] = {p.x[0], p.y[0], p.z[0]};
  double hi[3] = {p.x[0], p.y[0], p.z[0]};
  for (std::size_t i = 1; i < p.size(); ++i) {
    lo[0] = std::min(lo[0], p.x[i]);
    lo[1] = std::min(lo[1], p.y[i]);
    lo[2] = std::min(lo[2], p.z[i]);
    hi[0] = std::max(hi[0], p.x[i]);
    hi[1] = std::max(hi[1], p.y[i]);
    hi[2] = std::max(hi[2], p.z[i]);
  }
  BoundingBox box;
  double extent = 0.0;
  for (int d = 0; d < 3; ++d) extent = std::max(extent, hi[d] - lo[d]);
  if (extent == 0.0) extent = 1.0;  // all particles coincide
  extent *= 1.0 + pad;
  for (int d = 0; d < 3; ++d) {
    const double mid = 0.5 * (lo[d] + hi[d]);
    box.lo[d] = mid - 0.5 * extent;
  }
  box.extent = extent;
  return box;
}

bool BoundingBox::contains(double x, double y, double z) const {
  return x >= lo[0] && x <= lo[0] + extent && y >= lo[1] &&
         y <= lo[1] + extent && z >= lo[2] && z <= lo[2] + extent;
}

double BoundingBox::dist2_to_cell(double x, double y, double z,
                                  const double c[3], double h) {
  double d2 = 0.0;
  const double q[3] = {x, y, z};
  for (int d = 0; d < 3; ++d) {
    const double lo = c[d] - h, hi = c[d] + h;
    if (q[d] < lo) {
      d2 += (lo - q[d]) * (lo - q[d]);
    } else if (q[d] > hi) {
      d2 += (q[d] - hi) * (q[d] - hi);
    }
  }
  return d2;
}

namespace {
/// Spread the low 21 bits of v so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t v) {
  v &= (1ULL << 21) - 1;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}
}  // namespace

std::uint64_t morton_interleave(std::uint32_t ix, std::uint32_t iy,
                                std::uint32_t iz) {
  return spread3(ix) | (spread3(iy) << 1) | (spread3(iz) << 2);
}

std::uint64_t morton_key(double x, double y, double z,
                         const BoundingBox& box) {
  BLADED_REQUIRE(box.extent > 0.0);
  constexpr double kScale = static_cast<double>(1 << kMortonBitsPerDim);
  auto quantize = [&](double v, int d) -> std::uint32_t {
    double t = (v - box.lo[d]) / box.extent;
    t = std::clamp(t, 0.0, std::nextafter(1.0, 0.0));
    return static_cast<std::uint32_t>(t * kScale);
  };
  return morton_interleave(quantize(x, 0), quantize(y, 1), quantize(z, 2));
}

std::vector<std::uint64_t> morton_keys(const ParticleSet& p,
                                       const BoundingBox& box) {
  std::vector<std::uint64_t> keys(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    keys[i] = morton_key(p.x[i], p.y[i], p.z[i], box);
  }
  return keys;
}

std::vector<std::size_t> sort_permutation(
    const std::vector<std::uint64_t>& keys) {
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  return perm;
}

int morton_octant(std::uint64_t key, int level) {
  BLADED_REQUIRE(level >= 0 && level < kMortonBitsPerDim);
  const int shift = 3 * (kMortonBitsPerDim - 1 - level);
  return static_cast<int>((key >> shift) & 7ULL);
}

}  // namespace bladed::treecode
