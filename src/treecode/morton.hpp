#pragma once

/// Morton (Z-order) keys: the space-filling curve underlying the hashed
/// oct-tree (Warren & Salmon, "A Parallel Hashed Oct-Tree N-Body Algorithm",
/// SC'93). Positions are quantized to 21 bits per dimension inside a cubic
/// bounding box and the bits interleaved into a 63-bit key; sorting particles
/// by key linearizes the octree and makes domain decomposition a matter of
/// splitting a sorted array.

#include <cstdint>
#include <vector>

#include "treecode/particle.hpp"

namespace bladed::treecode {

inline constexpr int kMortonBitsPerDim = 21;

/// Cubic axis-aligned bounding box.
struct BoundingBox {
  double lo[3] = {0.0, 0.0, 0.0};
  double extent = 1.0;  ///< side length of the cube

  /// Smallest cube (plus `pad` relative padding) containing every particle.
  static BoundingBox containing(const ParticleSet& p, double pad = 1e-9);

  [[nodiscard]] bool contains(double x, double y, double z) const;

  /// Squared distance from point (x,y,z) to the closest point of the
  /// sub-cube with center c and half-width h (0 if inside).
  static double dist2_to_cell(double x, double y, double z, const double c[3],
                              double h);
};

/// Interleave the low 21 bits of each coordinate index (x lowest).
[[nodiscard]] std::uint64_t morton_interleave(std::uint32_t ix,
                                              std::uint32_t iy,
                                              std::uint32_t iz);

/// Key of a position within a box.
[[nodiscard]] std::uint64_t morton_key(double x, double y, double z,
                                       const BoundingBox& box);

/// Keys for a whole particle set.
[[nodiscard]] std::vector<std::uint64_t> morton_keys(const ParticleSet& p,
                                                     const BoundingBox& box);

/// Permutation that sorts `keys` ascending (stable).
[[nodiscard]] std::vector<std::size_t> sort_permutation(
    const std::vector<std::uint64_t>& keys);

/// Octant (0..7) of a key at `level` (level 0 = the root split).
[[nodiscard]] int morton_octant(std::uint64_t key, int level);

}  // namespace bladed::treecode
