#include "treecode/parallel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "simnet/comm.hpp"
#include "treecode/direct.hpp"
#include "treecode/ic.hpp"
#include "treecode/parallel_internal.hpp"
#include "treecode/perf.hpp"

namespace bladed::treecode {

std::vector<MassElement> collect_let(const Octree& tree,
                                     const ParticleSet& src,
                                     const BoundingBox& target_box,
                                     double theta) {
  BLADED_REQUIRE(theta > 0.0);
  std::vector<MassElement> out;
  const double theta2 = theta * theta;
  double bcenter[3];
  const double bhalf = 0.5 * target_box.extent;
  for (int d = 0; d < 3; ++d) bcenter[d] = target_box.lo[d] + bhalf;

  std::vector<std::uint32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& n = tree.nodes()[stack.back()];
    stack.pop_back();
    if (n.count == 0 || n.mass == 0.0) continue;
    // Closest approach of any observer in the target box to this cell's COM:
    // if the MAC holds there, it holds for every observer in the box.
    const double dmin2 = BoundingBox::dist2_to_cell(n.com[0], n.com[1],
                                                    n.com[2], bcenter, bhalf);
    const double size = 2.0 * n.half;
    if (size * size < theta2 * dmin2) {
      out.push_back({n.com[0], n.com[1], n.com[2], n.mass});
    } else if (n.leaf) {
      for (std::uint32_t j = n.first; j < n.first + n.count; ++j) {
        out.push_back({src.x[j], src.y[j], src.z[j], src.m[j]});
      }
    } else {
      for (std::uint8_t c = 0; c < n.child_count; ++c)
        stack.push_back(n.child[c]);
    }
  }
  return out;
}

namespace detail {

ParticleSet make_ic(const ParallelConfig& cfg) {
  switch (cfg.ic_kind) {
    case 0:
      return plummer_sphere(cfg.particles, cfg.seed);
    case 1:
      return uniform_cube(cfg.particles, cfg.seed);
    case 2:
      return colliding_pair(cfg.particles, cfg.seed);
    default:
      throw PreconditionError("unknown ic_kind");
  }
}

void evaluate_forces(simnet::Comm& comm, const ParallelConfig& cfg,
                     RankWork& w) {
  const int nranks = comm.size();

  // 1. Exchange bounding boxes (4 doubles each).
  const BoundingBox mybox = BoundingBox::containing(w.mine);
  const std::vector<std::vector<double>> boxes = comm.allgather(
      std::vector<double>{mybox.lo[0], mybox.lo[1], mybox.lo[2],
                          mybox.extent});

  // 2. Local tree over owned particles.
  Octree local = Octree::build(w.mine);
  w.build_ops += local.build_ops();
  comm.compute(arch::estimate_seconds(*cfg.cpu,
                                      build_profile(local.build_ops())));

  // 3. LET exchange: ship each peer exactly the mass elements its box needs.
  std::vector<std::vector<MassElement>> exports(nranks);
  OpCounter let_ops;
  for (int peer = 0; peer < nranks; ++peer) {
    if (peer == comm.rank()) continue;
    BoundingBox pb;
    pb.lo[0] = boxes[peer][0];
    pb.lo[1] = boxes[peer][1];
    pb.lo[2] = boxes[peer][2];
    pb.extent = boxes[peer][3];
    exports[peer] = collect_let(local, w.mine, pb, cfg.gravity.theta);
    // Selection cost: roughly one MAC test per node inspected; the export
    // list length bounds the inspected set within a small factor.
    let_ops += mac_test_ops() *
               static_cast<std::uint64_t>(2 * exports[peer].size() + 16);
  }
  comm.compute(arch::estimate_seconds(*cfg.cpu, force_profile(let_ops)));
  w.force_ops += let_ops;

  std::vector<std::vector<MassElement>> imports;
  if (nranks > 1) {
    imports = comm.alltoall(exports);
  }

  // 4. Combined locally-essential source set: owned + imported elements.
  ParticleSet src = w.mine;
  for (int peer = 0; peer < nranks; ++peer) {
    if (imports.empty() || peer == comm.rank()) continue;
    for (const MassElement& e : imports[peer]) src.add(e.x, e.y, e.z, e.m);
  }
  Octree let_tree = Octree::build(src);
  w.build_ops += let_tree.build_ops();
  comm.compute(arch::estimate_seconds(*cfg.cpu,
                                      build_profile(let_tree.build_ops())));

  // 5. Forces on owned particles from the locally essential tree.
  w.mine.zero_accelerations();
  const TraversalStats st =
      compute_forces_on(w.mine, src, let_tree, cfg.gravity);
  w.traversal += st;
  w.force_ops += st.ops;
  comm.compute(arch::estimate_seconds(*cfg.cpu, force_profile(st.ops)));
}

void kick(RankWork& w, double h) {
  for (std::size_t i = 0; i < w.mine.size(); ++i) {
    w.mine.vx[i] += h * w.mine.ax[i];
    w.mine.vy[i] += h * w.mine.ay[i];
    w.mine.vz[i] += h * w.mine.az[i];
  }
  OpCounter o;
  o.fadd = 3 * w.mine.size();
  o.fmul = 3 * w.mine.size();
  o.load = 6 * w.mine.size();
  o.store = 3 * w.mine.size();
  w.update_ops += o;
}

void drift(RankWork& w, double dt) {
  for (std::size_t i = 0; i < w.mine.size(); ++i) {
    w.mine.x[i] += dt * w.mine.vx[i];
    w.mine.y[i] += dt * w.mine.vy[i];
    w.mine.z[i] += dt * w.mine.vz[i];
  }
  OpCounter o;
  o.fadd = 3 * w.mine.size();
  o.fmul = 3 * w.mine.size();
  o.load = 6 * w.mine.size();
  o.store = 3 * w.mine.size();
  w.update_ops += o;
}

}  // namespace detail

ParallelResult run_parallel_nbody(const ParallelConfig& cfg) {
  using detail::RankWork;
  BLADED_REQUIRE_MSG(cfg.cpu != nullptr, "ParallelConfig.cpu is required");
  BLADED_REQUIRE(cfg.ranks >= 1);
  BLADED_REQUIRE(cfg.steps >= 1);
  BLADED_REQUIRE(cfg.particles >= static_cast<std::size_t>(cfg.ranks));

  // Global IC in Morton order; contiguous equal-count chunks per rank.
  ParticleSet global = detail::make_ic(cfg);
  {
    const BoundingBox box = BoundingBox::containing(global);
    const std::vector<std::uint64_t> keys = morton_keys(global, box);
    global.apply_permutation(sort_permutation(keys));
  }
  const std::size_t n = global.size();
  std::vector<std::size_t> bounds(cfg.ranks + 1);
  for (int r = 0; r <= cfg.ranks; ++r) {
    bounds[r] = n * static_cast<std::size_t>(r) / cfg.ranks;
  }

  simnet::Cluster cluster(
      {.ranks = cfg.ranks, .network = cfg.network, .recorder = cfg.recorder,
       .host_threads = cfg.host_threads, .cancel = cfg.cancel});
  std::vector<RankWork> work(cfg.ranks);

  cluster.run([&](simnet::Comm& comm) {
    const int r = comm.rank();
    RankWork& w = work[r];
    w.mine = global.slice(bounds[r], bounds[r + 1]);

    evaluate_forces(comm, cfg, w);  // prime accelerations
    const double h = 0.5 * cfg.dt;
    for (int s = 0; s < cfg.steps; ++s) {
      kick(w, h);
      drift(w, cfg.dt);
      evaluate_forces(comm, cfg, w);
      kick(w, h);
      comm.compute(arch::estimate_seconds(
          *cfg.cpu, update_profile(w.update_ops)));
      w.update_ops = OpCounter{};
    }
    w.kinetic = comm.allreduce(w.mine.kinetic_energy(), std::plus<double>{});
    w.potential =
        comm.allreduce(w.mine.potential_energy(), std::plus<double>{});
  });

  ParallelResult res;
  res.elapsed_seconds = cluster.elapsed_seconds();
  res.bytes = cluster.total_bytes();
  res.messages = cluster.total_messages();
  for (int r = 0; r < cfg.ranks; ++r) {
    const OpCounter all =
        work[r].force_ops + work[r].build_ops;
    res.total_flops += all.flops();
    res.interactions += work[r].traversal.interactions();
    res.compute_seconds =
        std::max(res.compute_seconds, cluster.stats(r).compute_seconds);
    res.particles_out.append(work[r].mine);
  }
  res.kinetic = work[0].kinetic;
  res.potential = work[0].potential;
  if (res.elapsed_seconds > 0.0) {
    res.sustained_gflops =
        static_cast<double>(res.total_flops) / res.elapsed_seconds / 1e9;
    res.mflops_per_proc = res.sustained_gflops * 1000.0 / cfg.ranks;
  }
  return res;
}

}  // namespace bladed::treecode
