#pragma once

/// Parallel N-body driver: Morton-order domain decomposition and a
/// locally-essential-tree (LET) exchange, executed over the simnet virtual
/// cluster. The data movement is real (ranks exchange actual mass elements
/// and integrate real particles); per-rank computation time is charged
/// through the architecture cost model, so the run produces both physics
/// (positions/energies) and the performance numbers of the paper's §3.3
/// experiments (scalability table, sustained Gflop rating).

#include <atomic>

#include "arch/processor.hpp"
#include "simnet/network.hpp"
#include "treecode/integrator.hpp"

namespace bladed::commcheck {
class Recorder;
}  // namespace bladed::commcheck

namespace bladed::treecode {

struct ParallelConfig {
  int ranks = 24;
  std::size_t particles = 10000;
  int steps = 1;
  double dt = 1e-3;
  std::uint64_t seed = 1;
  GravityParams gravity;
  Octree::Params tree;
  const arch::ProcessorModel* cpu = nullptr;  ///< required
  simnet::NetworkModel network = simnet::NetworkModel::fast_ethernet();
  /// IC selector: 0 = Plummer sphere, 1 = uniform cube, 2 = colliding pair.
  int ic_kind = 0;
  /// Optional commcheck event recorder (bladed-commcheck); must be sized to
  /// `ranks` and outlive the run. Null = no recording.
  commcheck::Recorder* recorder = nullptr;
  /// Host worker threads for the simulated ranks' compute regions
  /// (simnet::Cluster::Config::host_threads): 1 serializes, 0 auto-resolves.
  /// Results are bit-identical for every value.
  int host_threads = 1;
  /// Cooperative cancellation flag (simnet::Cluster::Config::cancel): when
  /// it fires, the run unwinds with CancelledError at the next engine
  /// transition. Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

struct ParallelResult {
  double elapsed_seconds = 0.0;    ///< simulated wall-clock of the whole run
  double compute_seconds = 0.0;    ///< max per-rank compute time
  double sustained_gflops = 0.0;   ///< counted flops / elapsed
  double mflops_per_proc = 0.0;
  std::uint64_t total_flops = 0;
  std::uint64_t interactions = 0;
  std::uint64_t bytes = 0;         ///< network payload carried
  std::uint64_t messages = 0;
  double kinetic = 0.0;            ///< final-step energies (tree-approximate)
  double potential = 0.0;
  /// Final particle state (global Morton order), for physics validation.
  ParticleSet particles_out;
};

/// Run the complete simulation on a simulated `cfg.ranks`-node cluster.
[[nodiscard]] ParallelResult run_parallel_nbody(const ParallelConfig& cfg);

/// Mass element shipped in the LET exchange.
struct MassElement {
  double x, y, z, m;
};

/// Collect the locally essential data of `tree` (over `src`) for an observer
/// occupying `target_box`: nodes whose multipole acceptance holds for every
/// point of the box are exported as single mass elements; leaves that fail
/// it export their particles. Exposed for unit testing.
[[nodiscard]] std::vector<MassElement> collect_let(
    const Octree& tree, const ParticleSet& src, const BoundingBox& target_box,
    double theta);

}  // namespace bladed::treecode
