#pragma once

/// Internal building blocks of the parallel N-body driver, shared between
/// run_parallel_nbody (treecode/parallel.cpp) and the fault-tolerant
/// checkpoint/restart driver (treecode/checkpoint.cpp). Not a public API:
/// everything here may change without notice.

#include "common/opcount.hpp"
#include "treecode/parallel.hpp"
#include "treecode/traverse.hpp"

namespace bladed::simnet {
class Comm;
}

namespace bladed::treecode::detail {

/// Per-rank working state and accounting inside the simulated cluster.
struct RankWork {
  ParticleSet mine;
  OpCounter force_ops, build_ops, update_ops;
  TraversalStats traversal;
  double kinetic = 0.0, potential = 0.0;
};

/// Build the configured initial condition (Plummer / cube / colliding pair).
[[nodiscard]] ParticleSet make_ic(const ParallelConfig& cfg);

/// One force evaluation: box allgather, local tree, LET alltoall, combined
/// tree, traversal. Charges modelled compute time to `comm` as it goes.
void evaluate_forces(simnet::Comm& comm, const ParallelConfig& cfg,
                     RankWork& w);

/// Leapfrog half-kick / drift over the owned particles (accumulates the
/// update-op counts into `w.update_ops`).
void kick(RankWork& w, double h);
void drift(RankWork& w, double dt);

}  // namespace bladed::treecode::detail
