#include "treecode/particle.hpp"

#include "common/error.hpp"

namespace bladed::treecode {

void ParticleSet::resize(std::size_t n) {
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
  ax.resize(n);
  ay.resize(n);
  az.resize(n);
  m.resize(n);
  pot.resize(n);
}

void ParticleSet::add(double px, double py, double pz, double mass) {
  x.push_back(px);
  y.push_back(py);
  z.push_back(pz);
  vx.push_back(0.0);
  vy.push_back(0.0);
  vz.push_back(0.0);
  ax.push_back(0.0);
  ay.push_back(0.0);
  az.push_back(0.0);
  m.push_back(mass);
  pot.push_back(0.0);
}

namespace {
void permute(std::vector<double>& v, const std::vector<std::size_t>& perm) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = v[perm[i]];
  v = std::move(out);
}
}  // namespace

void ParticleSet::apply_permutation(const std::vector<std::size_t>& perm) {
  BLADED_REQUIRE_MSG(perm.size() == size(), "permutation size mismatch");
  for (auto* v : {&x, &y, &z, &vx, &vy, &vz, &ax, &ay, &az, &m, &pot}) {
    permute(*v, perm);
  }
}

void ParticleSet::append(const ParticleSet& other) {
  auto cat = [](std::vector<double>& dst, const std::vector<double>& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  };
  cat(x, other.x);
  cat(y, other.y);
  cat(z, other.z);
  cat(vx, other.vx);
  cat(vy, other.vy);
  cat(vz, other.vz);
  cat(ax, other.ax);
  cat(ay, other.ay);
  cat(az, other.az);
  cat(m, other.m);
  cat(pot, other.pot);
}

ParticleSet ParticleSet::slice(std::size_t begin, std::size_t end) const {
  BLADED_REQUIRE(begin <= end && end <= size());
  ParticleSet out;
  auto cut = [&](std::vector<double>& dst, const std::vector<double>& src) {
    dst.assign(src.begin() + static_cast<std::ptrdiff_t>(begin),
               src.begin() + static_cast<std::ptrdiff_t>(end));
  };
  cut(out.x, x);
  cut(out.y, y);
  cut(out.z, z);
  cut(out.vx, vx);
  cut(out.vy, vy);
  cut(out.vz, vz);
  cut(out.ax, ax);
  cut(out.ay, ay);
  cut(out.az, az);
  cut(out.m, m);
  cut(out.pot, pot);
  return out;
}

double ParticleSet::total_mass() const {
  double t = 0.0;
  for (double mi : m) t += mi;
  return t;
}

double ParticleSet::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    ke += 0.5 * m[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  }
  return ke;
}

double ParticleSet::potential_energy() const {
  double pe = 0.0;
  for (std::size_t i = 0; i < size(); ++i) pe += 0.5 * m[i] * pot[i];
  return pe;
}

ParticleSet::Com ParticleSet::center_of_mass() const {
  Com c;
  const double total = total_mass();
  if (total == 0.0) return c;
  for (std::size_t i = 0; i < size(); ++i) {
    c.x += m[i] * x[i];
    c.y += m[i] * y[i];
    c.z += m[i] * z[i];
    c.vx += m[i] * vx[i];
    c.vy += m[i] * vy[i];
    c.vz += m[i] * vz[i];
  }
  c.x /= total;
  c.y /= total;
  c.z /= total;
  c.vx /= total;
  c.vy /= total;
  c.vz /= total;
  return c;
}

void ParticleSet::zero_accelerations() {
  std::fill(ax.begin(), ax.end(), 0.0);
  std::fill(ay.begin(), ay.end(), 0.0);
  std::fill(az.begin(), az.end(), 0.0);
  std::fill(pot.begin(), pot.end(), 0.0);
}

}  // namespace bladed::treecode
