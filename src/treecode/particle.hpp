#pragma once

/// Structure-of-arrays particle store for the N-body library. SoA keeps the
/// inner force loops streaming through contiguous coordinate arrays — the
/// layout every production treecode (including the paper's ~20 kLoC LANL
/// library) uses.

#include <cstddef>
#include <vector>

namespace bladed::treecode {

struct ParticleSet {
  std::vector<double> x, y, z;     ///< positions
  std::vector<double> vx, vy, vz;  ///< velocities
  std::vector<double> ax, ay, az;  ///< accelerations (outputs of a force pass)
  std::vector<double> m;           ///< masses
  std::vector<double> pot;         ///< per-particle potential (outputs)

  [[nodiscard]] std::size_t size() const { return x.size(); }
  void resize(std::size_t n);

  /// Append one particle with zero velocity/acceleration.
  void add(double px, double py, double pz, double mass);

  /// Reorder every array by `perm` (perm[i] = index of the particle that
  /// moves to slot i). Used to sort into space-filling-curve order.
  void apply_permutation(const std::vector<std::size_t>& perm);

  /// Append all of `other`'s particles.
  void append(const ParticleSet& other);

  /// Extract the half-open index range [begin,end) into a new set.
  [[nodiscard]] ParticleSet slice(std::size_t begin, std::size_t end) const;

  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double kinetic_energy() const;
  /// 0.5 * sum m_i pot_i — valid after a force pass that filled `pot`.
  [[nodiscard]] double potential_energy() const;

  /// Center-of-mass position and velocity.
  struct Com {
    double x = 0, y = 0, z = 0;
    double vx = 0, vy = 0, vz = 0;
  };
  [[nodiscard]] Com center_of_mass() const;

  void zero_accelerations();
};

}  // namespace bladed::treecode
