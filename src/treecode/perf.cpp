#include "treecode/perf.hpp"

#include <mutex>

#include "treecode/ic.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {

arch::KernelProfile force_profile(const OpCounter& ops) {
  arch::KernelProfile p;
  p.name = "treecode/force";
  p.ops = ops;
  // Tree traversal chases node pointers across a working set far beyond L1
  // on every modelled machine, and the Karp recurrence plus the
  // accumulate-into-three-components chain is moderately serial.
  p.miss_intensity = 1.0;
  p.dependency = 0.45;
  return p;
}

arch::KernelProfile build_profile(const OpCounter& ops) {
  arch::KernelProfile p;
  p.name = "treecode/build";
  p.ops = ops;
  p.miss_intensity = 0.6;  // sort + scatter permutation
  p.dependency = 0.35;
  return p;
}

arch::KernelProfile update_profile(const OpCounter& ops) {
  arch::KernelProfile p;
  p.name = "treecode/update";
  p.ops = ops;
  p.miss_intensity = 0.2;  // pure streaming over the SoA arrays
  p.dependency = 0.1;
  return p;
}

namespace {

/// Reference single-processor workload: a real force evaluation over a
/// 20k-particle Plummer sphere at the production opening angle.
const OpCounter& reference_force_ops() {
  static OpCounter ops = [] {
    ParticleSet p = plummer_sphere(20000, /*seed=*/42);
    Octree tree = Octree::build(p);
    GravityParams g;
    g.theta = 0.7;
    const TraversalStats st = compute_forces(p, tree, g);
    return st.ops;
  }();
  return ops;
}

}  // namespace

double single_proc_treecode_mflops(const arch::ProcessorModel& cpu) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);  // reference run is lazily initialized
  return arch::estimate_mflops(cpu, force_profile(reference_force_ops()));
}

}  // namespace bladed::treecode
