#pragma once

/// Bridge from counted treecode operations to modelled time on a 2001-era
/// CPU: the kernel characterization (tree traversal is cache-hostile and
/// moderately chained) plus convenience ratings used by the Table 2/4 and
/// Figure 3 benches.

#include "arch/cost_model.hpp"
#include "common/opcount.hpp"

namespace bladed::treecode {

/// Characterize a force-evaluation operation mix for the cost model.
[[nodiscard]] arch::KernelProfile force_profile(const OpCounter& ops);

/// Characterize a tree-build operation mix (sort + moments; streaming-ish).
[[nodiscard]] arch::KernelProfile build_profile(const OpCounter& ops);

/// Characterize integrator bookkeeping (kick/drift; pure streaming).
[[nodiscard]] arch::KernelProfile update_profile(const OpCounter& ops);

/// Single-processor sustained treecode rate of `cpu`, measured by running a
/// real reference problem (Plummer sphere, one force evaluation) through the
/// counting traversal and pricing it with the cost model. Deterministic;
/// the reference run is cached across calls.
[[nodiscard]] double single_proc_treecode_mflops(
    const arch::ProcessorModel& cpu);

}  // namespace bladed::treecode
