#include "treecode/traverse.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "microkernel/karp.hpp"

namespace bladed::treecode {

TraversalStats& TraversalStats::operator+=(const TraversalStats& o) {
  pp += o.pp;
  pn += o.pn;
  pn_quad += o.pn_quad;
  mac_tests += o.mac_tests;
  visited += o.visited;
  ops += o.ops;
  return *this;
}

OpCounter interaction_ops(RsqrtImpl impl) {
  OpCounter o;
  if (impl == RsqrtImpl::kLibm) {
    // deltas 3, r2 2+1(softening), acc accumulate 3, pot accumulate 1
    o.fadd = 10;
    // squares 3, r2*r 1, Gm 1, s*d 3, pot=s*r2 1
    o.fmul = 9;
    o.fdiv = 1;   // s = Gm / (r2*r)
    o.fsqrt = 1;  // r = sqrt(r2)
    o.load = 5;   // source x,y,z,m + node/leaf bookkeeping
    o.iop = 4;
    o.branch = 1;
  } else {
    // deltas 3, r2 2+1, Karp poly 3 + NR 2, acc 3, pot 1
    o.fadd = 15;
    // squares 3, poly 2, NR 8, rescale 1, cube 2, Gm 1, s=Gm*y3 1, s*d 3,
    // pot=Gm*y 1
    o.fmul = 22;
    o.load = 8;  // + the 3-coefficient Karp table segment
    o.iop = 10;  // + exponent/mantissa manipulation
    o.branch = 1;
  }
  return o;
}

OpCounter quadrupole_ops() {
  OpCounter o;
  o.fmul = 22;  // Q*d (9), d.Qd (3), y^5/y^7 (2), term scaling (8)
  o.fadd = 12;  // Q*d (6), d.Qd (2), accumulate (4)
  o.load = 6;   // the packed tensor
  return o;
}

OpCounter mac_test_ops() {
  OpCounter o;
  o.fadd = 5;  // deltas to the node COM + d2 accumulation
  o.fmul = 4;  // squares + theta^2 * d2
  o.load = 5;  // com, half, node header
  o.iop = 2;   // compare + stack bookkeeping
  o.branch = 1;
  return o;
}

namespace {

OpCounter visit_ops() {
  OpCounter o;
  o.iop = 4;
  o.load = 2;
  o.branch = 1;
  return o;
}

/// The inner kernel: accumulate the (softened) pull of a point mass gm at
/// (sx,sy,sz) on the target at (px,py,pz). Returns false for the
/// self-interaction (exact position coincidence).
template <RsqrtImpl Impl>
inline bool point_interaction(double px, double py, double pz, double sx,
                              double sy, double sz, double gm, double eps2,
                              double& ax, double& ay, double& az,
                              double& pot) {
  const double dx = sx - px;
  const double dy = sy - py;
  const double dz = sz - pz;
  const double r2raw = dx * dx + dy * dy + dz * dz;
  if (r2raw == 0.0) return false;
  const double r2 = r2raw + eps2;
  double s, phi;
  if constexpr (Impl == RsqrtImpl::kLibm) {
    const double r = std::sqrt(r2);
    s = gm / (r2 * r);
    phi = s * r2;  // gm / r
  } else {
    const double y = micro::karp_rsqrt(r2, 2);
    const double y3 = y * y * y;
    s = gm * y3;
    phi = gm * y;
  }
  ax += s * dx;
  ay += s * dy;
  az += s * dz;
  pot -= phi;
  return true;
}

template <RsqrtImpl Impl>
TraversalStats traverse(ParticleSet& targets, const ParticleSet& src,
                        const Octree& tree, const GravityParams& params,
                        std::size_t first, std::size_t last) {
  TraversalStats stats;
  const double eps2 = params.softening * params.softening;
  const double theta2 = params.theta * params.theta;
  const auto& nodes = tree.nodes();
  std::vector<std::uint32_t> stack;
  stack.reserve(128);

  for (std::size_t i = first; i < last; ++i) {
    const double px = targets.x[i], py = targets.y[i], pz = targets.z[i];
    double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
    stack.push_back(0);
    while (!stack.empty()) {
      const Node& n = nodes[stack.back()];
      stack.pop_back();
      ++stats.visited;
      if (n.mass == 0.0 || n.count == 0) continue;

      const double dx = n.com[0] - px;
      const double dy = n.com[1] - py;
      const double dz = n.com[2] - pz;
      const double d2 = dx * dx + dy * dy + dz * dz;
      const double size = 2.0 * n.half;
      ++stats.mac_tests;
      if (size * size < theta2 * d2) {
        // Accept: monopole (plus optional quadrupole) with the cell.
        point_interaction<Impl>(px, py, pz, n.com[0], n.com[1], n.com[2],
                                params.G * n.mass, eps2, ax, ay, az, pot);
        if (params.quadrupole) {
          // a_quad = G[-(Q d)/r^5 + 2.5 (d.Qd) d / r^7], d = com - p;
          // phi_quad = -G (d.Qd) / (2 r^5).
          const double r2 = d2 + eps2;
          double y;
          if constexpr (Impl == RsqrtImpl::kLibm) {
            y = 1.0 / std::sqrt(r2);
          } else {
            y = micro::karp_rsqrt(r2, 2);
          }
          const double u2 = y * y;
          const double y5 = u2 * u2 * y;
          const double y7 = y5 * u2;
          const double qdx =
              n.quad[0] * dx + n.quad[1] * dy + n.quad[2] * dz;
          const double qdy =
              n.quad[1] * dx + n.quad[3] * dy + n.quad[4] * dz;
          const double qdz =
              n.quad[2] * dx + n.quad[4] * dy + n.quad[5] * dz;
          const double dqd = dx * qdx + dy * qdy + dz * qdz;
          const double radial = 2.5 * params.G * dqd * y7;
          ax += params.G * -qdx * y5 + radial * dx;
          ay += params.G * -qdy * y5 + radial * dy;
          az += params.G * -qdz * y5 + radial * dz;
          pot -= 0.5 * params.G * dqd * y5;
          ++stats.pn_quad;
        }
        ++stats.pn;
      } else if (n.leaf) {
        for (std::uint32_t j = n.first; j < n.first + n.count; ++j) {
          if (point_interaction<Impl>(px, py, pz, src.x[j], src.y[j],
                                      src.z[j], params.G * src.m[j], eps2, ax,
                                      ay, az, pot)) {
            ++stats.pp;
          }
        }
      } else {
        for (std::uint8_t c = 0; c < n.child_count; ++c)
          stack.push_back(n.child[c]);
      }
    }
    targets.ax[i] += ax;
    targets.ay[i] += ay;
    targets.az[i] += az;
    targets.pot[i] += pot;
  }

  const RsqrtImpl impl = params.rsqrt;
  stats.ops = interaction_ops(impl) * (stats.pp + stats.pn) +
              quadrupole_ops() * stats.pn_quad +
              mac_test_ops() * stats.mac_tests + visit_ops() * stats.visited;
  // The quadrupole path recomputes the reciprocal sqrt once more per cell.
  if (params.quadrupole) {
    OpCounter rsqrt_extra;
    if (impl == RsqrtImpl::kLibm) {
      rsqrt_extra.fsqrt = 1;
      rsqrt_extra.fdiv = 1;
    } else {
      rsqrt_extra.fmul = 11;
      rsqrt_extra.fadd = 5;
      rsqrt_extra.load = 3;
      rsqrt_extra.iop = 8;
    }
    stats.ops += rsqrt_extra * stats.pn_quad;
  }
  return stats;
}

}  // namespace

TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params, std::size_t first,
                              std::size_t last) {
  BLADED_REQUIRE(first <= last && last <= p.size());
  BLADED_REQUIRE(tree.particle_count() == p.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse<RsqrtImpl::kLibm>(p, p, tree, params, first, last)
             : traverse<RsqrtImpl::kKarp>(p, p, tree, params, first, last);
}

TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params) {
  return compute_forces(p, tree, params, 0, p.size());
}

namespace {

/// List-evaluation tile: 4 SoA streams * 8 B * 1024 = 32 KiB per tile,
/// resident while it is swept over every particle of the group.
constexpr std::size_t kListTile = 1024;

/// SoA interaction list built by the per-group walk. Point masses (leaf
/// particles, and accepted cells when the quadrupole is off) go to the x/y/
/// z/gm streams in walk order; with the quadrupole on, accepted cells go to
/// the c* streams instead, their packed tensors appended 6 doubles at a
/// time to cquad.
struct InteractionList {
  std::vector<double> x, y, z, gm;
  std::vector<double> cx, cy, cz, cgm, cquad;

  void clear() {
    x.clear();
    y.clear();
    z.clear();
    gm.clear();
    cx.clear();
    cy.clear();
    cz.clear();
    cgm.clear();
    cquad.clear();
  }
};

template <RsqrtImpl Impl>
TraversalStats traverse_grouped(ParticleSet& p, const Octree& tree,
                                const GravityParams& params) {
  TraversalStats stats;
  const double eps2 = params.softening * params.softening;
  const double theta2 = params.theta * params.theta;
  const auto& nodes = tree.nodes();

  std::vector<std::uint32_t> stack;
  InteractionList list;
  stack.reserve(128);
  list.x.reserve(4096);
  // Per-target partial sums, carried across list tiles.
  std::vector<double> sax, say, saz, spot;

  for (const Node& group : nodes) {
    if (!group.leaf || group.count == 0) continue;

    // One walk for the whole group: accept against the group's cell.
    list.clear();
    stack.push_back(0);
    while (!stack.empty()) {
      const Node& n = nodes[stack.back()];
      stack.pop_back();
      ++stats.visited;
      if (n.mass == 0.0 || n.count == 0) continue;
      const double dmin2 = BoundingBox::dist2_to_cell(
          n.com[0], n.com[1], n.com[2], group.center, group.half);
      const double size = 2.0 * n.half;
      ++stats.mac_tests;
      if (size * size < theta2 * dmin2) {
        if (params.quadrupole) {
          list.cx.push_back(n.com[0]);
          list.cy.push_back(n.com[1]);
          list.cz.push_back(n.com[2]);
          list.cgm.push_back(params.G * n.mass);
          list.cquad.insert(list.cquad.end(), n.quad, n.quad + 6);
        } else {
          // Monopole-only cells join the point-mass stream and tally as
          // pp, exactly like the historical null-quad list entries.
          list.x.push_back(n.com[0]);
          list.y.push_back(n.com[1]);
          list.z.push_back(n.com[2]);
          list.gm.push_back(params.G * n.mass);
        }
      } else if (n.leaf) {
        for (std::uint32_t j = n.first; j < n.first + n.count; ++j) {
          list.x.push_back(p.x[j]);
          list.y.push_back(p.y[j]);
          list.z.push_back(p.z[j]);
          list.gm.push_back(params.G * p.m[j]);
        }
      } else {
        for (std::uint8_t c = 0; c < n.child_count; ++c)
          stack.push_back(n.child[c]);
      }
    }

    const std::uint32_t gfirst = group.first;
    const std::size_t gcount = group.count;
    sax.assign(gcount, 0.0);
    say.assign(gcount, 0.0);
    saz.assign(gcount, 0.0);
    spot.assign(gcount, 0.0);

    // Cell entries first (quadrupole runs only). Counts match the
    // interleaved AoS evaluation exactly — pn on a non-coincident monopole,
    // pn_quad unconditionally — and results agree to rounding (only the
    // accumulation order moved).
    const std::size_t ncells = list.cx.size();
    for (std::size_t c0 = 0; c0 < ncells; c0 += kListTile) {
      const std::size_t c1 = std::min(ncells, c0 + kListTile);
      for (std::size_t k = 0; k < gcount; ++k) {
        const std::size_t i = gfirst + k;
        const double px = p.x[i], py = p.y[i], pz = p.z[i];
        double ax = sax[k], ay = say[k], az = saz[k], pot = spot[k];
        for (std::size_t c = c0; c < c1; ++c) {
          if (point_interaction<Impl>(px, py, pz, list.cx[c], list.cy[c],
                                      list.cz[c], list.cgm[c], eps2, ax, ay,
                                      az, pot)) {
            ++stats.pn;
          }
          const double* quad = &list.cquad[6 * c];
          const double dx = list.cx[c] - px;
          const double dy = list.cy[c] - py;
          const double dz = list.cz[c] - pz;
          const double r2 = dx * dx + dy * dy + dz * dz + eps2;
          double y;
          if constexpr (Impl == RsqrtImpl::kLibm) {
            y = 1.0 / std::sqrt(r2);
          } else {
            y = micro::karp_rsqrt(r2, 2);
          }
          const double u2 = y * y;
          const double y5 = u2 * u2 * y;
          const double y7 = y5 * u2;
          const double qdx = quad[0] * dx + quad[1] * dy + quad[2] * dz;
          const double qdy = quad[1] * dx + quad[3] * dy + quad[4] * dz;
          const double qdz = quad[2] * dx + quad[4] * dy + quad[5] * dz;
          const double dqd = dx * qdx + dy * qdy + dz * qdz;
          // The quadrupole tensor is unscaled (G is folded into cgm only
          // for the monopole), so apply G here.
          const double radial = 2.5 * params.G * dqd * y7;
          ax += params.G * -qdx * y5 + radial * dx;
          ay += params.G * -qdy * y5 + radial * dy;
          az += params.G * -qdz * y5 + radial * dz;
          pot -= 0.5 * params.G * dqd * y5;
          ++stats.pn_quad;
        }
        sax[k] = ax;
        say[k] = ay;
        saz[k] = az;
        spot[k] = pot;
      }
    }

    // Point-mass stream, tiled: tiles outer so each 32 KiB slab of the list
    // is swept over every group particle while cache-hot; targets inner with
    // their running sums reloaded from/stored to the scratch arrays. Each
    // target still accumulates in ascending list order (ascending tiles ×
    // ascending index within a tile), so with the quadrupole off the result
    // is bit-identical to the historical untiled stream.
    const std::size_t npts = list.x.size();
    for (std::size_t t0 = 0; t0 < npts; t0 += kListTile) {
      const std::size_t t1 = std::min(npts, t0 + kListTile);
      for (std::size_t k = 0; k < gcount; ++k) {
        const std::size_t i = gfirst + k;
        const double px = p.x[i], py = p.y[i], pz = p.z[i];
        double ax = sax[k], ay = say[k], az = saz[k], pot = spot[k];
        for (std::size_t t = t0; t < t1; ++t) {
          if (point_interaction<Impl>(px, py, pz, list.x[t], list.y[t],
                                      list.z[t], list.gm[t], eps2, ax, ay,
                                      az, pot)) {
            ++stats.pp;
          }
        }
        sax[k] = ax;
        say[k] = ay;
        saz[k] = az;
        spot[k] = pot;
      }
    }

    for (std::size_t k = 0; k < gcount; ++k) {
      const std::size_t i = gfirst + k;
      p.ax[i] += sax[k];
      p.ay[i] += say[k];
      p.az[i] += saz[k];
      p.pot[i] += spot[k];
    }
  }

  stats.ops = interaction_ops(params.rsqrt) * (stats.pp + stats.pn) +
              quadrupole_ops() * stats.pn_quad +
              mac_test_ops() * stats.mac_tests + visit_ops() * stats.visited;
  return stats;
}

}  // namespace

TraversalStats compute_forces_grouped(ParticleSet& p, const Octree& tree,
                                      const GravityParams& params) {
  BLADED_REQUIRE(tree.particle_count() == p.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse_grouped<RsqrtImpl::kLibm>(p, tree, params)
             : traverse_grouped<RsqrtImpl::kKarp>(p, tree, params);
}

TraversalStats compute_forces_on(ParticleSet& targets, const ParticleSet& src,
                                 const Octree& tree,
                                 const GravityParams& params) {
  BLADED_REQUIRE(tree.particle_count() == src.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse<RsqrtImpl::kLibm>(targets, src, tree, params, 0,
                                          targets.size())
             : traverse<RsqrtImpl::kKarp>(targets, src, tree, params, 0,
                                          targets.size());
}

}  // namespace bladed::treecode
