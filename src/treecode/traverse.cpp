#include "treecode/traverse.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "microkernel/karp.hpp"

namespace bladed::treecode {

TraversalStats& TraversalStats::operator+=(const TraversalStats& o) {
  pp += o.pp;
  pn += o.pn;
  pn_quad += o.pn_quad;
  mac_tests += o.mac_tests;
  visited += o.visited;
  ops += o.ops;
  return *this;
}

OpCounter interaction_ops(RsqrtImpl impl) {
  OpCounter o;
  if (impl == RsqrtImpl::kLibm) {
    // deltas 3, r2 2+1(softening), acc accumulate 3, pot accumulate 1
    o.fadd = 10;
    // squares 3, r2*r 1, Gm 1, s*d 3, pot=s*r2 1
    o.fmul = 9;
    o.fdiv = 1;   // s = Gm / (r2*r)
    o.fsqrt = 1;  // r = sqrt(r2)
    o.load = 5;   // source x,y,z,m + node/leaf bookkeeping
    o.iop = 4;
    o.branch = 1;
  } else {
    // deltas 3, r2 2+1, Karp poly 3 + NR 2, acc 3, pot 1
    o.fadd = 15;
    // squares 3, poly 2, NR 8, rescale 1, cube 2, Gm 1, s=Gm*y3 1, s*d 3,
    // pot=Gm*y 1
    o.fmul = 22;
    o.load = 8;  // + the 3-coefficient Karp table segment
    o.iop = 10;  // + exponent/mantissa manipulation
    o.branch = 1;
  }
  return o;
}

OpCounter quadrupole_ops() {
  OpCounter o;
  o.fmul = 22;  // Q*d (9), d.Qd (3), y^5/y^7 (2), term scaling (8)
  o.fadd = 12;  // Q*d (6), d.Qd (2), accumulate (4)
  o.load = 6;   // the packed tensor
  return o;
}

OpCounter mac_test_ops() {
  OpCounter o;
  o.fadd = 5;  // deltas to the node COM + d2 accumulation
  o.fmul = 4;  // squares + theta^2 * d2
  o.load = 5;  // com, half, node header
  o.iop = 2;   // compare + stack bookkeeping
  o.branch = 1;
  return o;
}

namespace {

OpCounter visit_ops() {
  OpCounter o;
  o.iop = 4;
  o.load = 2;
  o.branch = 1;
  return o;
}

/// The inner kernel: accumulate the (softened) pull of a point mass gm at
/// (sx,sy,sz) on the target at (px,py,pz). Returns false for the
/// self-interaction (exact position coincidence).
template <RsqrtImpl Impl>
inline bool point_interaction(double px, double py, double pz, double sx,
                              double sy, double sz, double gm, double eps2,
                              double& ax, double& ay, double& az,
                              double& pot) {
  const double dx = sx - px;
  const double dy = sy - py;
  const double dz = sz - pz;
  const double r2raw = dx * dx + dy * dy + dz * dz;
  if (r2raw == 0.0) return false;
  const double r2 = r2raw + eps2;
  double s, phi;
  if constexpr (Impl == RsqrtImpl::kLibm) {
    const double r = std::sqrt(r2);
    s = gm / (r2 * r);
    phi = s * r2;  // gm / r
  } else {
    const double y = micro::karp_rsqrt(r2, 2);
    const double y3 = y * y * y;
    s = gm * y3;
    phi = gm * y;
  }
  ax += s * dx;
  ay += s * dy;
  az += s * dz;
  pot -= phi;
  return true;
}

template <RsqrtImpl Impl>
TraversalStats traverse(ParticleSet& targets, const ParticleSet& src,
                        const Octree& tree, const GravityParams& params,
                        std::size_t first, std::size_t last) {
  TraversalStats stats;
  const double eps2 = params.softening * params.softening;
  const double theta2 = params.theta * params.theta;
  const auto& nodes = tree.nodes();
  std::vector<std::uint32_t> stack;
  stack.reserve(128);

  for (std::size_t i = first; i < last; ++i) {
    const double px = targets.x[i], py = targets.y[i], pz = targets.z[i];
    double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
    stack.push_back(0);
    while (!stack.empty()) {
      const Node& n = nodes[stack.back()];
      stack.pop_back();
      ++stats.visited;
      if (n.mass == 0.0 || n.count == 0) continue;

      const double dx = n.com[0] - px;
      const double dy = n.com[1] - py;
      const double dz = n.com[2] - pz;
      const double d2 = dx * dx + dy * dy + dz * dz;
      const double size = 2.0 * n.half;
      ++stats.mac_tests;
      if (size * size < theta2 * d2) {
        // Accept: monopole (plus optional quadrupole) with the cell.
        point_interaction<Impl>(px, py, pz, n.com[0], n.com[1], n.com[2],
                                params.G * n.mass, eps2, ax, ay, az, pot);
        if (params.quadrupole) {
          // a_quad = G[-(Q d)/r^5 + 2.5 (d.Qd) d / r^7], d = com - p;
          // phi_quad = -G (d.Qd) / (2 r^5).
          const double r2 = d2 + eps2;
          double y;
          if constexpr (Impl == RsqrtImpl::kLibm) {
            y = 1.0 / std::sqrt(r2);
          } else {
            y = micro::karp_rsqrt(r2, 2);
          }
          const double u2 = y * y;
          const double y5 = u2 * u2 * y;
          const double y7 = y5 * u2;
          const double qdx =
              n.quad[0] * dx + n.quad[1] * dy + n.quad[2] * dz;
          const double qdy =
              n.quad[1] * dx + n.quad[3] * dy + n.quad[4] * dz;
          const double qdz =
              n.quad[2] * dx + n.quad[4] * dy + n.quad[5] * dz;
          const double dqd = dx * qdx + dy * qdy + dz * qdz;
          const double radial = 2.5 * params.G * dqd * y7;
          ax += params.G * -qdx * y5 + radial * dx;
          ay += params.G * -qdy * y5 + radial * dy;
          az += params.G * -qdz * y5 + radial * dz;
          pot -= 0.5 * params.G * dqd * y5;
          ++stats.pn_quad;
        }
        ++stats.pn;
      } else if (n.leaf) {
        for (std::uint32_t j = n.first; j < n.first + n.count; ++j) {
          if (point_interaction<Impl>(px, py, pz, src.x[j], src.y[j],
                                      src.z[j], params.G * src.m[j], eps2, ax,
                                      ay, az, pot)) {
            ++stats.pp;
          }
        }
      } else {
        for (std::uint8_t c = 0; c < n.child_count; ++c)
          stack.push_back(n.child[c]);
      }
    }
    targets.ax[i] += ax;
    targets.ay[i] += ay;
    targets.az[i] += az;
    targets.pot[i] += pot;
  }

  const RsqrtImpl impl = params.rsqrt;
  stats.ops = interaction_ops(impl) * (stats.pp + stats.pn) +
              quadrupole_ops() * stats.pn_quad +
              mac_test_ops() * stats.mac_tests + visit_ops() * stats.visited;
  // The quadrupole path recomputes the reciprocal sqrt once more per cell.
  if (params.quadrupole) {
    OpCounter rsqrt_extra;
    if (impl == RsqrtImpl::kLibm) {
      rsqrt_extra.fsqrt = 1;
      rsqrt_extra.fdiv = 1;
    } else {
      rsqrt_extra.fmul = 11;
      rsqrt_extra.fadd = 5;
      rsqrt_extra.load = 3;
      rsqrt_extra.iop = 8;
    }
    stats.ops += rsqrt_extra * stats.pn_quad;
  }
  return stats;
}

}  // namespace

TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params, std::size_t first,
                              std::size_t last) {
  BLADED_REQUIRE(first <= last && last <= p.size());
  BLADED_REQUIRE(tree.particle_count() == p.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse<RsqrtImpl::kLibm>(p, p, tree, params, first, last)
             : traverse<RsqrtImpl::kKarp>(p, p, tree, params, first, last);
}

TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params) {
  return compute_forces(p, tree, params, 0, p.size());
}

namespace {

/// Entry of a group interaction list: a point mass, optionally with the
/// quadrupole of the originating cell.
struct ListEntry {
  double x, y, z, gm;
  const double* quad = nullptr;  ///< borrowed from the node, or null
};

template <RsqrtImpl Impl>
TraversalStats traverse_grouped(ParticleSet& p, const Octree& tree,
                                const GravityParams& params) {
  TraversalStats stats;
  const double eps2 = params.softening * params.softening;
  const double theta2 = params.theta * params.theta;
  const auto& nodes = tree.nodes();

  std::vector<std::uint32_t> stack;
  std::vector<ListEntry> list;
  stack.reserve(128);
  list.reserve(4096);

  for (const Node& group : nodes) {
    if (!group.leaf || group.count == 0) continue;

    // One walk for the whole group: accept against the group's cell.
    list.clear();
    stack.push_back(0);
    while (!stack.empty()) {
      const Node& n = nodes[stack.back()];
      stack.pop_back();
      ++stats.visited;
      if (n.mass == 0.0 || n.count == 0) continue;
      const double dmin2 = BoundingBox::dist2_to_cell(
          n.com[0], n.com[1], n.com[2], group.center, group.half);
      const double size = 2.0 * n.half;
      ++stats.mac_tests;
      if (size * size < theta2 * dmin2) {
        list.push_back({n.com[0], n.com[1], n.com[2], params.G * n.mass,
                        params.quadrupole ? n.quad : nullptr});
      } else if (n.leaf) {
        for (std::uint32_t j = n.first; j < n.first + n.count; ++j) {
          list.push_back({p.x[j], p.y[j], p.z[j], params.G * p.m[j],
                          nullptr});
        }
      } else {
        for (std::uint8_t c = 0; c < n.child_count; ++c)
          stack.push_back(n.child[c]);
      }
    }

    // Stream the list over the group's particles.
    for (std::uint32_t i = group.first; i < group.first + group.count; ++i) {
      const double px = p.x[i], py = p.y[i], pz = p.z[i];
      double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
      for (const ListEntry& e : list) {
        if (point_interaction<Impl>(px, py, pz, e.x, e.y, e.z, e.gm, eps2,
                                    ax, ay, az, pot)) {
          e.quad == nullptr ? ++stats.pp : ++stats.pn;
        }
        if (e.quad != nullptr) {
          const double dx = e.x - px, dy = e.y - py, dz = e.z - pz;
          const double r2 = dx * dx + dy * dy + dz * dz + eps2;
          double y;
          if constexpr (Impl == RsqrtImpl::kLibm) {
            y = 1.0 / std::sqrt(r2);
          } else {
            y = micro::karp_rsqrt(r2, 2);
          }
          const double u2 = y * y;
          const double y5 = u2 * u2 * y;
          const double y7 = y5 * u2;
          const double qdx = e.quad[0] * dx + e.quad[1] * dy + e.quad[2] * dz;
          const double qdy = e.quad[1] * dx + e.quad[3] * dy + e.quad[4] * dz;
          const double qdz = e.quad[2] * dx + e.quad[4] * dy + e.quad[5] * dz;
          const double dqd = dx * qdx + dy * qdy + dz * qdz;
          // The quadrupole tensor is unscaled (G is folded into e.gm only
          // for the monopole), so apply G here.
          const double radial = 2.5 * params.G * dqd * y7;
          ax += params.G * -qdx * y5 + radial * dx;
          ay += params.G * -qdy * y5 + radial * dy;
          az += params.G * -qdz * y5 + radial * dz;
          pot -= 0.5 * params.G * dqd * y5;
          ++stats.pn_quad;
        }
      }
      p.ax[i] += ax;
      p.ay[i] += ay;
      p.az[i] += az;
      p.pot[i] += pot;
    }
  }

  stats.ops = interaction_ops(params.rsqrt) * (stats.pp + stats.pn) +
              quadrupole_ops() * stats.pn_quad +
              mac_test_ops() * stats.mac_tests + visit_ops() * stats.visited;
  return stats;
}

}  // namespace

TraversalStats compute_forces_grouped(ParticleSet& p, const Octree& tree,
                                      const GravityParams& params) {
  BLADED_REQUIRE(tree.particle_count() == p.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse_grouped<RsqrtImpl::kLibm>(p, tree, params)
             : traverse_grouped<RsqrtImpl::kKarp>(p, tree, params);
}

TraversalStats compute_forces_on(ParticleSet& targets, const ParticleSet& src,
                                 const Octree& tree,
                                 const GravityParams& params) {
  BLADED_REQUIRE(tree.particle_count() == src.size());
  BLADED_REQUIRE(params.theta > 0.0);
  return params.rsqrt == RsqrtImpl::kLibm
             ? traverse<RsqrtImpl::kLibm>(targets, src, tree, params, 0,
                                          targets.size())
             : traverse<RsqrtImpl::kKarp>(targets, src, tree, params, 0,
                                          targets.size());
}

}  // namespace bladed::treecode
