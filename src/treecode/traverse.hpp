#pragma once

/// Barnes–Hut force evaluation over the hashed octree: per-particle stack
/// traversal with the opening-angle multipole acceptance criterion
/// s/d < theta, softened monopole interactions, and a choice of reciprocal
/// square root (library sqrt+divide, or Karp's all-multiply scheme — the two
/// §3.2 variants). Interactions and MAC tests are counted exactly and
/// converted to operation counts for the performance model.

#include "common/opcount.hpp"
#include "treecode/tree.hpp"

namespace bladed::treecode {

enum class RsqrtImpl { kLibm, kKarp };

struct GravityParams {
  double theta = 0.7;        ///< opening angle (s/d acceptance)
  double softening = 1e-3;   ///< Plummer softening length
  double G = 1.0;            ///< gravitational constant
  RsqrtImpl rsqrt = RsqrtImpl::kKarp;
  /// Apply the cells' traceless quadrupole correction on accepted cells
  /// (the Warren-Salmon production treecodes carried multipoles beyond the
  /// monopole; this cuts the force error several-fold at equal theta).
  bool quadrupole = false;
};

struct TraversalStats {
  std::uint64_t pp = 0;         ///< particle-particle interactions
  std::uint64_t pn = 0;         ///< particle-node (monopole) interactions
  std::uint64_t pn_quad = 0;    ///< cells that also applied a quadrupole
  std::uint64_t mac_tests = 0;  ///< acceptance tests evaluated
  std::uint64_t visited = 0;    ///< nodes popped from the stack
  OpCounter ops;                ///< derived operation counts

  TraversalStats& operator+=(const TraversalStats& o);
  [[nodiscard]] std::uint64_t interactions() const { return pp + pn; }
};

/// Per-interaction / per-test operation-count constants (audited against the
/// kernel source; shared with the parallel driver and the benches).
[[nodiscard]] OpCounter interaction_ops(RsqrtImpl impl);
[[nodiscard]] OpCounter mac_test_ops();
/// Extra cost of the quadrupole correction on an accepted cell.
[[nodiscard]] OpCounter quadrupole_ops();

/// Accelerations and potentials of particles [first, last) of `p` (in the
/// tree's Morton order) due to the whole tree. Pass the full range for a
/// serial evaluation. Accelerations are accumulated (call
/// p.zero_accelerations() first).
TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params,
                              std::size_t first, std::size_t last);

/// Whole-set convenience overload.
TraversalStats compute_forces(ParticleSet& p, const Octree& tree,
                              const GravityParams& params = {});

/// Forces on the particles of `targets` (not necessarily in the tree) due to
/// `tree` built over a possibly different set — used by the parallel driver
/// where the local tree contains imported remote mass elements.
TraversalStats compute_forces_on(ParticleSet& targets, const ParticleSet& src,
                                 const Octree& tree,
                                 const GravityParams& params);

/// Group (dual-tree) variant of the Warren-Salmon production codes: one
/// tree walk per *leaf group* builds an interaction list accepted against
/// the whole group cell (MAC at the closest approach, so it is valid — and
/// slightly conservative — for every particle in the group), then the list
/// is evaluated over the group's particles in cache-sized SoA tiles (with
/// the quadrupole off, bit-identical to streaming the whole list per
/// particle). Amortizes MAC tests and node visits across the group at the
/// cost of a somewhat longer list.
/// Monopole-only (the quadrupole flag is honored for accepted cells).
TraversalStats compute_forces_grouped(ParticleSet& p, const Octree& tree,
                                      const GravityParams& params);

}  // namespace bladed::treecode
