#include "treecode/tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bladed::treecode {

namespace {

struct Builder {
  const ParticleSet& p;
  const std::vector<std::uint64_t>& keys;
  Octree::Params params;
  std::vector<Node> nodes;
  std::unordered_map<std::uint64_t, std::uint32_t> hash;
  int depth = 0;
  std::size_t leaves = 0;
  OpCounter ops;

  /// Create the node for [first,last) at `level`; returns its index.
  /// Children are appended contiguously after all nodes of the parent are
  /// known, breadth-on-demand (children of one parent are contiguous).
  std::uint32_t build_node(std::uint32_t first, std::uint32_t last, int level,
                           std::uint64_t path_key, const double center[3],
                           double half) {
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.emplace_back();
    {
      Node& n = nodes.back();
      n.center[0] = center[0];
      n.center[1] = center[1];
      n.center[2] = center[2];
      n.half = half;
      n.first = first;
      n.count = last - first;
      n.level = static_cast<std::uint8_t>(level);
      n.path_key = path_key;
    }
    hash.emplace(path_key, idx);
    depth = std::max(depth, level);

    const std::uint32_t count = last - first;
    // Moments: COM and quadrupole over the range (done here once; children
    // recompute over their subranges — O(N log N) total, as in the
    // reference library).
    {
      double m = 0.0, cx = 0.0, cy = 0.0, cz = 0.0;
      double sxx = 0.0, sxy = 0.0, sxz = 0.0, syy = 0.0, syz = 0.0,
             szz = 0.0;  // second moments about the origin
      for (std::uint32_t i = first; i < last; ++i) {
        const double mi = p.m[i];
        m += mi;
        cx += mi * p.x[i];
        cy += mi * p.y[i];
        cz += mi * p.z[i];
        sxx += mi * p.x[i] * p.x[i];
        sxy += mi * p.x[i] * p.y[i];
        sxz += mi * p.x[i] * p.z[i];
        syy += mi * p.y[i] * p.y[i];
        syz += mi * p.y[i] * p.z[i];
        szz += mi * p.z[i] * p.z[i];
      }
      ops.fadd += 10ULL * count;
      ops.fmul += 15ULL * count;
      ops.load += 4ULL * count;
      Node& n = nodes[idx];
      n.mass = m;
      if (m > 0.0) {
        n.com[0] = cx / m;
        n.com[1] = cy / m;
        n.com[2] = cz / m;
        ops.fdiv += 3;
        // Shift second moments to the COM (parallel-axis), then form the
        // traceless tensor Q_ij = 3 S'_ij - tr(S') delta_ij.
        const double pxx = sxx - m * n.com[0] * n.com[0];
        const double pxy = sxy - m * n.com[0] * n.com[1];
        const double pxz = sxz - m * n.com[0] * n.com[2];
        const double pyy = syy - m * n.com[1] * n.com[1];
        const double pyz = syz - m * n.com[1] * n.com[2];
        const double pzz = szz - m * n.com[2] * n.com[2];
        const double tr = pxx + pyy + pzz;
        n.quad[0] = 3.0 * pxx - tr;
        n.quad[1] = 3.0 * pxy;
        n.quad[2] = 3.0 * pxz;
        n.quad[3] = 3.0 * pyy - tr;
        n.quad[4] = 3.0 * pyz;
        n.quad[5] = 3.0 * pzz - tr;
        ops.fadd += 11;
        ops.fmul += 18;
      } else {
        n.com[0] = center[0];
        n.com[1] = center[1];
        n.com[2] = center[2];
      }
    }

    if (count <= static_cast<std::uint32_t>(params.leaf_capacity) ||
        level >= params.max_depth) {
      ++leaves;
      return idx;  // leaf (n.leaf defaults true)
    }

    // Split [first,last) into octant subranges via upper_bound on the key
    // prefix — the range is sorted, so each child is a contiguous run.
    std::uint32_t starts[9];
    starts[0] = first;
    const int shift = 3 * (kMortonBitsPerDim - 1 - level);
    for (int oct = 0; oct < 8; ++oct) {
      // First index whose octant at this level exceeds `oct`.
      const auto begin = keys.begin() + starts[oct];
      const auto end = keys.begin() + last;
      const auto it = std::upper_bound(
          begin, end, static_cast<std::uint64_t>(oct),
          [&](std::uint64_t value, std::uint64_t key) {
            return value < ((key >> shift) & 7ULL);
          });
      starts[oct + 1] = static_cast<std::uint32_t>(it - keys.begin());
      ops.iop += static_cast<std::uint64_t>(
          std::log2(std::max<std::uint32_t>(2, count)));
    }

    nodes[idx].leaf = false;
    const double h2 = half * 0.5;
    std::uint32_t children[8];
    std::uint8_t built = 0;
    for (int oct = 0; oct < 8; ++oct) {
      const std::uint32_t a = starts[oct], b = starts[oct + 1];
      if (a == b) continue;
      double ccenter[3];
      ccenter[0] = center[0] + ((oct & 1) ? h2 : -h2);
      ccenter[1] = center[1] + ((oct & 2) ? h2 : -h2);
      ccenter[2] = center[2] + ((oct & 4) ? h2 : -h2);
      children[built++] =
          build_node(a, b, level + 1, (path_key << 3) | oct, ccenter, h2);
    }
    Node& n = nodes[idx];  // re-resolve: recursion may have reallocated
    n.child_count = built;
    for (std::uint8_t c = 0; c < built; ++c) n.child[c] = children[c];
    return idx;
  }
};

}  // namespace

Octree Octree::build(ParticleSet& p, Params params) {
  BLADED_REQUIRE_MSG(p.size() > 0, "cannot build a tree over zero particles");
  const BoundingBox box = BoundingBox::containing(p);
  std::vector<std::uint64_t> keys = morton_keys(p, box);
  const std::vector<std::size_t> perm = sort_permutation(keys);
  p.apply_permutation(perm);
  std::sort(keys.begin(), keys.end());
  Octree t = build_sorted(p, box, params);
  // Account for the key generation + sort the caller just paid for.
  const auto n = static_cast<std::uint64_t>(p.size());
  const auto logn = static_cast<std::uint64_t>(
      std::max(1.0, std::log2(static_cast<double>(n))));
  t.build_ops_.fmul += 3 * n;  // quantization scale
  t.build_ops_.fadd += 3 * n;
  t.build_ops_.iop += 30 * n + 2 * n * logn;  // interleave + sort compares
  t.build_ops_.load += n * logn;
  t.build_ops_.store += 11 * n;  // permutation writes
  return t;
}

Octree Octree::build_sorted(const ParticleSet& p, const BoundingBox& box,
                            Params params) {
  BLADED_REQUIRE(p.size() > 0);
  BLADED_REQUIRE(params.leaf_capacity >= 1);
  BLADED_REQUIRE(params.max_depth >= 1 &&
                 params.max_depth <= kMortonBitsPerDim);

  const std::vector<std::uint64_t> keys = morton_keys(p, box);
  BLADED_REQUIRE_MSG(std::is_sorted(keys.begin(), keys.end()),
                     "build_sorted requires Morton-ordered particles");

  Builder b{p, keys, params, {}, {}, 0, 0, {}};
  b.nodes.reserve(2 * p.size() / std::max(1, params.leaf_capacity) + 64);
  double center[3];
  for (int d = 0; d < 3; ++d) center[d] = box.lo[d] + 0.5 * box.extent;
  b.build_node(0, static_cast<std::uint32_t>(p.size()), 0, 1, center,
               0.5 * box.extent);

  Octree t;
  t.nodes_ = std::move(b.nodes);
  t.hash_ = std::move(b.hash);
  t.box_ = box;
  t.nparticles_ = p.size();
  t.depth_ = b.depth;
  t.leaves_ = b.leaves;
  t.build_ops_ = b.ops;
  return t;
}

const Node* Octree::find(std::uint64_t path_key) const {
  const auto it = hash_.find(path_key);
  return it == hash_.end() ? nullptr : &nodes_[it->second];
}

}  // namespace bladed::treecode
