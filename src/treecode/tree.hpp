#pragma once

/// Hashed oct-tree over Morton-sorted particles (Warren & Salmon SC'93).
/// The tree is built by recursively splitting the key-sorted particle range
/// on key-prefix octants; nodes live in a flat vector (children contiguous)
/// and are additionally indexed by their Warren–Salmon path key in a hash
/// map, which is what makes locating an arbitrary cell O(1) — the property
/// the "hashed" oct-tree is named for.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/opcount.hpp"
#include "treecode/morton.hpp"
#include "treecode/particle.hpp"

namespace bladed::treecode {

struct Node {
  // Geometry.
  double center[3] = {0, 0, 0};
  double half = 0.0;  ///< half of the cell side length
  // Monopole moment.
  double com[3] = {0, 0, 0};
  double mass = 0.0;
  // Traceless quadrupole about the COM: Q_ij = sum m (3 y_i y_j - y^2 d_ij),
  // packed as (xx, xy, xz, yy, yz, zz).
  double quad[6] = {0, 0, 0, 0, 0, 0};
  // Particle range in SFC order.
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  // Indices of the child nodes: child[0..child_count-1] are valid.
  std::uint32_t child[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::uint8_t child_count = 0;
  std::uint8_t level = 0;
  bool leaf = true;
  /// Warren–Salmon path key: 1 for the root, (parent << 3) | octant below.
  std::uint64_t path_key = 1;
};

/// Tree construction parameters.
struct TreeParams {
  int leaf_capacity = 16;
  int max_depth = kMortonBitsPerDim;
};

class Octree {
 public:
  using Params = TreeParams;

  /// Build over `p`. The particle set is permuted into Morton order in
  /// place; node particle ranges refer to that order.
  static Octree build(ParticleSet& p, Params params = TreeParams{});

  /// Build assuming `p` is already Morton-ordered within `box` (used by the
  /// parallel driver after the decomposition sort).
  static Octree build_sorted(const ParticleSet& p, const BoundingBox& box,
                             Params params = TreeParams{});

  [[nodiscard]] const Node& root() const { return nodes_[0]; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const BoundingBox& box() const { return box_; }
  [[nodiscard]] std::size_t particle_count() const { return nparticles_; }

  /// Hashed lookup by Warren–Salmon path key; nullptr if absent.
  [[nodiscard]] const Node* find(std::uint64_t path_key) const;

  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_; }

  /// Operation accounting for the build (key generation, sort, recursion,
  /// moment summation), for the performance model.
  [[nodiscard]] const OpCounter& build_ops() const { return build_ops_; }

 private:
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::uint32_t> hash_;
  BoundingBox box_;
  std::size_t nparticles_ = 0;
  int depth_ = 0;
  std::size_t leaves_ = 0;
  OpCounter build_ops_;
};

}  // namespace bladed::treecode
