#include "wcet/wcet.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <sstream>

#include "check/cfg.hpp"
#include "check/dominators.hpp"
#include "cms/interpreter.hpp"
#include "cms/translator.hpp"
#include "prove/bounds.hpp"
#include "prove/context.hpp"

namespace bladed::wcet {

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kSat - b ? kSat : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kSat / b ? kSat : a * b;
}

/// Cycles the interpreter charges for one execution of the engine block at
/// `pc` (the `block_end` region, exactly what Interpreter::run_block walks):
/// dispatch + latency per instruction, dispatch only for the halt.
std::uint64_t interp_cost(const cms::Program& prog, std::size_t pc,
                          const cms::InterpreterCosts& costs) {
  std::uint64_t cycles = 0;
  const std::size_t end = cms::block_end(prog, pc);
  for (std::size_t i = pc; i < end; ++i) {
    if (prog[i].op == cms::Op::kHalt) {
      cycles += static_cast<std::uint64_t>(costs.dispatch_cycles);
      break;
    }
    cycles += static_cast<std::uint64_t>(costs.dispatch_cycles +
                                         cms::latency_of(prog[i].op));
  }
  return cycles;
}

/// Dispatch successors of the engine block at `pc`: the pcs the engine's
/// run loop can re-enter at after executing [pc, block_end). `exit` (the
/// program size) stands for leaving the program — retiring a halt, a branch
/// one past the end, or falling off the end.
std::vector<std::size_t> engine_succs(const cms::Program& prog,
                                      std::size_t pc) {
  const std::size_t exit = prog.size();
  const std::size_t end = cms::block_end(prog, pc);
  const cms::Instr& last = prog[end - 1];
  if (last.op == cms::Op::kHalt) return {exit};
  if (!cms::is_branch(last.op)) return {exit};  // fell off the end
  const auto target = static_cast<std::size_t>(last.imm_i);
  if (last.op == cms::Op::kJmp) return {target};
  return {target, end};  // taken, fallthrough (end == last + 1)
}

/// Reverse post-order of the reachable CFG blocks (iterative DFS from the
/// entry block). Retreating edges under this order are exactly the edges
/// the trip-count argument must license.
std::vector<std::size_t> reverse_post_order(const check::Cfg& cfg) {
  const auto& blocks = cfg.blocks();
  std::vector<std::size_t> order;
  if (blocks.empty()) return order;
  std::vector<std::uint8_t> state(blocks.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(cfg.block_of(0), 0);
  state[cfg.block_of(0)] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& succs = blocks[b].succs;
    bool descended = false;
    while (next < succs.size()) {
      const std::size_t leader = succs[next++];
      if (leader == cfg.exit_pc()) continue;
      const std::size_t s = cfg.block_of(leader);
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
        descended = true;
        break;
      }
    }
    if (descended) continue;
    state[b] = 2;
    order.push_back(b);
    stack.pop_back();
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void append_u64(std::ostringstream& os, std::uint64_t v) {
  if (v == kSat) {
    os << "\"saturated\"";
  } else {
    os << v;
  }
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kInterpret: return "interpret";
    case Tier::kTier2: return "tier2";
    case Tier::kTier3: return "tier3";
  }
  return "?";
}

CostParams CostParams::from(const cms::MorphingConfig& cfg) {
  CostParams p;
  p.interpreter = cfg.interpreter;
  p.molecule = cfg.molecule;
  p.translator = cfg.translator;
  p.cache_molecules = cfg.cache_molecules;
  p.hot_threshold = cfg.hot_threshold;
  return p;
}

const TierBounds& Certificate::for_tier(Tier t) const {
  switch (t) {
    case Tier::kInterpret: return interpret;
    case Tier::kTier2: return tier2;
    case Tier::kTier3: return tier3;
  }
  return tier2;
}

Certificate certify(const cms::Program& prog, std::size_t mem_doubles,
                    const CostParams& costs) {
  Certificate cert;
  try {
    cms::validate(prog, mem_doubles);
  } catch (const std::exception& e) {
    cert.error = e.what();
    return cert;
  }
  cert.valid = true;
  if (prog.empty()) {
    cert.bounded = true;
    return cert;
  }

  const prove::Context ctx(prog, mem_doubles);
  const check::Cfg& cfg = ctx.cfg();
  const auto& blocks = cfg.blocks();
  const std::vector<check::NaturalLoop>& loops = ctx.loops();
  const std::vector<prove::LoopBound> bounds = prove::compute_loop_bounds(ctx);

  const std::vector<std::size_t> rpo = reverse_post_order(cfg);
  std::vector<std::size_t> rpo_index(blocks.size(),
                                     std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  std::vector<std::size_t> header_loop(blocks.size(), prove::Context::kNoLoop);
  for (std::size_t li = 0; li < loops.size(); ++li) {
    header_loop[loops[li].header] = li;
  }

  // License pass: every retreating edge of the reachable CFG must be a back
  // edge into a natural loop whose trip count the prover bounded. Anything
  // else — an irreducible cycle, or a loop with no counted-guard shape —
  // has no static execution-count argument and gets a refusal.
  for (const std::size_t u : rpo) {
    for (const std::size_t leader : blocks[u].succs) {
      if (leader == cfg.exit_pc()) continue;
      const std::size_t v = cfg.block_of(leader);
      if (rpo_index[v] > rpo_index[u]) continue;  // forward edge
      const std::size_t li = header_loop[v];
      if (li == prove::Context::kNoLoop || !loops[li].contains(u)) {
        cert.unbounded.push_back(
            {blocks[v].begin,
             "irreducible cycle through pc " + std::to_string(blocks[v].begin) +
                 " (no natural-loop header dominates it)"});
      } else if (!bounds[li].bounded) {
        cert.unbounded.push_back(
            {blocks[v].begin,
             "loop at header pc " + std::to_string(blocks[v].begin) +
                 " carries no trip-count license"});
      }
    }
  }
  if (!cert.unbounded.empty()) {
    std::sort(cert.unbounded.begin(), cert.unbounded.end(),
              [](const UnboundedSite& a, const UnboundedSite& b) {
                return a.pc < b.pc;
              });
    cert.unbounded.erase(
        std::unique(cert.unbounded.begin(), cert.unbounded.end(),
                    [](const UnboundedSite& a, const UnboundedSite& b) {
                      return a.pc == b.pc;
                    }),
        cert.unbounded.end());
    return cert;
  }
  cert.bounded = true;

  // Execution-count pass, one sweep in reverse post-order. A non-header
  // block executes at most once per traversal of an incoming forward edge;
  // a header additionally multiplies by its loop's licensed trip count
  // (max_trips bounds header executions *per loop entry*, and the forward
  // inflow is exactly the entry count). All arithmetic saturates.
  const auto preds = cfg.predecessors();
  std::vector<std::uint64_t> count(blocks.size(), 0);
  const std::size_t entry_block = cfg.block_of(0);
  for (const std::size_t b : rpo) {
    std::uint64_t inflow = b == entry_block ? 1 : 0;
    for (const std::size_t p : preds[b]) {
      if (rpo_index[p] < rpo_index[b]) inflow = sat_add(inflow, count[p]);
    }
    const std::size_t li = header_loop[b];
    count[b] = li == prove::Context::kNoLoop
                   ? inflow
                   : sat_mul(inflow, static_cast<std::uint64_t>(
                                         bounds[li].max_trips));
  }

  // Engine entries: pc 0 plus every successor of a branch-terminated block.
  // Each execution of such a block retires its branch at most once, so the
  // block count bounds the dispatches it can cause at either target.
  std::map<std::size_t, std::uint64_t> dispatches;
  dispatches[0] = 1;
  for (const std::size_t b : rpo) {
    const check::BasicBlock& blk = blocks[b];
    if (!cms::is_branch(prog[blk.end - 1].op)) continue;
    for (const std::size_t leader : blk.succs) {
      if (leader == cfg.exit_pc()) continue;
      auto& n = dispatches[leader];
      n = sat_add(n, count[b]);
    }
  }

  // Price each entry once: interpreted, translated, native.
  const cms::Translator translator(costs.molecule, costs.translator);
  std::size_t total_molecules = 0;
  for (const auto& [pc, n] : dispatches) {
    EntryCost e;
    e.entry_pc = pc;
    e.max_dispatches = n;
    e.interp_cycles = interp_cost(prog, pc, costs.interpreter);
    const cms::Translation t = translator.translate(prog, pc);
    e.translate_cycles = translator.translation_cost(t.instr_count);
    e.native_cycles = t.native_cycles();
    e.molecules = t.molecules.size();
    total_molecules += e.molecules;
    cert.entries.push_back(e);
  }
  cert.eviction_free = total_molecules <= costs.cache_molecules;

  // Upper bounds. Interpret tier: every dispatch pays the interpreter.
  // Tier-2, eviction-free: the first min(n, threshold-1) dispatches are
  // interpreted, one translation is paid iff the threshold is reached, and
  // every later dispatch runs native out of the cache (monotone in n, so a
  // dispatch over-count never under-prices). Without the eviction-free
  // guarantee each dispatch is one of {interpret, translate+native, hit}
  // and the maximum of those prices every one of them.
  const std::uint64_t cap =
      costs.hot_threshold == 0 ? 0 : costs.hot_threshold - 1;
  for (const EntryCost& e : cert.entries) {
    cert.interpret.upper = sat_add(cert.interpret.upper,
                                   sat_mul(e.max_dispatches, e.interp_cycles));
    std::uint64_t ub;
    if (cert.eviction_free) {
      const std::uint64_t interpreted = std::min(e.max_dispatches, cap);
      ub = sat_mul(interpreted, e.interp_cycles);
      if (e.max_dispatches > interpreted) {
        ub = sat_add(ub, sat_add(e.translate_cycles,
                                 sat_mul(e.max_dispatches - interpreted,
                                         e.native_cycles)));
      }
    } else {
      ub = sat_mul(e.max_dispatches,
                   std::max(e.interp_cycles,
                            sat_add(e.translate_cycles, e.native_cycles)));
    }
    cert.tier2.upper = sat_add(cert.tier2.upper, ub);
  }

  // Lower bounds: any halting run's dispatch sequence is a walk from pc 0
  // to the exit in the engine-block graph, and every dispatch at entry e
  // costs at least its cheapest single execution — I(e) interpreted,
  // min(I(e), N(e)) once translation is possible. The cheapest walk is at
  // least the cheapest simple path (Dijkstra; node costs, exit free).
  const auto shortest = [&](bool tier2) {
    std::map<std::size_t, std::uint64_t> node_cost;
    for (const EntryCost& e : cert.entries) {
      node_cost[e.entry_pc] =
          tier2 ? std::min(e.interp_cycles, e.native_cycles) : e.interp_cycles;
    }
    const std::size_t exit = prog.size();
    std::map<std::size_t, std::uint64_t> dist;
    using Item = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> q;
    const std::uint64_t d0 = node_cost.count(0) != 0 ? node_cost[0] : 0;
    dist[0] = d0;
    q.emplace(d0, 0);
    while (!q.empty()) {
      const auto [d, pc] = q.top();
      q.pop();
      if (dist.count(pc) != 0 && d > dist[pc]) continue;
      if (pc == exit) return d;
      for (const std::size_t s : engine_succs(prog, pc)) {
        const std::uint64_t step =
            s == exit || node_cost.count(s) == 0 ? 0 : node_cost[s];
        const std::uint64_t nd = sat_add(d, step);
        if (dist.count(s) == 0 || nd < dist[s]) {
          dist[s] = nd;
          q.emplace(nd, s);
        }
      }
    }
    return std::uint64_t{0};  // exit unreachable: trivially sound
  };
  cert.interpret.lower = shortest(false);
  cert.tier2.lower = shortest(true);

  // Tier-3 replays tier-2's accounting bit-identically (DESIGN.md §14), so
  // its certificate is tier-2's by contract, not by a separate argument.
  cert.tier3 = cert.tier2;
  return cert;
}

std::string Certificate::to_string() const {
  std::ostringstream os;
  if (!valid) {
    os << "invalid program: " << error;
    return os.str();
  }
  if (!bounded) {
    os << "unbounded:";
    for (const UnboundedSite& s : unbounded) {
      os << "\n  pc " << s.pc << ": " << s.reason;
    }
    return os.str();
  }
  os << "bounded (" << entries.size() << " entries, "
     << (eviction_free ? "eviction-free" : "eviction possible") << ")";
  os << "\n  interpret: [" << interpret.lower << ", " << interpret.upper
     << "] cycles";
  os << "\n  tier2:     [" << tier2.lower << ", " << tier2.upper << "] cycles";
  os << "\n  tier3:     [" << tier3.lower << ", " << tier3.upper
     << "] cycles (== tier2 by bit-identity)";
  return os.str();
}

std::string Certificate::to_json() const {
  std::ostringstream os;
  os << "{\"valid\":" << (valid ? "true" : "false");
  if (!valid) {
    os << ",\"error\":\"" << escape(error) << "\"}";
    return os.str();
  }
  os << ",\"bounded\":" << (bounded ? "true" : "false");
  if (!bounded) {
    os << ",\"unbounded\":[";
    for (std::size_t i = 0; i < unbounded.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"pc\":" << unbounded[i].pc << ",\"reason\":\""
         << escape(unbounded[i].reason) << "\"}";
    }
    os << "]}";
    return os.str();
  }
  os << ",\"eviction_free\":" << (eviction_free ? "true" : "false")
     << ",\"entries\":" << entries.size() << ",\"tiers\":{";
  const std::pair<const char*, const TierBounds*> tiers[] = {
      {"interpret", &interpret}, {"tier2", &tier2}, {"tier3", &tier3}};
  for (std::size_t i = 0; i < 3; ++i) {
    if (i != 0) os << ",";
    os << "\"" << tiers[i].first << "\":{\"lower\":";
    append_u64(os, tiers[i].second->lower);
    os << ",\"upper\":";
    append_u64(os, tiers[i].second->upper);
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace bladed::wcet
