#pragma once

/// bladed::wcet — static cycle-bound certification for CMS programs
/// (DESIGN.md §15). Given a program and a cost model, `certify` computes
/// sound upper and lower bounds on the cycles a fresh MorphingEngine charges
/// for one run-to-halt, per execution tier:
///
///   - interpret:  every dispatch is interpreted (hot_threshold never hit),
///   - tier-2:     the shipped interpret → translate → native staging,
///   - tier-3:     identical to tier-2 by the JIT bit-identity contract
///                 (compiled regions replay tier-2 accounting exactly).
///
/// The argument composes the existing layers: `check`'s CFG / dominator /
/// natural-loop analyses give the loop nest, `prove/bounds`' trip-count
/// licenses (`LoopBound::max_trips`) cap every back edge, and the cms cost
/// model (dispatch + latency, translation cost, molecule schedule) prices
/// each dispatch. Programs with a cycle the trip-count prover cannot
/// license get an `unbounded` verdict at the offending header pc instead of
/// a bound — mirroring prove's refusal style: no license, no number.
///
/// Soundness contract: the bounds hold for a *fresh* engine (empty
/// translation cache, zeroed profile counts) running the given program to a
/// natural halt — retiring a halt or falling off the end — without
/// trapping and without hitting the block-execution budget. The 1000-
/// program fuzzer in tests/wcet/ checks `lower <= total_cycles <= upper`
/// against the real engine at every tier and opt level.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cms/engine.hpp"
#include "cms/isa.hpp"

namespace bladed::wcet {

enum class Tier : std::uint8_t { kInterpret, kTier2, kTier3 };

[[nodiscard]] const char* to_string(Tier t);

/// Closed cycle interval; `upper` saturates at uint64 max when a product of
/// trip counts overflows (still a sound upper bound — the engine's own
/// accounting is uint64).
struct TierBounds {
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};

/// One refusal: a program point whose execution count has no static bound.
struct UnboundedSite {
  std::size_t pc = 0;  ///< leader pc of the offending loop header / block
  std::string reason;
};

/// Certified per-dispatch-entry facts. An *engine entry* is a pc the
/// morphing engine can dispatch at: pc 0 plus every branch successor
/// (taken targets and conditional fallthroughs). The engine's profile
/// counts, translation cache and JIT promotion are all keyed by these pcs,
/// so they are the unit both the bound summation and the JIT budget
/// derivation work in.
struct EntryCost {
  std::size_t entry_pc = 0;
  std::uint64_t max_dispatches = 0;   ///< certified bound on dispatches here
  std::uint64_t interp_cycles = 0;    ///< one interpreted execution
  std::uint64_t translate_cycles = 0; ///< one translation of the block
  std::uint64_t native_cycles = 0;    ///< one native (cached) execution
  std::size_t molecules = 0;          ///< translation footprint in molecules
};

/// Cost-model parameters; defaults match `cms_42x()` (the MorphingConfig
/// defaults). Use `from()` to certify against a specific engine config.
struct CostParams {
  cms::InterpreterCosts interpreter;
  cms::MoleculeLimits molecule;
  cms::TranslatorCosts translator;
  std::size_t cache_molecules = 1 << 16;
  std::uint64_t hot_threshold = 8;

  [[nodiscard]] static CostParams from(const cms::MorphingConfig& cfg);
};

struct Certificate {
  /// False when the program failed cms::validate — `error` says why and
  /// nothing else in the certificate is meaningful.
  bool valid = false;
  std::string error;

  /// True when every cycle carries a trip-count license; only then do the
  /// tier bounds below hold. When false, `unbounded` lists the refusals.
  bool bounded = false;
  std::vector<UnboundedSite> unbounded;

  TierBounds interpret;
  TierBounds tier2;
  TierBounds tier3;  ///< == tier2: the JIT tier is cycle-bit-identical

  /// Engine entries in ascending pc order (empty when not bounded).
  std::vector<EntryCost> entries;

  /// True when the summed molecule footprint of every entry fits the
  /// translation cache, so no run can evict: each hot entry pays exactly
  /// one translation. When false the tier-2 upper bound falls back to
  /// worst-case retranslation on every dispatch.
  bool eviction_free = true;

  [[nodiscard]] const TierBounds& for_tier(Tier t) const;
  /// Human-readable one-program summary (bladed-lint --wcet).
  [[nodiscard]] std::string to_string() const;
  /// JSON object (no trailing newline); bladed-lint composes the
  /// bladed-wcet-v1 envelope around one object per corpus program.
  [[nodiscard]] std::string to_json() const;
};

/// Certify `prog` on a machine with `mem_doubles` cells under `costs`.
/// Never throws: validation failures come back as `valid == false`.
[[nodiscard]] Certificate certify(const cms::Program& prog,
                                  std::size_t mem_doubles,
                                  const CostParams& costs = {});

}  // namespace bladed::wcet
