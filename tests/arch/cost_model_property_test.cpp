/// Randomized property sweeps over the cost model: for arbitrary (seeded)
/// op mixes and any registered CPU, the model must be deterministic,
/// monotone in every workload knob, and scale correctly with clock.

#include <gtest/gtest.h>

#include "arch/cost_model.hpp"
#include "arch/registry.hpp"
#include "common/rng.hpp"

namespace bladed::arch {
namespace {

KernelProfile random_profile(Rng& rng) {
  KernelProfile p;
  p.name = "random";
  p.ops.fadd = rng.below(1'000'000);
  p.ops.fmul = rng.below(1'000'000);
  p.ops.fdiv = rng.below(10'000);
  p.ops.fsqrt = rng.below(10'000);
  p.ops.iop = rng.below(2'000'000);
  p.ops.load = 1 + rng.below(1'000'000);
  p.ops.store = rng.below(500'000);
  p.ops.branch = rng.below(200'000);
  p.dependency = rng.uniform(0.0, 0.95);
  p.miss_intensity = rng.uniform(0.0, 1.0);
  return p;
}

class CostModelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CostModelFuzz, DeterministicAndPositive) {
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const KernelProfile p = random_profile(rng);
    for (const ProcessorModel& cpu : all_processors()) {
      const CostBreakdown a = estimate(cpu, p);
      const CostBreakdown b = estimate(cpu, p);
      ASSERT_DOUBLE_EQ(a.seconds, b.seconds) << cpu.name;
      ASSERT_GT(a.seconds, 0.0) << cpu.name;
      ASSERT_GE(a.mops, a.mflops) << cpu.name;
    }
  }
}

TEST_P(CostModelFuzz, MonotoneInEveryOpClass) {
  Rng rng(1900 + static_cast<std::uint64_t>(GetParam()));
  const KernelProfile base = random_profile(rng);
  const ProcessorModel& cpu =
      all_processors()[GetParam() % all_processors().size()];
  const double t0 = estimate_seconds(cpu, base);

  auto bump = [&](auto mutate) {
    KernelProfile p = base;
    mutate(p.ops);
    EXPECT_GE(estimate_seconds(cpu, p), t0 * (1.0 - 1e-12)) << cpu.name;
  };
  bump([](OpCounter& o) { o.fadd += 100'000; });
  bump([](OpCounter& o) { o.fmul += 100'000; });
  bump([](OpCounter& o) { o.fdiv += 10'000; });
  bump([](OpCounter& o) { o.fsqrt += 10'000; });
  bump([](OpCounter& o) { o.iop += 500'000; });
  bump([](OpCounter& o) { o.load += 300'000; });
  bump([](OpCounter& o) { o.store += 300'000; });
  bump([](OpCounter& o) { o.branch += 100'000; });
}

TEST_P(CostModelFuzz, MonotoneInLocalityAndDependence) {
  Rng rng(2900 + static_cast<std::uint64_t>(GetParam()));
  const KernelProfile base = random_profile(rng);
  const ProcessorModel& cpu =
      all_processors()[GetParam() % all_processors().size()];
  KernelProfile worse_miss = base;
  worse_miss.miss_intensity = std::min(1.0, base.miss_intensity + 0.3);
  EXPECT_GE(estimate_seconds(cpu, worse_miss),
            estimate_seconds(cpu, base) * (1.0 - 1e-12));
  KernelProfile worse_dep = base;
  worse_dep.dependency = std::min(1.0, base.dependency + 0.3);
  EXPECT_GE(estimate_seconds(cpu, worse_dep),
            estimate_seconds(cpu, base) * (1.0 - 1e-12));
}

TEST_P(CostModelFuzz, ExactClockScaling) {
  Rng rng(3900 + static_cast<std::uint64_t>(GetParam()));
  const KernelProfile p = random_profile(rng);
  ProcessorModel cpu = all_processors()[GetParam() %
                                        all_processors().size()];
  const double t1 = estimate_seconds(cpu, p);
  cpu.clock = Megahertz(cpu.clock.value() * 3.0);
  EXPECT_NEAR(estimate_seconds(cpu, p) * 3.0, t1, 1e-12 * t1);
}

TEST_P(CostModelFuzz, SubadditivityOfWorkloads) {
  // Concatenating two workloads can only help (or not hurt): the merged op
  // mix exposes at least as much functional-unit overlap as running the
  // parts back-to-back, so cost(A+B) <= cost(A) + cost(B). The gap is
  // bounded by the overlap blend, so the sum is within 2x.
  Rng rng(4900 + static_cast<std::uint64_t>(GetParam()));
  KernelProfile a = random_profile(rng);
  KernelProfile b = random_profile(rng);
  b.dependency = a.dependency;  // same characterization
  b.miss_intensity = a.miss_intensity;
  KernelProfile both = a;
  both.ops += b.ops;
  const ProcessorModel& cpu = pentium3_500();
  const double merged = estimate_seconds(cpu, both);
  const double split = estimate_seconds(cpu, a) + estimate_seconds(cpu, b);
  EXPECT_LE(merged, split * (1.0 + 1e-12));
  EXPECT_GE(merged, 0.5 * split);
}

TEST_P(CostModelFuzz, ExactAdditivityWhenScaled) {
  // Scaling one mix IS linear: k copies of the same kernel cost exactly k
  // times one copy.
  Rng rng(5900 + static_cast<std::uint64_t>(GetParam()));
  const KernelProfile a = random_profile(rng);
  KernelProfile three = a;
  three.ops *= 3;
  const ProcessorModel& cpu = pentium3_500();
  EXPECT_NEAR(estimate_seconds(cpu, three),
              3.0 * estimate_seconds(cpu, a),
              1e-9 * estimate_seconds(cpu, three));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace bladed::arch
