#include "arch/cost_model.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace bladed::arch {
namespace {

KernelProfile balanced_kernel() {
  KernelProfile p;
  p.name = "balanced";
  p.ops.fadd = 1'000'000;
  p.ops.fmul = 1'000'000;
  p.ops.iop = 500'000;
  p.ops.load = 600'000;
  p.ops.store = 200'000;
  p.ops.branch = 100'000;
  p.dependency = 0.3;
  p.miss_intensity = 0.05;
  return p;
}

TEST(CostModel, TimeIsPositiveAndMflopsBelowPeak) {
  for (const ProcessorModel& m : all_processors()) {
    const CostBreakdown c = estimate(m, balanced_kernel());
    EXPECT_GT(c.seconds, 0.0) << m.name;
    EXPECT_GT(c.mflops, 0.0) << m.name;
    EXPECT_LE(c.mflops, m.peak_mflops() * 1.0001) << m.name;
    EXPECT_LE(c.percent_of_peak, 100.01) << m.name;
  }
}

TEST(CostModel, ScalesLinearlyWithOpCounts) {
  const ProcessorModel& cpu = pentium3_500();
  KernelProfile p = balanced_kernel();
  const double t1 = estimate_seconds(cpu, p);
  p.ops *= 10;
  const double t10 = estimate_seconds(cpu, p);
  EXPECT_NEAR(t10 / t1, 10.0, 1e-9);
}

TEST(CostModel, ScaleFieldMatchesScalingCounts) {
  const ProcessorModel& cpu = tm5600_633();
  KernelProfile p = balanced_kernel();
  KernelProfile scaled = p;
  scaled.scale = 7.0;
  KernelProfile multiplied = p;
  multiplied.ops *= 7;
  EXPECT_NEAR(estimate_seconds(cpu, scaled),
              estimate_seconds(cpu, multiplied), 1e-12);
  // Rates are intensive: unchanged by scale.
  EXPECT_NEAR(estimate_mflops(cpu, scaled), estimate_mflops(cpu, p), 1e-9);
}

TEST(CostModel, HigherClockIsFasterAllElseEqual) {
  ProcessorModel slow = pentium3_500();
  ProcessorModel fast = slow;
  fast.clock = Megahertz(1000.0);
  const KernelProfile p = balanced_kernel();
  EXPECT_NEAR(estimate_seconds(slow, p) / estimate_seconds(fast, p), 2.0,
              1e-9);
}

TEST(CostModel, DependencyReducesThroughput) {
  const ProcessorModel& cpu = power3_375();
  KernelProfile free = balanced_kernel();
  free.dependency = 0.0;
  KernelProfile chained = balanced_kernel();
  chained.dependency = 0.9;
  EXPECT_GT(estimate_mflops(cpu, free), estimate_mflops(cpu, chained));
}

TEST(CostModel, MissIntensityReducesThroughput) {
  const ProcessorModel& cpu = athlon_mp_1200();
  KernelProfile hot = balanced_kernel();
  hot.miss_intensity = 0.0;
  KernelProfile cold = balanced_kernel();
  cold.miss_intensity = 1.0;
  EXPECT_GT(estimate_mflops(cpu, hot), 1.5 * estimate_mflops(cpu, cold));
}

TEST(CostModel, MorphOverheadSlowsDown) {
  ProcessorModel base = tm5600_633();
  base.morph_overhead = 1.0;
  ProcessorModel taxed = base;
  taxed.morph_overhead = 1.3;
  const KernelProfile p = balanced_kernel();
  EXPECT_NEAR(estimate_seconds(taxed, p) / estimate_seconds(base, p), 1.3,
              1e-9);
}

TEST(CostModel, SqrtHeavyKernelFavoursHardwareSqrt) {
  KernelProfile p;
  p.name = "sqrt-heavy";
  p.ops.fsqrt = 1'000'000;
  p.ops.fadd = 1'000'000;
  // Power3 (hardware fsqrt, 22 cycles) must beat EV56 (software, ~70) per
  // clock on this mix.
  const CostBreakdown p3 = estimate(power3_375(), p);
  const CostBreakdown ev = estimate(alpha_ev56_533(), p);
  const double p3_per_clock = p3.mflops / power3_375().clock.value();
  const double ev_per_clock = ev.mflops / alpha_ev56_533().clock.value();
  EXPECT_GT(p3_per_clock, 2.0 * ev_per_clock);
}

TEST(CostModel, SharedFpuSerializesAddsAndMuls) {
  // On the TM5600 (single FPU) a mul-only kernel and an equal add+mul kernel
  // of the same total flops take the same time; on the EV56 (separate pipes)
  // the mixed kernel is ~2x faster.
  KernelProfile mixed;
  mixed.ops.fadd = 500'000;
  mixed.ops.fmul = 500'000;
  mixed.dependency = 0.0;
  KernelProfile muls;
  muls.ops.fmul = 1'000'000;
  muls.dependency = 0.0;

  const double tm_ratio = estimate_seconds(tm5600_633(), muls) /
                          estimate_seconds(tm5600_633(), mixed);
  const double ev_ratio = estimate_seconds(alpha_ev56_533(), muls) /
                          estimate_seconds(alpha_ev56_533(), mixed);
  EXPECT_NEAR(tm_ratio, 1.0, 0.05);
  EXPECT_GT(ev_ratio, 1.6);
}

TEST(CostModel, RejectsNonPositiveScale) {
  KernelProfile p = balanced_kernel();
  p.scale = 0.0;
  EXPECT_THROW(estimate(tm5600_633(), p), PreconditionError);
}

class EveryProcessorTest : public ::testing::TestWithParam<ProcessorModel> {};

TEST_P(EveryProcessorTest, BreakdownComponentsAreConsistent) {
  const ProcessorModel& m = GetParam();
  const CostBreakdown c = estimate(m, balanced_kernel());
  // The blended total must lie between max(component) (full overlap) and the
  // serial sum (no overlap), pre-tax.
  const double serial =
      c.fp_cycles + c.int_cycles + c.mem_cycles + c.branch_cycles;
  const double overlapped = std::max(
      {c.fp_cycles, c.int_cycles, c.mem_cycles, c.branch_cycles});
  const double pretax = c.total_cycles / m.morph_overhead * m.tuning;
  EXPECT_GE(pretax, overlapped * 0.999);
  EXPECT_LE(pretax, serial * 1.001);
}

TEST_P(EveryProcessorTest, MopsAtLeastMflops) {
  const CostBreakdown c = estimate(GetParam(), balanced_kernel());
  EXPECT_GE(c.mops, c.mflops);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryProcessorTest,
    ::testing::ValuesIn(all_processors().begin(), all_processors().end()),
    [](const ::testing::TestParamInfo<ProcessorModel>& info) {
      std::string n = info.param.short_name;
      for (char& ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

}  // namespace
}  // namespace bladed::arch
