#include "arch/processor.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "arch/validate.hpp"
#include "common/error.hpp"

namespace bladed::arch {
namespace {

TEST(Registry, AllModelsValidate) {
  for (const ProcessorModel& m : all_processors()) {
    EXPECT_NO_THROW(validate(m)) << m.name;
  }
}

TEST(Registry, LookupByShortName) {
  EXPECT_EQ(by_short_name("TM5600").name, "Transmeta Crusoe TM5600");
  EXPECT_EQ(by_short_name("Power3").clock.value(), 375.0);
  EXPECT_THROW(by_short_name("i486"), PreconditionError);
}

TEST(Registry, ShortNamesAreUnique) {
  const auto all = all_processors();
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_NE(all[i].short_name, all[j].short_name);
}

TEST(Registry, MetaBladePeakMatchesPaper) {
  // §3.3: 24 TM5600 CPUs have a peak rating of 15.2 Gflops.
  const double peak_gflops = 24.0 * tm5600_633().peak_mflops() / 1000.0;
  EXPECT_NEAR(peak_gflops, 15.2, 0.1);
}

TEST(Registry, PowerFiguresMatchPaperSection2) {
  // "the Transmeta TM5600 and Pentium 4 CPUs generate approximately 6 and 75
  // watts, respectively".
  EXPECT_NEAR(tm5600_633().watts_at_load.value(), 6.0, 0.5);
  EXPECT_NEAR(pentium4_1300().watts_at_load.value(), 75.0, 1.0);
  // §5: TM5800 at 3.5 watts.
  EXPECT_NEAR(tm5800_800().watts_at_load.value(), 3.5, 0.1);
}

TEST(Registry, OnlyTransmetaPartsPayMorphingTax) {
  for (const ProcessorModel& m : all_processors()) {
    if (m.short_name.substr(0, 2) == "TM") {
      EXPECT_GE(m.morph_overhead, 1.0) << m.name;
    } else {
      EXPECT_DOUBLE_EQ(m.morph_overhead, 1.0) << m.name;
    }
  }
}

TEST(Registry, ProjectedTm6000FollowsTheSection5Roadmap) {
  // "improve flop performance over the TM5800 by another factor of two to
  // three while reducing power requirements in half again".
  const ProcessorModel& tm58 = tm5800_800();
  const ProcessorModel& tm60 = tm6000_projected();
  const double peak_ratio =
      tm60.peak_mflops() / tm58.peak_mflops();
  EXPECT_GE(peak_ratio, 2.0);
  EXPECT_LE(peak_ratio, 3.2);
  EXPECT_NEAR(tm60.watts_at_load.value(), 0.5 * tm58.watts_at_load.value(),
              0.1);
}

TEST(Registry, NewerCmsHasLowerOverhead) {
  // §3.3 footnote: MetaBlade2 with CMS 4.3.x clearly outperformed CMS 4.2.x
  // per clock.
  EXPECT_LT(tm5800_800().morph_overhead, tm5600_633().morph_overhead);
}

TEST(Validate, RejectsMalformedModels) {
  ProcessorModel m = tm5600_633();
  m.clock = Megahertz(0.0);
  EXPECT_THROW(validate(m), PreconditionError);

  m = tm5600_633();
  m.ilp = 1.5;
  EXPECT_THROW(validate(m), PreconditionError);

  m = tm5600_633();
  m.fp_issue_per_cycle = 10.0;  // exceeds what the pipes accept
  EXPECT_THROW(validate(m), PreconditionError);

  m = tm5600_633();
  m.morph_overhead = 0.5;  // a tax cannot speed things up
  EXPECT_THROW(validate(m), PreconditionError);
}

}  // namespace
}  // namespace bladed::arch
