#include "arch/roofline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace bladed::arch {
namespace {

KernelProfile compute_kernel() {
  KernelProfile p;
  p.name = "compute";
  p.ops.fadd = 1'000'000;
  p.ops.fmul = 1'000'000;
  p.ops.load = 10'000;  // intensity 200
  p.miss_intensity = 0.1;
  p.dependency = 0.0;
  return p;
}

KernelProfile memory_kernel() {
  KernelProfile p;
  p.name = "memory";
  p.ops.fadd = 100'000;
  p.ops.load = 1'000'000;
  p.ops.store = 500'000;  // intensity 0.067
  p.miss_intensity = 0.9;
  p.dependency = 0.0;
  return p;
}

TEST(Roofline, ClassifiesComputeVsMemoryBound) {
  const ProcessorModel& cpu = tm5600_633();
  EXPECT_TRUE(roofline_point(cpu, compute_kernel()).compute_bound());
  EXPECT_FALSE(roofline_point(cpu, memory_kernel()).compute_bound());
}

TEST(Roofline, AchievedNeverExceedsTheRoof) {
  for (const ProcessorModel& cpu : all_processors()) {
    for (const KernelProfile& k : {compute_kernel(), memory_kernel()}) {
      const RooflinePoint pt = roofline_point(cpu, k);
      const double roof =
          std::min(pt.peak_mflops, pt.memory_ceiling_mflops);
      EXPECT_LE(pt.achieved_mflops, roof * 1.0001) << cpu.name << " "
                                                   << k.name;
      EXPECT_GT(pt.percent_of_roof(), 0.0);
      EXPECT_LE(pt.percent_of_roof(), 100.01);
    }
  }
}

TEST(Roofline, MemoryCeilingScalesWithIntensity) {
  const ProcessorModel& cpu = pentium3_500();
  KernelProfile k = memory_kernel();
  const RooflinePoint low = roofline_point(cpu, k);
  k.ops.fadd *= 10;  // 10x intensity, same traffic
  const RooflinePoint high = roofline_point(cpu, k);
  EXPECT_NEAR(high.memory_ceiling_mflops / low.memory_ceiling_mflops,
              high.intensity / low.intensity, 1e-9);
}

TEST(Roofline, MissIntensityLowersTheMemoryCeiling) {
  const ProcessorModel& cpu = power3_375();
  EXPECT_GT(memory_mops_ceiling(cpu, 0.0), memory_mops_ceiling(cpu, 0.5));
  EXPECT_GT(memory_mops_ceiling(cpu, 0.5), memory_mops_ceiling(cpu, 1.0));
  EXPECT_THROW(memory_mops_ceiling(cpu, 1.5), PreconditionError);
}

TEST(Roofline, PureComputeKernelHasInfiniteIntensity) {
  KernelProfile p;
  p.name = "no-mem";
  p.ops.fmul = 1000;
  const RooflinePoint pt = roofline_point(tm5600_633(), p);
  EXPECT_TRUE(std::isinf(pt.intensity));
  EXPECT_TRUE(pt.compute_bound());
}

TEST(Roofline, BatchMatchesPointwise) {
  const std::vector<KernelProfile> ks = {compute_kernel(), memory_kernel()};
  const auto pts = roofline(alpha_ev56_533(), ks);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].achieved_mflops,
                   roofline_point(alpha_ev56_533(), ks[0]).achieved_mflops);
}

TEST(Roofline, Power3HasTheHighestMemoryCeiling) {
  // Two LSUs + the lowest miss penalty: Power3's memory roof tops the
  // 2001 field at every miss intensity — the Table 3 explanation.
  for (double miss : {0.1, 0.5, 1.0}) {
    const double p3 = memory_mops_ceiling(power3_375(), miss);
    for (const char* other : {"TM5600", "PIII", "EV56", "PPro"}) {
      EXPECT_GT(p3, memory_mops_ceiling(by_short_name(other), miss))
          << other << " at miss " << miss;
    }
  }
}

}  // namespace
}  // namespace bladed::arch
