#include "check/cfg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cms/programs.hpp"

namespace bladed::check {
namespace {

using cms::Instr;
using cms::Op;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

TEST(Cfg, StraightLineIsOneBlock) {
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kAddi, 2, 1, 0, 2),
                    make(Op::kHalt)};
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].begin, 0u);
  EXPECT_EQ(cfg.blocks()[0].end, 3u);
  ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].succs[0], cfg.exit_pc());
}

TEST(Cfg, BranchTargetSplitsBlocks) {
  // A backward branch into the middle of straight-line code forces a block
  // boundary at the target even though no branch ends there.
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 0),   // 0
                    make(Op::kAddi, 1, 1, 0, 1),   // 1  <- branch target
                    make(Op::kMovi, 2, 0, 0, 10),  // 2
                    make(Op::kBlt, 1, 2, 0, 1),    // 3
                    make(Op::kHalt)};              // 4
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  EXPECT_EQ(cfg.blocks()[0].end, 1u);
  EXPECT_EQ(cfg.blocks()[1].begin, 1u);
  EXPECT_EQ(cfg.blocks()[1].end, 4u);
  EXPECT_EQ(cfg.block_of(2), 1u);
  // The conditional block has both the target and the fall-through.
  const auto& succs = cfg.blocks()[1].succs;
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0], 1u);
  EXPECT_EQ(succs[1], 4u);
}

TEST(Cfg, DaxpyLoopShape) {
  const cms::Program p = cms::daxpy_program(8);
  const Cfg cfg = Cfg::build(p);
  // Preamble [0,3), loop body [3,10), halt [10,11).
  ASSERT_EQ(cfg.blocks().size(), 3u);
  EXPECT_EQ(cfg.blocks()[1].begin, 3u);
  EXPECT_EQ(cfg.blocks()[1].end, 10u);
  // The loop block is its own successor (back edge) plus fall-through.
  const auto& succs = cfg.blocks()[1].succs;
  EXPECT_NE(std::find(succs.begin(), succs.end(), 3u), succs.end());
  EXPECT_NE(std::find(succs.begin(), succs.end(), 10u), succs.end());
  EXPECT_TRUE(cfg.unreachable_blocks().empty());
}

TEST(Cfg, SelfLoopBlock) {
  // Block [1,3) branches to its own leader: the CFG must record the
  // self-edge and still see every block as reachable.
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 0),  // 0
                    make(Op::kAddi, 1, 1, 0, 1),  // 1 <- self-loop leader
                    make(Op::kBlt, 1, 2, 0, 1),   // 2
                    make(Op::kHalt)};             // 3
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const std::size_t self = cfg.block_of(1);
  const auto& succs = cfg.blocks()[self].succs;
  EXPECT_NE(std::find(succs.begin(), succs.end(), 1u), succs.end());
  EXPECT_TRUE(cfg.unreachable_blocks().empty());
  const auto preds = cfg.predecessors();
  EXPECT_NE(std::find(preds[self].begin(), preds[self].end(), self),
            preds[self].end());
}

TEST(Cfg, UnreachableBlockDetected) {
  cms::Program p = {make(Op::kJmp, 0, 0, 0, 3),    // 0
                    make(Op::kMovi, 1, 0, 0, 1),   // 1 unreachable
                    make(Op::kJmp, 0, 0, 0, 3),    // 2 unreachable
                    make(Op::kHalt)};              // 3
  const Cfg cfg = Cfg::build(p);
  const auto unreachable = cfg.unreachable_blocks();
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], 1u);
}

TEST(Cfg, BranchToProgramSizeIsExitEdge) {
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                    make(Op::kJmp, 0, 0, 0, 2)};
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].succs[0], cfg.exit_pc());
}

TEST(Cfg, BranchyProgramAllBlocksReachable) {
  const cms::Program p = cms::branchy_program(4);
  const Cfg cfg = Cfg::build(p);
  EXPECT_TRUE(cfg.unreachable_blocks().empty());
  // Every instruction belongs to exactly one block and blocks tile the
  // program.
  std::size_t covered = 0;
  for (const BasicBlock& bb : cfg.blocks()) covered += bb.end - bb.begin;
  EXPECT_EQ(covered, p.size());
}

}  // namespace
}  // namespace bladed::check
