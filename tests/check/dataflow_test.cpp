#include "check/dataflow.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "cms/programs.hpp"

namespace bladed::check {
namespace {

using cms::Instr;
using cms::Op;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

TEST(Dataflow, UsesAndDefs) {
  const Instr fstore = make(Op::kFstore, 2, 5, 0, 7);
  EXPECT_EQ(uses_of(fstore), (RegSet{1} << 5) | (RegSet{1} << (16 + 2)));
  EXPECT_EQ(defs_of(fstore), 0u);
  const Instr fload = make(Op::kFload, 3, 4, 0, 1);
  EXPECT_EQ(uses_of(fload), RegSet{1} << 4);
  EXPECT_EQ(defs_of(fload), RegSet{1} << (16 + 3));
  const Instr blt = make(Op::kBlt, 1, 2, 0, 0);
  EXPECT_EQ(uses_of(blt), (RegSet{1} << 1) | (RegSet{1} << 2));
  EXPECT_EQ(defs_of(blt), 0u);
  EXPECT_EQ(reg_name(3), "r3");
  EXPECT_EQ(reg_name(16 + 5), "f5");
}

TEST(Dataflow, UninitReadFlaggedWithInstructionIndex) {
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 3),
                    make(Op::kAdd, 2, 1, 5),  // r5 never written
                    make(Op::kHalt)};
  const Report r = find_uninit_reads(p, Cfg::build(p));
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].code, "uninit-read");
  EXPECT_EQ(r.diagnostics()[0].instr, 1u);
  EXPECT_EQ(r.diagnostics()[0].severity, Severity::kWarning);
}

TEST(Dataflow, ZeroBaseRegisterIsNotUninit) {
  // r0 is the conventional zero base register; reading it is the idiom the
  // whole corpus uses for addressing.
  cms::Program p = {make(Op::kFload, 1, 0, 0, 4), make(Op::kHalt)};
  EXPECT_TRUE(find_uninit_reads(p, Cfg::build(p)).clean());
}

TEST(Dataflow, WriteOnOnePathOnlyIsUninitOnTheOther) {
  // f1 is written only when the branch is taken; the read afterwards is a
  // maybe-uninit read (must-analysis intersects the two paths).
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),        // 0
                    make(Op::kBne, 1, 0, 0, 3),         // 1: skip the write
                    make(Op::kFmovi, 1, 0, 0, 0),       // 2: writes f1
                    make(Op::kFadd, 2, 1, 1),           // 3: reads f1
                    make(Op::kHalt)};                   // 4
  const Report r = find_uninit_reads(p, Cfg::build(p));
  ASSERT_FALSE(r.clean());
  EXPECT_EQ(r.diagnostics()[0].instr, 3u);
}

TEST(Dataflow, DeadStoreFlagged) {
  cms::Program p = {make(Op::kMovi, 3, 0, 0, 1),   // 0: dead (overwritten @1)
                    make(Op::kMovi, 3, 0, 0, 2),   // 1: live (read @2)
                    make(Op::kAddi, 4, 3, 0, 0),   // 2
                    make(Op::kHalt)};
  const Report r = find_dead_stores(p, Cfg::build(p));
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].code, "dead-store");
  EXPECT_EQ(r.diagnostics()[0].instr, 0u);
}

TEST(Dataflow, FinalWritesAreLiveAtExit) {
  // The final machine state is observable, so a single write with no
  // subsequent read is NOT a dead store.
  cms::Program p = {make(Op::kMovi, 3, 0, 0, 1), make(Op::kHalt)};
  EXPECT_TRUE(find_dead_stores(p, Cfg::build(p)).clean());
}

TEST(Dataflow, EveryExitShapeKeepsFinalWritesAlive) {
  // Regression for the dead-store reporter's exit semantics: a program can
  // leave through an explicit kHalt, a branch to prog.size(), or by falling
  // off the end — all three are the same exit edge and all registers are
  // live across it, so a final write must never be flagged on any of them.
  {
    // Conditional branch to prog.size() (fallthrough-halt idiom): the write
    // at 0 is live out of both the branch exit and the halt exit.
    cms::Program p = {make(Op::kMovi, 3, 0, 0, 7),   // 0
                      make(Op::kMovi, 1, 0, 0, 1),   // 1
                      make(Op::kBne, 1, 0, 0, 4),    // 2: exits via pc == 4
                      make(Op::kHalt)};              // 3
    EXPECT_TRUE(find_dead_stores(p, Cfg::build(p)).clean());
  }
  {
    // Falling off the end without a kHalt.
    cms::Program p = {make(Op::kMovi, 3, 0, 0, 7),
                      make(Op::kFmovi, 2, 0, 0, 0)};
    EXPECT_TRUE(find_dead_stores(p, Cfg::build(p)).clean());
  }
  {
    // The same shapes still flag a genuine overwrite before the exit.
    cms::Program p = {make(Op::kMovi, 3, 0, 0, 7),   // 0: dead
                      make(Op::kMovi, 1, 0, 0, 1),   // 1
                      make(Op::kMovi, 3, 0, 0, 9),   // 2: overwrites
                      make(Op::kBne, 1, 0, 0, 5),    // 3: exits via pc == 5
                      make(Op::kHalt)};              // 4
    const Report r = find_dead_stores(p, Cfg::build(p));
    ASSERT_EQ(r.diagnostics().size(), 1u);
    EXPECT_EQ(r.diagnostics()[0].instr, 0u);
  }
}

TEST(Dataflow, LivenessHelpersAgreeWithReporter) {
  // live_in_blocks / live_out_of are the shared substrate between the
  // reporter and the optimizer's dead-store pass: the exit edge must carry
  // the all-registers set so both sides agree on observability.
  cms::Program p = {make(Op::kMovi, 3, 0, 0, 7), make(Op::kHalt)};
  const Cfg cfg = Cfg::build(p);
  const std::vector<RegSet> live_in = live_in_blocks(p, cfg);
  ASSERT_EQ(live_in.size(), cfg.blocks().size());
  EXPECT_EQ(live_out_of(cfg, live_in, 0), kAllRegsSet);
}

TEST(Dataflow, ReadOnOneSuccessorKeepsStoreAlive) {
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 5),   // 0: read only on path B
                    make(Op::kMovi, 2, 0, 0, 1),   // 1
                    make(Op::kBne, 2, 0, 0, 4),    // 2
                    make(Op::kHalt),               // 3: path A, no read
                    make(Op::kAddi, 3, 1, 0, 0),   // 4: path B reads r1
                    make(Op::kHalt)};
  EXPECT_TRUE(find_dead_stores(p, Cfg::build(p)).clean());
}

TEST(Dataflow, ProvableOobStoreIsError) {
  cms::Program p = {make(Op::kMovi, 1, 0, 0, 5000),
                    make(Op::kFmovi, 0, 0, 0, 0),
                    make(Op::kFstore, 0, 1, 0, 10), make(Op::kHalt)};
  const Report r = find_oob_accesses(p, Cfg::build(p), 4096);
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].code, "oob-store");
  EXPECT_EQ(r.diagnostics()[0].instr, 2u);
  EXPECT_EQ(r.diagnostics()[0].severity, Severity::kError);
}

TEST(Dataflow, NegativeOffsetOffZeroBaseIsError) {
  cms::Program p = {make(Op::kFload, 0, 0, 0, -1), make(Op::kHalt)};
  const Report r = find_oob_accesses(p, Cfg::build(p), 4096);
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].code, "oob-load");
  EXPECT_EQ(r.diagnostics()[0].instr, 0u);
}

TEST(Dataflow, LoopInductionAddressIsNotFalsePositive) {
  // The induction variable widens to [0, +inf); a widened address must not
  // be reported (only *provable* OOB fires).
  for (const auto& entry : cms::lint_corpus()) {
    const Cfg cfg = Cfg::build(entry.program);
    EXPECT_TRUE(
        find_oob_accesses(entry.program, cfg, entry.mem_doubles).clean())
        << entry.name;
  }
}

TEST(Dataflow, IntervalTracksArithmetic) {
  // r2 = 100; r3 = r2 * 50 = 5000; r4 = r3 - r2 = 4900 -> OOB for 4096.
  cms::Program p = {make(Op::kMovi, 2, 0, 0, 100),
                    make(Op::kMuli, 3, 2, 0, 50),
                    make(Op::kSub, 4, 3, 2),
                    make(Op::kFload, 1, 4, 0, 0),
                    make(Op::kHalt)};
  const Report r = find_oob_accesses(p, Cfg::build(p), 4096);
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].instr, 3u);
}

TEST(Dataflow, CorpusIsWarningFree) {
  // The shipped corpus must produce zero findings of any severity — this is
  // the same bar `bladed-lint` enforces in its ctest entry.
  for (const auto& entry : cms::lint_corpus()) {
    const Report r = check_program(entry.program, entry.mem_doubles);
    EXPECT_TRUE(r.clean()) << entry.name << ":\n" << r.to_string();
  }
}

}  // namespace
}  // namespace bladed::check
