#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/differential.hpp"
#include "cms/engine.hpp"
#include "cms/interpreter.hpp"
#include "cms/programs.hpp"
#include "common/error.hpp"

namespace bladed::check {
namespace {

using cms::Instr;
using cms::MachineState;
using cms::Op;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

// --- Branch to prog.size(): terminates like a halt (fallthrough-halt). ---

TEST(EdgeCases, BranchToProgramSizeIsAcceptedWithWarning) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 7),
                          make(Op::kJmp, 0, 0, 0, 2)};
  EXPECT_NO_THROW(cms::validate(p));
  const Report r = check_program(p);
  EXPECT_TRUE(r.ok());      // warning, not error
  EXPECT_FALSE(r.clean());
  ASSERT_TRUE(r.has("branch-exit"));
  EXPECT_EQ(r.diagnostics()[0].instr, 1u);
}

TEST(EdgeCases, BranchToProgramSizeBeyondIsStillRejected) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 7),
                          make(Op::kJmp, 0, 0, 0, 3)};
  EXPECT_THROW(cms::validate(p), PreconditionError);
  const Report r = check_program(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("branch-target"));
}

TEST(EdgeCases, FallthroughHaltExecutesIdenticallyEverywhere) {
  // A conditional branch whose taken edge is pc == prog.size(): both the
  // interpreter and the morphing engine must stop there with the same state.
  const cms::Program p = {make(Op::kMovi, 2, 0, 0, 5),   // 0
                          make(Op::kAddi, 1, 1, 0, 1),   // 1: loop body
                          make(Op::kBlt, 1, 2, 0, 1),    // 2: loop while r1<r2
                          make(Op::kJmp, 0, 0, 0, 4)};   // 3: exit == size
  MachineState mi;
  cms::Interpreter interp;
  const cms::InterpretResult ri = interp.run(p, mi);
  EXPECT_FALSE(ri.halted);  // no halt retired, yet execution finished
  EXPECT_EQ(mi.r[1], 5);

  cms::MorphingConfig cfg;
  cfg.hot_threshold = 1;  // translate every block immediately
  cfg.verify_translations = true;
  MachineState me;
  cms::MorphingEngine engine(cfg);
  EXPECT_NO_THROW(engine.run(p, me));
  EXPECT_EQ(me.r[1], 5);
  EXPECT_EQ(me.r[2], 5);

  EXPECT_TRUE(differential_check(p).clean());
}

// --- Negative imm_i memory offsets. ---

TEST(EdgeCases, NegativeOffsetInRangeIsCleanAndRuns) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 10),
                          make(Op::kFmovi, 0),
                          make(Op::kFstore, 0, 1, 0, -3),  // mem[10-3]
                          make(Op::kHalt)};
  EXPECT_TRUE(check_program(p).clean());
  MachineState st;
  st.f[0] = 0.0;  // fmovi writes imm_f (0.0); store should land at mem[7]
  st.mem.assign(st.mem.size(), 1.0);
  cms::Interpreter interp;
  interp.run(p, st);
  EXPECT_EQ(st.mem[7], 0.0);
  EXPECT_EQ(st.mem[6], 1.0);
}

TEST(EdgeCases, NegativeOffsetUnderflowIsStaticErrorAndRuntimeTrap) {
  const cms::Program p = {make(Op::kFload, 0, 0, 0, -3), make(Op::kHalt)};
  EXPECT_NO_THROW(cms::validate(p));  // validate is operand-level only
  const Report r = check_program(p);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("oob-load"));
  // The same access traps at runtime — the static error is a true positive.
  MachineState st;
  cms::Interpreter interp;
  EXPECT_THROW(interp.run(p, st), PreconditionError);
}

TEST(EdgeCases, NegativeOffsetReachableThroughArithmeticIsCaught) {
  // The base register is provably 2, so imm_i = -5 always underflows.
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 7),
                          make(Op::kAddi, 1, 1, 0, -5),   // r1 = 2
                          make(Op::kFload, 3, 1, 0, -5),  // mem[-3]
                          make(Op::kHalt)};
  const Report r = check_program(p);
  ASSERT_TRUE(r.has("oob-load"));
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.code == "oob-load") {
      EXPECT_EQ(d.instr, 2u);
    }
  }
}

// --- Self-loop blocks. ---

TEST(EdgeCases, SelfLoopBlockChecksCleanAndMatchesInterpreter) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 0),    // 0
                          make(Op::kMovi, 2, 0, 0, 100),  // 1
                          make(Op::kAddi, 1, 1, 0, 1),    // 2: self-loop head
                          make(Op::kBlt, 1, 2, 0, 2),     // 3: -> own leader
                          make(Op::kHalt)};               // 4
  EXPECT_TRUE(check_program(p).clean());
  EXPECT_TRUE(check_translations(p).clean());

  MachineState mi;
  cms::Interpreter interp;
  const cms::InterpretResult ri = interp.run(p, mi);
  EXPECT_TRUE(ri.halted);
  EXPECT_EQ(mi.r[1], 100);

  cms::MorphingConfig cfg;
  cfg.hot_threshold = 4;  // the self-loop block gets hot mid-run
  cfg.verify_translations = true;
  MachineState me;
  cms::MorphingEngine engine(cfg);
  const cms::MorphingStats s = engine.run(p, me);
  EXPECT_EQ(me.r[1], 100);
  EXPECT_GE(s.translations, 1u);
  EXPECT_GE(s.native_block_executions, 1u);
}

// --- The engine's debug-mode verification gate. ---

TEST(EdgeCases, EngineVerificationGateAcceptsCorpus) {
  for (const auto& entry : cms::lint_corpus()) {
    cms::MorphingConfig cfg;
    cfg.hot_threshold = 1;  // verify every block's translation
    cfg.verify_translations = true;
    cms::MorphingEngine engine(cfg);
    MachineState st(entry.mem_doubles);
    EXPECT_NO_THROW(engine.run(entry.program, st)) << entry.name;
  }
}

TEST(EdgeCases, DifferentialCheckAcceptsCorpus) {
  for (const auto& entry : cms::lint_corpus()) {
    DifferentialOptions opt;
    opt.mem_doubles = entry.mem_doubles;
    const Report r = differential_check(entry.program, opt);
    EXPECT_TRUE(r.clean()) << entry.name << ":\n" << r.to_string();
  }
}

}  // namespace
}  // namespace bladed::check
