#include "check/verify_translation.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "cms/interpreter.hpp"
#include "cms/programs.hpp"

namespace bladed::check {
namespace {

using cms::Instr;
using cms::Molecule;
using cms::Op;
using cms::Translation;
using cms::Translator;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

Molecule molecule(std::initializer_list<std::uint32_t> pcs, int stall = 0) {
  Molecule m{};
  int i = 0;
  for (const std::uint32_t pc : pcs) {
    m.atom_pc[static_cast<std::size_t>(i++)] = pc;
  }
  m.atoms = i;
  m.stall = stall;
  return m;
}

TEST(VerifyTranslation, AcceptsEveryCorpusTranslation) {
  Translator tr;
  for (const auto& entry : cms::lint_corpus()) {
    for (std::size_t pc = 0; pc < entry.program.size();
         pc = cms::block_end(entry.program, pc)) {
      const Translation t = tr.translate(entry.program, pc);
      const Report r = verify_translation(entry.program, t, tr.limits());
      EXPECT_TRUE(r.clean())
          << entry.name << " block @" << pc << ":\n" << r.to_string();
    }
  }
}

TEST(VerifyTranslation, CheckTranslationsDriverAcceptsCorpus) {
  for (const auto& entry : cms::lint_corpus()) {
    EXPECT_TRUE(check_translations(entry.program).clean()) << entry.name;
  }
}

TEST(VerifyTranslation, RejectsResourceOversubscription) {
  const cms::Program p = {make(Op::kAddi, 1, 0, 0, 1),
                          make(Op::kAddi, 2, 0, 0, 2),
                          make(Op::kAddi, 3, 0, 0, 3), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 4;
  t.molecules = {molecule({0, 1, 2}), molecule({3})};  // 3 ALU atoms, max 2
  const Report r = verify_translation(p, t);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("resource-limit")) << r.to_string();
}

TEST(VerifyTranslation, RejectsIntraMoleculeRawHazard) {
  const cms::Program p = {make(Op::kAddi, 1, 0, 0, 1),
                          make(Op::kAdd, 2, 1, 1), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 3;
  t.molecules = {molecule({0, 1}), molecule({2})};
  const Report r = verify_translation(p, t);
  ASSERT_TRUE(r.has("intra-molecule-hazard")) << r.to_string();
  // The diagnostic anchors at the consumer instruction.
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.code == "intra-molecule-hazard") {
      EXPECT_EQ(d.instr, 1u);
    }
  }
}

TEST(VerifyTranslation, RejectsIntraMoleculeWawHazard) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                          make(Op::kMovi, 1, 0, 0, 2),
                          make(Op::kAddi, 2, 1, 0, 0), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 4;
  t.molecules = {molecule({0, 1}), molecule({2}), molecule({3})};
  EXPECT_TRUE(verify_translation(p, t).has("intra-molecule-hazard"));
}

TEST(VerifyTranslation, RejectsReversedDependenceOrder) {
  const cms::Program p = {make(Op::kFmul, 1, 2, 3),
                          make(Op::kFadd, 4, 1, 1), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 3;
  t.molecules = {molecule({1}), molecule({0}), molecule({2})};
  const Report r = verify_translation(p, t);
  EXPECT_TRUE(r.has("dep-order")) << r.to_string();
}

TEST(VerifyTranslation, RejectsStrippedStalls) {
  // A legal schedule whose stall cycles are zeroed out claims fewer native
  // cycles than the dependence latencies require.
  const cms::Program p = {make(Op::kFmul, 1, 2, 3),
                          make(Op::kFadd, 4, 1, 1), make(Op::kHalt)};
  Translator tr;
  Translation t = tr.translate(p, 0);
  ASSERT_TRUE(verify_translation(p, t).clean());
  for (Molecule& m : t.molecules) m.stall = 0;
  const Report r = verify_translation(p, t);
  EXPECT_TRUE(r.has("cycle-count")) << r.to_string();
}

TEST(VerifyTranslation, RejectsUnderchargedUnpipelinedOp) {
  // fdiv occupies the FPU for latency-1 extra cycles; its molecule must
  // charge them even when nothing in the region consumes the result.
  const cms::Program p = {make(Op::kFdiv, 1, 2, 3), make(Op::kHalt)};
  Translator tr;
  Translation t = tr.translate(p, 0);
  ASSERT_TRUE(verify_translation(p, t).clean());
  t.molecules[0].stall = 0;
  EXPECT_TRUE(verify_translation(p, t).has("cycle-count"));
}

TEST(VerifyTranslation, RejectsBranchOutsideLastMolecule) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                          make(Op::kBlt, 2, 3, 0, 0), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 2;
  t.molecules = {molecule({1}), molecule({0})};
  EXPECT_TRUE(verify_translation(p, t).has("branch-placement"));
}

TEST(VerifyTranslation, RejectsDuplicateAndMissingCoverage) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                          make(Op::kMovi, 2, 0, 0, 2), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 3;
  Molecule m = molecule({0, 0});  // instr 0 twice, instr 1 never
  t.molecules = {m, molecule({2})};
  const Report r = verify_translation(p, t);
  EXPECT_TRUE(r.has("coverage"));
  EXPECT_GE(r.error_count(), 2u);
}

TEST(VerifyTranslation, RejectsWrongInstrCount) {
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 5;
  t.molecules = {molecule({0}), molecule({1})};
  EXPECT_TRUE(verify_translation(p, t).has("coverage"));
}

TEST(VerifyTranslation, WarInSameMoleculeIsLegal) {
  // VLIW semantics: reads happen before writes within a molecule, so an
  // anti-dependence packed into one molecule is not a hazard.
  const cms::Program p = {make(Op::kAddi, 1, 2, 0, 1),   // reads r2
                          make(Op::kMovi, 2, 0, 0, 9),   // writes r2
                          make(Op::kHalt)};
  Translation t;
  t.entry_pc = 0;
  t.instr_count = 3;
  t.molecules = {molecule({0, 1}), molecule({2})};
  const Report r = verify_translation(p, t);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

}  // namespace
}  // namespace bladed::check
