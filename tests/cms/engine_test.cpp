#include "cms/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cms/programs.hpp"

namespace bladed::cms {
namespace {

MachineState daxpy_state(std::int64_t n) {
  MachineState st(static_cast<std::size_t>(2 * n + 8));
  for (std::int64_t i = 0; i < n; ++i) {
    st.mem[static_cast<std::size_t>(i)] = static_cast<double>(i);
    st.mem[static_cast<std::size_t>(n + i)] = 1.0;
  }
  return st;
}

TEST(Interpreter, DaxpyComputesCorrectResult) {
  const std::int64_t n = 100;
  MachineState st = daxpy_state(n);
  Interpreter interp;
  const InterpretResult r = interp.run(daxpy_program(n), st);
  EXPECT_TRUE(r.halted);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(st.mem[static_cast<std::size_t>(n + i)],
                     1.0 + 2.5 * static_cast<double>(i));
  }
  // 3 setup + 7 per iteration + halt.
  EXPECT_EQ(r.instructions, 3u + 7u * 100u + 1u);
}

TEST(Interpreter, CollectsBlockCounts) {
  const std::int64_t n = 50;
  MachineState st = daxpy_state(n);
  Interpreter interp;
  interp.run(daxpy_program(n), st);
  const auto& counts = interp.block_counts();
  // The entry region (which falls through into the loop body and executes
  // it once) runs once; the loop-head region at pc 3 runs the remaining
  // n-1 iterations.
  EXPECT_EQ(counts.at(0), 1u);
  EXPECT_EQ(counts.at(3), 49u);
}

TEST(MorphingEngine, ResultsIdenticalToInterpreter) {
  for (auto make : {+[] { return daxpy_program(64); },
                    +[] { return nr_rsqrt_program(30); },
                    +[] { return branchy_program(41); },
                    +[] { return many_blocks_program(5, 20); }}) {
    const Program prog = make();
    MachineState a(512), b(512);
    a.mem[0] = 4.0;
    b.mem[0] = 4.0;
    Interpreter pure;
    pure.run(prog, a);
    MorphingEngine engine;
    engine.run(prog, b);
    for (std::size_t i = 0; i < a.mem.size(); ++i) {
      ASSERT_DOUBLE_EQ(a.mem[i], b.mem[i]) << "mem[" << i << "]";
    }
  }
}

TEST(MorphingEngine, UnrolledDaxpyMatchesRolledResults) {
  const std::int64_t n = 66;
  MachineState rolled(256), unrolled(256);
  for (std::int64_t i = 0; i < n; ++i) {
    rolled.mem[static_cast<std::size_t>(i)] = 0.5 * static_cast<double>(i);
    unrolled.mem[static_cast<std::size_t>(i)] = 0.5 * static_cast<double>(i);
  }
  MorphingEngine engine;
  engine.run(unrolled_daxpy_program(n, 3), unrolled);
  // The unrolled program computes y[i] = a*x[i]; evaluate directly.
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(unrolled.mem[static_cast<std::size_t>(n + i)],
                     2.5 * 0.5 * static_cast<double>(i));
  }
}

TEST(MorphingEngine, WiderMoleculesPackComputeBoundCodeDenser) {
  // A compute-bound block with independent ALU/FPU/LSU work: the 128-bit
  // molecule (2 ALU + FPU + LSU per cycle) beats the 64-bit one. For
  // memory-bound loops the single LSU binds both widths equally — which is
  // why the ablation bench shows near-identical numbers for plain daxpy.
  Program prog;
  for (int u = 0; u < 6; ++u) {
    Instr in;
    in.op = Op::kAddi;
    in.a = 1 + u;
    in.b = 0;
    in.imm_i = u;
    prog.push_back(in);
  }
  for (int u = 0; u < 3; ++u) {
    Instr in;
    in.op = Op::kFmovi;
    in.a = u;
    in.imm_f = 1.5 * u;
    prog.push_back(in);
  }
  for (int u = 0; u < 2; ++u) {
    Instr in;
    in.op = Op::kFload;
    in.a = 4 + u;
    in.b = 0;
    in.imm_i = u;
    prog.push_back(in);
  }
  Instr halt;
  halt.op = Op::kHalt;
  prog.push_back(halt);

  Translator narrow(MoleculeLimits{2, 1, 1, 1, 1}, TranslatorCosts{});
  Translator wide;  // 4 atoms, 2 ALU
  const Translation tn = narrow.translate(prog, 0);
  const Translation tw = wide.translate(prog, 0);
  EXPECT_LT(tw.native_cycles(), tn.native_cycles());
  EXPECT_GT(tw.density(), tn.density());
}

TEST(MorphingEngine, NrRsqrtConverges) {
  const Program prog = nr_rsqrt_program(20);
  MachineState st(64);
  st.mem[0] = 2.0;  // rsqrt(2) = 0.7071...
  MorphingEngine engine;
  engine.run(prog, st);
  EXPECT_NEAR(st.mem[1], 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(MorphingEngine, HotLoopGetsTranslated) {
  const Program prog = daxpy_program(1000);
  MachineState st = daxpy_state(1000);
  MorphingEngine engine;
  const MorphingStats s = engine.run(prog, st);
  EXPECT_GE(s.translations, 1u);
  EXPECT_GT(s.native_block_executions, 900u);  // most iterations run native
  EXPECT_GT(s.cache_hits, 900u);
}

TEST(MorphingEngine, ColdCodeStaysInterpreted) {
  // Threshold 8: a loop of 4 iterations never gets hot.
  const Program prog = daxpy_program(4);
  MachineState st = daxpy_state(4);
  MorphingEngine engine;
  const MorphingStats s = engine.run(prog, st);
  EXPECT_EQ(s.translations, 0u);
  EXPECT_EQ(s.native_block_executions, 0u);
  EXPECT_GT(s.interpreted_instructions, 0u);
}

TEST(MorphingEngine, TranslationAmortizesOverIterations) {
  // §2.2: "the initial cost of the translation is amortized over repeated
  // executions" — cycles per iteration fall as the trip count grows.
  auto cycles_per_iter = [](std::int64_t n) {
    const Program prog = daxpy_program(n);
    MachineState st = daxpy_state(n);
    MorphingEngine engine;
    const MorphingStats s = engine.run(prog, st);
    return static_cast<double>(s.total_cycles) / static_cast<double>(n);
  };
  const double c100 = cycles_per_iter(100);
  const double c10k = cycles_per_iter(10000);
  EXPECT_LT(c10k, 0.5 * c100);
  // And at large trip counts CMS beats pure interpretation by a lot.
  const Program prog = daxpy_program(20000);
  MachineState st1 = daxpy_state(20000);
  MachineState st2 = daxpy_state(20000);
  MorphingEngine engine;
  const MorphingStats s = engine.run(prog, st1);
  const std::uint64_t interp = engine.interpret_only_cycles(prog, st2);
  EXPECT_GT(static_cast<double>(interp) / static_cast<double>(s.total_cycles),
            3.0);
}

TEST(MorphingEngine, WarmCacheAcrossRuns) {
  const Program prog = daxpy_program(500);
  MorphingEngine engine;
  MachineState st1 = daxpy_state(500);
  const MorphingStats cold = engine.run(prog, st1);
  MachineState st2 = daxpy_state(500);
  const MorphingStats warm = engine.run(prog, st2);
  EXPECT_EQ(warm.translations, 0u);  // still cached
  EXPECT_LT(warm.total_cycles, cold.total_cycles);
}

TEST(MorphingEngine, TinyCacheCausesRetranslation) {
  // Many hot blocks, cache big enough for only a few: evictions force
  // re-translation (the paper's motivation for a large translation cache).
  MorphingConfig small;
  small.cache_molecules = 8;
  small.hot_threshold = 2;
  MorphingEngine engine(small);
  const Program prog = many_blocks_program(12, 500);
  MachineState st(256);
  const MorphingStats s = engine.run(prog, st);
  EXPECT_GT(s.cache_evictions, 0u);
  EXPECT_GT(s.retranslations, 0u);

  // A generous cache eliminates the re-translations.
  MorphingConfig big;
  big.hot_threshold = 2;
  MorphingEngine engine2(big);
  MachineState st2(256);
  const MorphingStats s2 = engine2.run(prog, st2);
  EXPECT_EQ(s2.retranslations, 0u);
  EXPECT_LT(s2.total_cycles, s.total_cycles);
}

TEST(MorphingEngine, BranchyCodeTranslatesMoreRegionsButStillWins) {
  // The branchy loop splits into several short hot regions (loop head, the
  // two paths, the rejoin), each translated separately, while daxpy has one
  // hot loop body; both still beat interpretation clearly once hot.
  auto run = [](const Program& prog, std::size_t mem) {
    MachineState a(mem), b(mem);
    MorphingEngine engine;
    const MorphingStats s = engine.run(prog, a);
    const std::uint64_t interp = engine.interpret_only_cycles(prog, b);
    return std::pair<MorphingStats, double>(
        s, static_cast<double>(interp) / static_cast<double>(s.total_cycles));
  };
  const auto [daxpy_stats, daxpy_speedup] = run(daxpy_program(5000), 20000);
  const auto [branchy_stats, branchy_speedup] =
      run(branchy_program(5000), 64);
  EXPECT_GT(branchy_stats.translations, daxpy_stats.translations);
  EXPECT_GT(daxpy_speedup, 2.0);
  EXPECT_GT(branchy_speedup, 2.0);
}

TEST(MorphingEngine, Cms43BeatsCms42OnTheSameProgram) {
  // The flash-upgradeable CMS story (§2.1): the newer translator reaches
  // native execution sooner and pays less per translation.
  const Program prog = daxpy_program(2000);
  MachineState a = daxpy_state(2000), b = daxpy_state(2000);
  MorphingEngine old_cms(cms_42x());
  MorphingEngine new_cms(cms_43x());
  const MorphingStats s42 = old_cms.run(prog, a);
  const MorphingStats s43 = new_cms.run(prog, b);
  EXPECT_LT(s43.total_cycles, s42.total_cycles);
  EXPECT_LE(s43.interpreted_instructions, s42.interpreted_instructions);
  // Results identical, of course.
  for (std::size_t i = 0; i < a.mem.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.mem[i], b.mem[i]);
  }
}

TEST(MorphingEngine, StatsAreInternallyConsistent) {
  const Program prog = daxpy_program(2000);
  MachineState st = daxpy_state(2000);
  MorphingEngine engine;
  const MorphingStats s = engine.run(prog, st);
  EXPECT_EQ(s.total_cycles,
            s.interpret_cycles + s.translate_cycles + s.native_cycles);
  EXPECT_EQ(s.cache_hits + s.cache_misses,
            engine.cache().hits() + engine.cache().misses());
}

TEST(MorphingEngine, ResetClearsCache) {
  const Program prog = daxpy_program(500);
  MorphingEngine engine;
  MachineState st = daxpy_state(500);
  engine.run(prog, st);
  engine.reset();
  EXPECT_EQ(engine.cache().entries(), 0u);
  MachineState st2 = daxpy_state(500);
  const MorphingStats again = engine.run(prog, st2);
  EXPECT_GE(again.translations, 1u);  // must re-translate after reset
}

}  // namespace
}  // namespace bladed::cms
