/// Property tests: on *randomly generated* programs, the morphing engine
/// must produce exactly the interpreter's architectural results (memory and
/// halting behaviour), for any cache size and hotspot threshold, and every
/// translation must cover its region's instructions exactly once under the
/// molecule resource limits.

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/verify_translation.hpp"
#include "cms/engine.hpp"
#include "common/rng.hpp"

namespace bladed::cms {
namespace {

/// A random straight-line-with-back-edge program: `blocks` chunks of random
/// arithmetic/memory ops, a counted loop over the whole thing, and a halt.
/// All memory addressing is through r0 (kept 0) with bounded offsets, so
/// every program is in-bounds by construction.
Program random_program(Rng& rng, int chunks, std::int64_t loop_count,
                       std::size_t mem_size) {
  Program p;
  Instr in;
  in.op = Op::kMovi;
  in.a = 1;
  in.imm_i = 0;
  p.push_back(in);  // r1 = loop counter
  in.a = 2;
  in.imm_i = loop_count;
  p.push_back(in);  // r2 = limit
  const std::int64_t body = static_cast<std::int64_t>(p.size());

  const auto max_off = static_cast<std::int64_t>(mem_size - 1);
  for (int c = 0; c < chunks; ++c) {
    const int len = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < len; ++i) {
      Instr x;
      switch (rng.below(8)) {
        case 0:
          x.op = Op::kFload;
          x.a = static_cast<int>(rng.below(8));
          x.b = 0;
          x.imm_i = static_cast<std::int64_t>(rng.below(max_off));
          break;
        case 1:
          x.op = Op::kFstore;
          x.a = static_cast<int>(rng.below(8));
          x.b = 0;
          x.imm_i = static_cast<std::int64_t>(rng.below(max_off));
          break;
        case 2:
          x.op = Op::kFadd;
          x.a = static_cast<int>(rng.below(8));
          x.b = static_cast<int>(rng.below(8));
          x.c = static_cast<int>(rng.below(8));
          break;
        case 3:
          x.op = Op::kFmul;
          x.a = static_cast<int>(rng.below(8));
          x.b = static_cast<int>(rng.below(8));
          x.c = static_cast<int>(rng.below(8));
          break;
        case 4:
          x.op = Op::kFsub;
          x.a = static_cast<int>(rng.below(8));
          x.b = static_cast<int>(rng.below(8));
          x.c = static_cast<int>(rng.below(8));
          break;
        case 5:
          x.op = Op::kFmovi;
          x.a = static_cast<int>(rng.below(8));
          x.imm_f = rng.uniform(-2.0, 2.0);
          break;
        case 6:
          x.op = Op::kAddi;
          x.a = 3 + static_cast<int>(rng.below(13));
          x.b = 3 + static_cast<int>(rng.below(13));
          x.imm_i = static_cast<std::int64_t>(rng.below(100));
          break;
        default:
          x.op = Op::kAdd;
          x.a = 3 + static_cast<int>(rng.below(13));
          x.b = 3 + static_cast<int>(rng.below(13));
          x.c = 3 + static_cast<int>(rng.below(13));
          break;
      }
      p.push_back(x);
    }
    // A jump to the next chunk creates a region boundary sometimes.
    if (rng.below(2) == 0 && c + 1 < chunks) {
      Instr j;
      j.op = Op::kJmp;
      j.imm_i = static_cast<std::int64_t>(p.size()) + 1;
      p.push_back(j);
    }
  }
  Instr inc;
  inc.op = Op::kAddi;
  inc.a = 1;
  inc.b = 1;
  inc.imm_i = 1;
  p.push_back(inc);
  Instr blt;
  blt.op = Op::kBlt;
  blt.a = 1;
  blt.b = 2;
  blt.imm_i = body;
  p.push_back(blt);
  Instr halt;
  halt.op = Op::kHalt;
  p.push_back(halt);
  return p;
}

class CmsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CmsFuzz, EngineMatchesInterpreterExactly) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const Program prog =
        random_program(rng, 2 + static_cast<int>(rng.below(5)),
                       5 + static_cast<std::int64_t>(rng.below(40)), 64);
    ASSERT_NO_THROW(validate(prog, 64));

    MachineState a(64), b(64);
    for (std::size_t i = 0; i < 64; ++i) {
      a.mem[i] = 0.25 * static_cast<double>(i);
      b.mem[i] = 0.25 * static_cast<double>(i);
    }
    Interpreter pure;
    const InterpretResult ri = pure.run(prog, a);
    MorphingConfig cfg;
    cfg.hot_threshold = 1 + rng.below(6);
    cfg.cache_molecules = 4 + rng.below(64);
    MorphingEngine engine(cfg);
    engine.run(prog, b);
    ASSERT_TRUE(ri.halted);
    for (std::size_t i = 0; i < 64; ++i) {
      ASSERT_DOUBLE_EQ(a.mem[i], b.mem[i])
          << "seed " << GetParam() << " trial " << trial << " mem[" << i
          << "]";
    }
    for (int r = 0; r < 16; ++r) ASSERT_EQ(a.r[r], b.r[r]);
    for (int f = 0; f < 8; ++f) {
      ASSERT_DOUBLE_EQ(a.f[f], b.f[f]);
    }
  }
}

TEST_P(CmsFuzz, TranslationsCoverRegionsExactlyOnce) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const Program prog = random_program(rng, 4, 10, 64);
  Translator tr;
  for (std::size_t pc = 0; pc < prog.size(); pc = block_end(prog, pc)) {
    const Translation t = tr.translate(prog, pc);
    std::vector<int> seen(prog.size(), 0);
    std::size_t atoms = 0;
    for (const Molecule& m : t.molecules) {
      for (int a = 0; a < m.atoms; ++a) {
        ++seen[m.atom_pc[static_cast<std::size_t>(a)]];
        ++atoms;
      }
      ASSERT_LE(m.atoms, 4);
    }
    ASSERT_EQ(atoms, t.instr_count);
    for (std::size_t i = pc; i < block_end(prog, pc); ++i) {
      ASSERT_EQ(seen[i], 1) << "instr " << i;
    }
  }
}

TEST_P(CmsFuzz, CheckerAcceptsExactlyWhatValidateAccepts) {
  // The static checker's *error* set must agree with validate(): every
  // generated program passes both, and structural corruptions fail both.
  // (check may still emit warnings — uninit fp reads are common in random
  // programs — which validate by design does not model.)
  Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const Program prog =
        random_program(rng, 2 + static_cast<int>(rng.below(5)),
                       5 + static_cast<std::int64_t>(rng.below(40)), 64);
    ASSERT_NO_THROW(validate(prog, 64));
    const check::Report ok = check::check_program(prog, 64);
    ASSERT_TRUE(ok.ok()) << ok.to_string();

    // Corruption 1: a branch target far past the end.
    Program bad_target = prog;
    bad_target[bad_target.size() - 2].imm_i = 1000;  // the loop blt
    ASSERT_THROW(validate(bad_target, 64), PreconditionError);
    ASSERT_TRUE(check::check_program(bad_target, 64).has("branch-target"));

    // Corruption 2: a register index outside its file (instr 0 is always
    // the movi that zeroes the loop counter, so `a` is a checked operand).
    Program bad_reg = prog;
    bad_reg[0].a = 99;
    ASSERT_THROW(validate(bad_reg, 64), PreconditionError);
    ASSERT_TRUE(check::check_program(bad_reg, 64).has("bad-register"));
  }
}

TEST_P(CmsFuzz, VerifierAcceptsTranslatorOutput) {
  // Every translation the scheduler emits for a random program must satisfy
  // the full invariant suite — resource limits, hazard freedom, dependence
  // order, cycle accounting.
  Rng rng(13000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 4; ++trial) {
    const Program prog =
        random_program(rng, 2 + static_cast<int>(rng.below(5)),
                       5 + static_cast<std::int64_t>(rng.below(40)), 64);
    Translator tr;
    for (std::size_t pc = 0; pc < prog.size(); pc = block_end(prog, pc)) {
      const Translation t = tr.translate(prog, pc);
      const check::Report r = check::verify_translation(prog, t, tr.limits());
      ASSERT_TRUE(r.clean())
          << "seed " << GetParam() << " trial " << trial << " block @" << pc
          << ":\n" << r.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmsFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace bladed::cms
