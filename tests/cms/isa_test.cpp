#include "cms/isa.hpp"

#include <gtest/gtest.h>

#include "cms/programs.hpp"
#include "common/error.hpp"

namespace bladed::cms {
namespace {

TEST(Isa, ExecIntOps) {
  MachineState st;
  Instr movi;
  movi.op = Op::kMovi;
  movi.a = 1;
  movi.imm_i = 7;
  EXPECT_EQ(exec_instr(movi, 0, st), 1u);
  EXPECT_EQ(st.r[1], 7);

  Instr add;
  add.op = Op::kAdd;
  add.a = 2;
  add.b = 1;
  add.c = 1;
  exec_instr(add, 1, st);
  EXPECT_EQ(st.r[2], 14);

  Instr sub;
  sub.op = Op::kSub;
  sub.a = 3;
  sub.b = 2;
  sub.c = 1;
  exec_instr(sub, 2, st);
  EXPECT_EQ(st.r[3], 7);

  Instr muli;
  muli.op = Op::kMuli;
  muli.a = 4;
  muli.b = 3;
  muli.imm_i = 6;
  exec_instr(muli, 3, st);
  EXPECT_EQ(st.r[4], 42);
}

TEST(Isa, ExecFpAndMemory) {
  MachineState st;
  st.mem[5] = 9.0;
  Instr ld;
  ld.op = Op::kFload;
  ld.a = 1;
  ld.b = 0;
  ld.imm_i = 5;
  exec_instr(ld, 0, st);
  EXPECT_DOUBLE_EQ(st.f[1], 9.0);

  Instr sq;
  sq.op = Op::kFsqrt;
  sq.a = 2;
  sq.b = 1;
  exec_instr(sq, 1, st);
  EXPECT_DOUBLE_EQ(st.f[2], 3.0);

  Instr div;
  div.op = Op::kFdiv;
  div.a = 3;
  div.b = 1;
  div.c = 2;
  exec_instr(div, 2, st);
  EXPECT_DOUBLE_EQ(st.f[3], 3.0);

  Instr stx;
  stx.op = Op::kFstore;
  stx.a = 3;
  stx.b = 0;
  stx.imm_i = 6;
  exec_instr(stx, 3, st);
  EXPECT_DOUBLE_EQ(st.mem[6], 3.0);
}

TEST(Isa, BranchesTakenAndNotTaken) {
  MachineState st;
  st.r[1] = 3;
  st.r[2] = 5;
  Instr blt;
  blt.op = Op::kBlt;
  blt.a = 1;
  blt.b = 2;
  blt.imm_i = 42;
  EXPECT_EQ(exec_instr(blt, 7, st), 42u);  // 3 < 5: taken
  blt.a = 2;
  blt.b = 1;
  EXPECT_EQ(exec_instr(blt, 7, st), 8u);  // 5 < 3 is false

  Instr jmp;
  jmp.op = Op::kJmp;
  jmp.imm_i = 3;
  EXPECT_EQ(exec_instr(jmp, 9, st), 3u);
}

TEST(Isa, OutOfBoundsMemoryThrows) {
  MachineState st(16);
  Instr ld;
  ld.op = Op::kFload;
  ld.a = 0;
  ld.b = 0;
  ld.imm_i = 99;
  EXPECT_THROW(exec_instr(ld, 0, st), PreconditionError);
  ld.imm_i = -1;
  EXPECT_THROW(exec_instr(ld, 0, st), PreconditionError);
}

TEST(Isa, UnitClassesMatchSection21) {
  // "two integer units, a floating-point unit, a memory (load/store) unit,
  // and a branch unit"
  EXPECT_EQ(unit_of(Op::kAdd), UnitClass::kAlu);
  EXPECT_EQ(unit_of(Op::kFmul), UnitClass::kFpu);
  EXPECT_EQ(unit_of(Op::kFload), UnitClass::kLsu);
  EXPECT_EQ(unit_of(Op::kBlt), UnitClass::kBranch);
}

TEST(Isa, ValidateAcceptsSamplePrograms) {
  EXPECT_NO_THROW(validate(daxpy_program(10)));
  EXPECT_NO_THROW(validate(nr_rsqrt_program(5)));
  EXPECT_NO_THROW(validate(branchy_program(4)));
  EXPECT_NO_THROW(validate(many_blocks_program(6, 3)));
}

TEST(Isa, ValidateRejectsBadPrograms) {
  Program empty;
  EXPECT_THROW(validate(empty), PreconditionError);

  Program bad_target = daxpy_program(4);
  bad_target[9].imm_i = 1000;  // branch out of range
  EXPECT_THROW(validate(bad_target), PreconditionError);

  Program no_halt = {Instr{}};
  no_halt[0].op = Op::kFadd;
  EXPECT_THROW(validate(no_halt), PreconditionError);

  Program bad_reg = daxpy_program(4);
  bad_reg[0].a = 99;
  EXPECT_THROW(validate(bad_reg), PreconditionError);
}

TEST(Isa, ToStringCoversAllOps) {
  EXPECT_EQ(to_string(Op::kFsqrt), "fsqrt");
  EXPECT_EQ(to_string(Op::kHalt), "halt");
  EXPECT_EQ(to_string(Op::kBlt), "blt");
}

}  // namespace
}  // namespace bladed::cms
