#include "cms/translator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "cms/interpreter.hpp"
#include "cms/programs.hpp"
#include "cms/tcache.hpp"

namespace bladed::cms {
namespace {

TEST(Translator, CoversEveryInstructionExactlyOnce) {
  const Program prog = daxpy_program(8);
  Translator tr;
  const Translation t = tr.translate(prog, 3);  // the loop body block
  EXPECT_EQ(t.instr_count, 7u);                 // 7 instructions incl. branch
  std::map<std::uint32_t, int> seen;
  int atoms = 0;
  for (const Molecule& m : t.molecules) {
    for (int a = 0; a < m.atoms; ++a) {
      ++seen[m.atom_pc[static_cast<std::size_t>(a)]];
      ++atoms;
    }
  }
  EXPECT_EQ(atoms, 7);
  for (std::uint32_t pc = 3; pc < 10; ++pc) EXPECT_EQ(seen[pc], 1) << pc;
}

TEST(Translator, RespectsMoleculeResourceLimits) {
  const MoleculeLimits lim;  // 4 atoms, 2 ALU, 1 FPU, 1 LSU, 1 BR
  Translator tr(lim);
  for (const Program& prog :
       {daxpy_program(4), nr_rsqrt_program(4), branchy_program(4)}) {
    for (std::size_t pc = 0; pc < prog.size(); pc = block_end(prog, pc)) {
      const Translation t = tr.translate(prog, pc);
      for (const Molecule& m : t.molecules) {
        EXPECT_LE(m.atoms, lim.max_atoms);
        int alu = 0, fpu = 0, lsu = 0, br = 0;
        for (int a = 0; a < m.atoms; ++a) {
          switch (unit_of(prog[m.atom_pc[static_cast<std::size_t>(a)]].op)) {
            case UnitClass::kAlu: ++alu; break;
            case UnitClass::kFpu: ++fpu; break;
            case UnitClass::kLsu: ++lsu; break;
            default: ++br; break;
          }
        }
        EXPECT_LE(alu, lim.alu);
        EXPECT_LE(fpu, lim.fpu);
        EXPECT_LE(lsu, lim.lsu);
        EXPECT_LE(br, lim.branch);
      }
    }
  }
}

TEST(Translator, RespectsDataDependencies) {
  // In every molecule schedule, a consumer must appear in a strictly later
  // molecule than its producer (latency >= 1).
  const Program prog = nr_rsqrt_program(4);
  Translator tr;
  const Translation t = tr.translate(prog, 6);  // NR loop body
  std::map<std::uint32_t, std::size_t> molecule_of;
  for (std::size_t mi = 0; mi < t.molecules.size(); ++mi) {
    const Molecule& m = t.molecules[mi];
    for (int a = 0; a < m.atoms; ++a) {
      molecule_of[m.atom_pc[static_cast<std::size_t>(a)]] = mi;
    }
  }
  // 7 (x*y*y) consumes 6 (y*y); 9 consumes 8; 10 consumes 9.
  EXPECT_LT(molecule_of.at(6), molecule_of.at(7));
  EXPECT_LT(molecule_of.at(7), molecule_of.at(8));
  EXPECT_LT(molecule_of.at(8), molecule_of.at(9));
  EXPECT_LT(molecule_of.at(9), molecule_of.at(10));
}

TEST(Translator, BranchScheduledLast) {
  const Program prog = daxpy_program(8);
  Translator tr;
  const Translation t = tr.translate(prog, 3);
  const Molecule& last = t.molecules.back();
  bool branch_in_last = false;
  for (int a = 0; a < last.atoms; ++a) {
    if (is_branch(prog[last.atom_pc[static_cast<std::size_t>(a)]].op)) {
      branch_in_last = true;
    }
  }
  EXPECT_TRUE(branch_in_last);
}

TEST(Translator, NativeBeatsInterpretationPerExecution) {
  const Program prog = daxpy_program(8);
  Translator tr;
  Interpreter interp;
  const Translation t = tr.translate(prog, 3);
  // One interpreted execution of the block: 7 instrs x (12 + latency).
  MachineState st(64);
  st.r[1] = 0;
  st.r[2] = 8;
  InterpretResult r;
  interp.run_block(prog, st, 3, r);
  EXPECT_LT(t.native_cycles(), r.cycles / 4);
}

TEST(Translator, IndependentOpsPackIntoWideMolecules) {
  // A block of 4 independent fp loads + 2 independent int ops packs much
  // denser than a serial dependency chain.
  Program parallel_block;
  for (int i = 0; i < 4; ++i) {
    Instr in;
    in.op = Op::kFload;
    in.a = i;
    in.b = 0;
    in.imm_i = i;
    parallel_block.push_back(in);
  }
  for (int i = 0; i < 4; ++i) {
    Instr in;
    in.op = Op::kAddi;
    in.a = 1 + i;
    in.b = 0;
    in.imm_i = i;
    parallel_block.push_back(in);
  }
  Instr halt;
  halt.op = Op::kHalt;
  parallel_block.push_back(halt);

  Program chain;
  for (int i = 0; i < 8; ++i) {
    Instr in;
    in.op = Op::kFmul;
    in.a = 1;
    in.b = 1;
    in.c = 1;
    chain.push_back(in);
  }
  chain.push_back(halt);

  Translator tr;
  const Translation tp = tr.translate(parallel_block, 0);
  const Translation tc = tr.translate(chain, 0);
  EXPECT_GT(tp.density(), 1.5);
  EXPECT_LT(tc.density(), 1.2);         // one fmul per molecule, plus waits
  EXPECT_LT(tp.native_cycles(), tc.native_cycles());
}

TEST(Translator, UnpipelinedOpsStallTheMolecule) {
  Program with_div;
  Instr div;
  div.op = Op::kFdiv;
  div.a = 1;
  div.b = 2;
  div.c = 3;
  with_div.push_back(div);
  Instr halt;
  halt.op = Op::kHalt;
  with_div.push_back(halt);
  Translator tr;
  const Translation t = tr.translate(with_div, 0);
  EXPECT_GE(t.native_cycles(),
            static_cast<std::uint64_t>(latency_of(Op::kFdiv)));
}

TEST(Translator, TranslationCostScalesWithBlockSize) {
  Translator tr;
  EXPECT_EQ(tr.translation_cost(10), 10u * 900u);
  EXPECT_EQ(tr.translation_cost(0), 0u);
}

TEST(Translator, DensityNeverExceedsMaxAtoms) {
  Translator tr;
  for (const Program& prog : {daxpy_program(4), many_blocks_program(3, 2)}) {
    for (std::size_t pc = 0; pc < prog.size(); pc = block_end(prog, pc)) {
      const Translation t = tr.translate(prog, pc);
      EXPECT_LE(t.density(), 4.0);
      EXPECT_GT(t.density(), 0.0);
    }
  }
}

TEST(Tcache, LruEvictionOrder) {
  TranslationCache cache(10);
  auto mk = [](std::size_t pc, std::size_t molecules) {
    Translation t;
    t.entry_pc = pc;
    t.molecules.resize(molecules);
    return t;
  };
  EXPECT_TRUE(cache.insert(mk(1, 4)));
  EXPECT_TRUE(cache.insert(mk(2, 4)));
  EXPECT_NE(cache.lookup(1), nullptr);     // 1 is now most recent
  EXPECT_TRUE(cache.insert(mk(3, 4)));     // evicts 2 (LRU)
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Tcache, RejectsOversizedTranslation) {
  TranslationCache cache(4);
  Translation t;
  t.entry_pc = 9;
  t.molecules.resize(5);
  EXPECT_FALSE(cache.insert(std::move(t)));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(Tcache, ReinsertSamePcReplaces) {
  TranslationCache cache(10);
  Translation a;
  a.entry_pc = 7;
  a.molecules.resize(3);
  Translation b;
  b.entry_pc = 7;
  b.molecules.resize(5);
  EXPECT_TRUE(cache.insert(std::move(a)));
  EXPECT_TRUE(cache.insert(std::move(b)));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_molecules(), 5u);
}

}  // namespace
}  // namespace bladed::cms
