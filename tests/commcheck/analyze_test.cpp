/// The happens-before analyzer against the seeded protocol-bug fixtures:
/// each canonical bug must be flagged with its stable code, naming the ranks
/// and operations involved, and the clean control must stay clean.

#include <gtest/gtest.h>

#include "commcheck/analyze.hpp"
#include "commcheck/fixtures.hpp"

namespace {

using namespace bladed;
using commcheck::analyze;
using commcheck::Verdict;

TEST(AnalyzeTest, DeadlockCycleNamesRanksAndOps) {
  const Verdict v = analyze(commcheck::deadlock_trace());
  ASSERT_TRUE(v.has("deadlock-cycle")) << v.to_string();
  const auto& findings = v.findings();
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const auto& f) { return f.code == "deadlock-cycle"; });
  EXPECT_EQ(it->ranks, (std::vector<int>{0, 1}));
  // The report must name each rank and the exact operation it is stuck in.
  EXPECT_NE(it->message.find("rank 0 blocked in recv(src=1, tag=7)"),
            std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("rank 1 blocked in recv(src=0, tag=9)"),
            std::string::npos)
      << it->message;
}

TEST(AnalyzeTest, OrphanedSendIsReportedWithTagAndDestination) {
  const Verdict v = analyze(commcheck::orphan_send_trace());
  ASSERT_TRUE(v.has("orphan-send")) << v.to_string();
  EXPECT_EQ(v.count("orphan-send"), 1U);  // only the tag-2 message leaks
  const auto& findings = v.findings();
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const auto& f) { return f.code == "orphan-send"; });
  EXPECT_EQ(it->ranks, (std::vector<int>{0, 1}));
  EXPECT_NE(it->message.find("tag 2"), std::string::npos) << it->message;
}

TEST(AnalyzeTest, OrphanSendsCanBeSuppressedForFaultDrivers) {
  commcheck::AnalyzeOptions opt;
  opt.orphan_sends = false;
  EXPECT_TRUE(analyze(commcheck::orphan_send_trace(), opt).clean());
}

TEST(AnalyzeTest, WildcardRaceIsFlaggedWithBothCandidates) {
  const Verdict v = analyze(commcheck::wildcard_race_trace());
  ASSERT_TRUE(v.has("wildcard-race")) << v.to_string();
  const auto& findings = v.findings();
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const auto& f) { return f.code == "wildcard-race"; });
  // Receiver plus both racing senders.
  EXPECT_EQ(it->ranks, (std::vector<int>{0, 1, 2}));
}

TEST(AnalyzeTest, BcastRootDisagreementIsFlagged) {
  const Verdict v = analyze(commcheck::bcast_root_mismatch_trace());
  ASSERT_TRUE(v.has("collective-root")) << v.to_string();
  const auto& findings = v.findings();
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [](const auto& f) { return f.code == "collective-root"; });
  EXPECT_NE(std::find(it->ranks.begin(), it->ranks.end(), 3),
            it->ranks.end());
  // The disagreeing tree also strands messages: both defects surface.
  EXPECT_TRUE(v.has("orphan-send")) << v.to_string();
}

TEST(AnalyzeTest, TypedSizeMismatchIsFlagged) {
  const Verdict v = analyze(commcheck::size_mismatch_trace());
  ASSERT_TRUE(v.has("size-mismatch")) << v.to_string();
}

TEST(AnalyzeTest, CleanExchangeProducesCleanVerdict) {
  const Verdict v = analyze(commcheck::clean_trace());
  EXPECT_TRUE(v.clean()) << v.to_string();
}

TEST(AnalyzeTest, JsonVerdictIsMachineReadable) {
  const Verdict dirty = analyze(commcheck::deadlock_trace());
  EXPECT_NE(dirty.to_json().find("\"clean\":false"), std::string::npos);
  EXPECT_NE(dirty.to_json().find("\"code\":\"deadlock-cycle\""),
            std::string::npos);
  const Verdict clean = analyze(commcheck::clean_trace());
  EXPECT_EQ(clean.to_json(), "{\"clean\":true,\"findings\":[]}");
}

TEST(AnalyzeTest, EmptyTraceIsClean) {
  EXPECT_TRUE(analyze(commcheck::Trace{}).clean());
}

}  // namespace
