/// Golden-trace determinism: the engine's min-clock scheduler makes event
/// recording deterministic, so two same-seed parallel runs must serialize to
/// byte-identical traces — the property that makes trace diffs usable as a
/// regression oracle.

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "commcheck/analyze.hpp"
#include "commcheck/recorder.hpp"
#include "treecode/parallel.hpp"

namespace {

using namespace bladed;

std::string treecode_trace(std::uint64_t seed, int host_threads = 1) {
  commcheck::Recorder recorder(4);
  treecode::ParallelConfig cfg;
  cfg.ranks = 4;
  cfg.particles = 600;
  cfg.steps = 2;
  cfg.seed = seed;
  cfg.cpu = &arch::tm5600_633();
  cfg.recorder = &recorder;
  cfg.host_threads = host_threads;
  (void)treecode::run_parallel_nbody(cfg);
  EXPECT_FALSE(recorder.trace().aborted);
  EXPECT_GT(recorder.trace().total_events(), 0U);
  return recorder.trace().canonical_bytes();
}

TEST(DeterminismTest, SameSeedTreecodeRunsRecordIdenticalTraces) {
  const std::string first = treecode_trace(7);
  const std::string second = treecode_trace(7);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TraceIsByteIdenticalAcrossHostThreadCounts) {
  // The tentpole contract of the parallel engine: the host worker-pool size
  // is invisible to the simulation — golden traces recorded at any
  // --host-threads must match the serial engine's byte for byte.
  const std::string serial = treecode_trace(7, 1);
  for (int host_threads : {2, 8}) {
    EXPECT_EQ(serial, treecode_trace(7, host_threads))
        << "trace diverged at host_threads=" << host_threads;
  }
}

TEST(DeterminismTest, TraceCarriesTheRunsStructure) {
  const std::string bytes = treecode_trace(7);
  // Header line + at least one event per rank.
  EXPECT_NE(bytes.find("commcheck-trace ranks=4 clean"), std::string::npos);
  EXPECT_NE(bytes.find("send"), std::string::npos);
  EXPECT_NE(bytes.find("recv"), std::string::npos);
}

TEST(DeterminismTest, RecordedTreecodeRunVerifiesClean) {
  commcheck::Recorder recorder(4);
  treecode::ParallelConfig cfg;
  cfg.ranks = 4;
  cfg.particles = 600;
  cfg.steps = 1;
  cfg.cpu = &arch::tm5600_633();
  cfg.recorder = &recorder;
  (void)treecode::run_parallel_nbody(cfg);
  const commcheck::Verdict v = commcheck::analyze(recorder.trace());
  EXPECT_TRUE(v.clean()) << v.to_string();
}

}  // namespace
