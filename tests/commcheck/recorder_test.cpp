/// The event recorder: vector-clock discipline, send/recv matching, barrier
/// joins and the collective entry markers — the raw material every commcheck
/// analysis consumes.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "commcheck/recorder.hpp"
#include "simnet/comm.hpp"

namespace {

using namespace bladed;
using commcheck::Clock;
using commcheck::CommEvent;
using commcheck::EventKind;

commcheck::Trace record(int ranks,
                        const std::function<void(simnet::Comm&)>& program) {
  commcheck::Recorder recorder(ranks);
  simnet::Cluster::Config cfg;
  cfg.ranks = ranks;
  cfg.recorder = &recorder;
  simnet::Cluster cluster(std::move(cfg));
  cluster.run(program);
  return recorder.trace();
}

TEST(ClockTest, HappensBeforeIsStrictComponentwiseOrder) {
  const Clock a{1, 0};
  const Clock b{1, 2};
  EXPECT_TRUE(commcheck::happens_before(a, b));
  EXPECT_FALSE(commcheck::happens_before(b, a));
  EXPECT_FALSE(commcheck::happens_before(a, a));  // strict: no reflexivity
  EXPECT_FALSE(commcheck::concurrent(a, b));
  const Clock c{0, 1};
  EXPECT_TRUE(commcheck::concurrent(a, c));
  EXPECT_TRUE(commcheck::concurrent(c, a));
}

TEST(RecorderTest, SendRecvPairIsMatchedAndOrdered) {
  const commcheck::Trace trace = record(2, [](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/7, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, /*tag=*/7), 42);
    }
  });

  ASSERT_EQ(trace.ranks, 2);
  EXPECT_FALSE(trace.aborted);
  ASSERT_EQ(trace.events[0].size(), 1U);
  ASSERT_EQ(trace.events[1].size(), 1U);

  const CommEvent& send = trace.events[0][0];
  EXPECT_EQ(send.kind, EventKind::kSend);
  EXPECT_TRUE(send.completed);  // sends never block in this engine
  EXPECT_EQ(send.peer, 1);
  EXPECT_EQ(send.tag, 7);
  EXPECT_EQ(send.bytes, sizeof(int));
  EXPECT_FALSE(send.in_collective);

  const CommEvent& recv = trace.events[1][0];
  EXPECT_EQ(recv.kind, EventKind::kRecv);
  EXPECT_TRUE(recv.completed);
  EXPECT_EQ(recv.matched_src, 0);
  EXPECT_EQ(recv.matched_event, 0U);  // points straight at the send
  EXPECT_EQ(recv.elem_bytes, sizeof(int));
  EXPECT_EQ(recv.elems, 1U);  // recv_value expects exactly one element

  // The join: the receive saw the send, so the send happens-before it.
  EXPECT_TRUE(commcheck::happens_before(send.clock, recv.clock));
}

TEST(RecorderTest, BlockedReceiveStaysIncompleteOnAbort) {
  commcheck::Recorder recorder(2);
  simnet::Cluster::Config cfg;
  cfg.ranks = 2;
  cfg.recorder = &recorder;
  simnet::Cluster cluster(std::move(cfg));
  EXPECT_THROW(cluster.run([](simnet::Comm& comm) {
                 if (comm.rank() == 0) (void)comm.recv_bytes(1, /*tag=*/3);
               }),
               SimulationError);

  const commcheck::Trace& trace = recorder.trace();
  EXPECT_TRUE(trace.aborted);
  ASSERT_EQ(trace.events[0].size(), 1U);
  const CommEvent& recv = trace.events[0][0];
  EXPECT_FALSE(recv.completed);
  EXPECT_EQ(recv.peer, 1);
  EXPECT_EQ(recv.tag, 3);
}

TEST(RecorderTest, TimedOutReceiveIsCompletedAndFlagged) {
  const commcheck::Trace trace = record(2, [](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(
          comm.recv_for<int>(1, /*tag=*/9, /*timeout=*/0.5).has_value());
    }
  });
  ASSERT_EQ(trace.events[0].size(), 1U);
  EXPECT_TRUE(trace.events[0][0].completed);
  EXPECT_TRUE(trace.events[0][0].timed_out);
  EXPECT_FALSE(trace.aborted);
}

TEST(RecorderTest, BarrierJoinsEveryParticipantsClock) {
  const commcheck::Trace trace = record(3, [](simnet::Comm& comm) {
    const int n = comm.size();
    const int r = comm.rank();
    comm.send_value((r + 1) % n, /*tag=*/r, r);
    comm.barrier();
    (void)comm.recv_value<int>((r - 1 + n) % n, /*tag=*/(r - 1 + n) % n);
  });

  EXPECT_FALSE(trace.aborted);
  for (int a = 0; a < 3; ++a) {
    const CommEvent& send = trace.events[static_cast<std::size_t>(a)][0];
    ASSERT_EQ(send.kind, EventKind::kSend);
    for (int b = 0; b < 3; ++b) {
      const CommEvent& barrier =
          trace.events[static_cast<std::size_t>(b)][1];
      ASSERT_EQ(barrier.kind, EventKind::kCollective);
      EXPECT_TRUE(barrier.completed);
      // Everything before the barrier on any rank happens-before the
      // barrier's completion on every rank: that is the join.
      EXPECT_TRUE(commcheck::happens_before(send.clock, barrier.clock))
          << "send on rank " << a << " vs barrier on rank " << b;
    }
  }
}

TEST(RecorderTest, CollectiveMarkersNestAndFlagInternalSends) {
  const commcheck::Trace trace = record(2, [](simnet::Comm& comm) {
    (void)comm.allreduce(comm.rank() + 1, [](int x, int y) { return x + y; });
  });

  EXPECT_FALSE(trace.aborted);
  for (int r = 0; r < 2; ++r) {
    const auto& events = trace.events[static_cast<std::size_t>(r)];
    // allreduce = one outer marker + nested reduce and bcast markers, with
    // the actual p2p traffic flagged as collective-internal.
    std::size_t markers = 0;
    for (const CommEvent& e : events) {
      if (e.kind == EventKind::kCollective) {
        EXPECT_TRUE(e.completed);
        ++markers;
      } else {
        EXPECT_TRUE(e.in_collective);
      }
    }
    EXPECT_EQ(markers, 3U) << "rank " << r;
    EXPECT_EQ(events[0].coll, commcheck::CollectiveKind::kAllreduce);
  }
}

TEST(RecorderTest, ResetDropsEventsAndRewindsClocks) {
  commcheck::Recorder recorder(2);
  simnet::Cluster::Config cfg;
  cfg.ranks = 2;
  cfg.recorder = &recorder;
  {
    simnet::Cluster cluster(cfg);
    cluster.run([](simnet::Comm& comm) {
      if (comm.rank() == 0) comm.send_value(1, 1, 5);
      if (comm.rank() == 1) (void)comm.recv_value<int>(0, 1);
    });
  }
  EXPECT_EQ(recorder.trace().total_events(), 2U);
  const std::string first = recorder.trace().canonical_bytes();

  recorder.reset();
  EXPECT_EQ(recorder.trace().total_events(), 0U);
  {
    simnet::Cluster cluster(cfg);
    cluster.run([](simnet::Comm& comm) {
      if (comm.rank() == 0) comm.send_value(1, 1, 5);
      if (comm.rank() == 1) (void)comm.recv_value<int>(0, 1);
    });
  }
  // After a reset the same program records the same trace from scratch.
  EXPECT_EQ(recorder.trace().canonical_bytes(), first);
}

}  // namespace
