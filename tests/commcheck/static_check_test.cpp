/// The static (pre-run) plan checker: every shipped exchange topology must
/// prove match-complete at the rank counts the drivers use — including
/// non-powers of two and the paper's 24 — and seeded broken plans must be
/// rejected with the right code.

#include <gtest/gtest.h>

#include "commcheck/static_check.hpp"

namespace {

using namespace bladed;
using commcheck::ExchangePlan;
using commcheck::PlanOp;
using commcheck::verify_plan;

TEST(StaticCheckTest, ShippedTopologiesVerifyClean) {
  for (int n : {1, 2, 3, 5, 8, 13, 16, 24}) {
    EXPECT_TRUE(verify_plan(commcheck::ring_allgather_plan(n)).clean()) << n;
    EXPECT_TRUE(verify_plan(commcheck::pairwise_alltoall_plan(n)).clean())
        << n;
    EXPECT_TRUE(verify_plan(commcheck::halo_exchange_plan(n)).clean()) << n;
    EXPECT_TRUE(verify_plan(commcheck::treecode_step_plan(n)).clean()) << n;
    EXPECT_TRUE(verify_plan(commcheck::npb_step_plan(n)).clean()) << n;
    for (int root = 0; root < n; ++root) {
      EXPECT_TRUE(
          verify_plan(commcheck::binomial_bcast_plan(n, root)).clean())
          << n << " root " << root;
      EXPECT_TRUE(
          verify_plan(commcheck::binomial_reduce_plan(n, root)).clean())
          << n << " root " << root;
    }
  }
}

TEST(StaticCheckTest, RecvCycleIsReportedAsDeadlock) {
  ExchangePlan p{"cycle", {{}, {}, {}}};
  p.ops[0] = {PlanOp::recv(2, 1), PlanOp::send(1, 1)};
  p.ops[1] = {PlanOp::recv(0, 1), PlanOp::send(2, 1)};
  p.ops[2] = {PlanOp::recv(1, 1), PlanOp::send(0, 1)};
  const commcheck::Verdict v = verify_plan(p);
  ASSERT_TRUE(v.has("deadlock-cycle")) << v.to_string();
  // One cycle through all three ranks, reported once.
  EXPECT_EQ(v.count("deadlock-cycle"), 1U);
  EXPECT_EQ(v.findings()[0].ranks, (std::vector<int>{0, 1, 2}));
}

TEST(StaticCheckTest, UnconsumedMessageIsAnOrphanSend) {
  ExchangePlan p{"leak", {{}, {}}};
  p.ops[0] = {PlanOp::send(1, 1), PlanOp::send(1, 1)};
  p.ops[1] = {PlanOp::recv(0, 1)};
  const commcheck::Verdict v = verify_plan(p);
  ASSERT_TRUE(v.has("orphan-send")) << v.to_string();
  EXPECT_NE(v.findings()[0].message.find("1 message"), std::string::npos);
}

TEST(StaticCheckTest, TagDisagreementIsANearMiss) {
  ExchangePlan p{"tags", {{}, {}}};
  p.ops[0] = {PlanOp::send(1, 5)};
  p.ops[1] = {PlanOp::recv(0, 6)};
  const commcheck::Verdict v = verify_plan(p);
  EXPECT_TRUE(v.has("tag-mismatch")) << v.to_string();
  EXPECT_TRUE(v.has("orphan-send")) << v.to_string();
}

TEST(StaticCheckTest, MissedBarrierIsACollectiveMismatch) {
  ExchangePlan p{"skip", {{}, {}, {}}};
  p.ops[0] = {PlanOp::barrier()};
  p.ops[1] = {PlanOp::barrier()};
  p.ops[2] = {};  // rank 2 never shows up
  const commcheck::Verdict v = verify_plan(p);
  ASSERT_TRUE(v.has("collective-mismatch")) << v.to_string();
  EXPECT_EQ(v.findings()[0].ranks, (std::vector<int>{0, 1, 2}));
}

TEST(StaticCheckTest, RecvFromFinishedRankIsAnOrphanRecv) {
  ExchangePlan p{"dead-wait", {{}, {}}};
  p.ops[1] = {PlanOp::recv(0, 3)};
  const commcheck::Verdict v = verify_plan(p);
  ASSERT_TRUE(v.has("orphan-recv")) << v.to_string();
  EXPECT_EQ(v.findings()[0].ranks, (std::vector<int>{0, 1}));
}

TEST(StaticCheckTest, SendsNeverBlockSoOutOfOrderDeliveryIsFine) {
  // Both ranks send before receiving — the classic head-to-head that is
  // safe precisely because sends are non-blocking in this engine.
  ExchangePlan p{"head-to-head", {{}, {}}};
  p.ops[0] = {PlanOp::send(1, 1), PlanOp::recv(1, 2)};
  p.ops[1] = {PlanOp::send(0, 2), PlanOp::recv(0, 1)};
  EXPECT_TRUE(verify_plan(p).clean());
}

TEST(StaticCheckTest, CompositionPreservesCompleteness) {
  ExchangePlan p = commcheck::ring_allgather_plan(6);
  p.then_barrier();
  p.then(commcheck::binomial_reduce_plan(6, 2, /*tag=*/9));
  p.then(commcheck::binomial_bcast_plan(6, 2, /*tag=*/10));
  p.then_barrier();
  EXPECT_TRUE(verify_plan(p).clean());
}

}  // namespace
