#include "common/npb_rand.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bladed {
namespace {

TEST(NpbRandom, FirstDeviatesMatchDirectEvaluation) {
  // x1 = 5^13 * seed mod 2^46 computed by hand with __int128.
  const std::uint64_t seed = NpbRandom::kDefaultSeed;
  const unsigned __int128 a = NpbRandom::kA;
  const std::uint64_t mask = (1ULL << 46) - 1;
  std::uint64_t expect = seed;
  NpbRandom rng(seed);
  for (int i = 0; i < 100; ++i) {
    expect = static_cast<std::uint64_t>((a * expect) & mask);
    const double v = rng.next();
    EXPECT_DOUBLE_EQ(v, static_cast<double>(expect) /
                            static_cast<double>(1ULL << 46));
  }
}

TEST(NpbRandom, DeviatesAreInOpenUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(NpbRandom, MeanIsOneHalf) {
  NpbRandom rng;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next();
  EXPECT_NEAR(sum / n, 0.5, 2e-3);
}

TEST(NpbRandom, SkipMatchesSequentialAdvance) {
  NpbRandom seq(NpbRandom::kDefaultSeed);
  for (int i = 0; i < 12345; ++i) seq.next();
  EXPECT_EQ(NpbRandom::skip(NpbRandom::kDefaultSeed, 12345), seq.state());
}

TEST(NpbRandom, SkipZeroIsIdentity) {
  EXPECT_EQ(NpbRandom::skip(987654321ULL, 0), 987654321ULL);
}

TEST(NpbRandom, SkipComposes) {
  const std::uint64_t s1 = NpbRandom::skip(NpbRandom::kDefaultSeed, 1000);
  const std::uint64_t s2 = NpbRandom::skip(s1, 2000);
  EXPECT_EQ(s2, NpbRandom::skip(NpbRandom::kDefaultSeed, 3000));
}

TEST(NpbRandom, DisjointBlocksForParallelRanks) {
  // Two ranks starting from skip(seed, k*blocksize) generate exactly the
  // slices of the global stream — the NPB parallelization contract.
  const std::uint64_t block = 5000;
  NpbRandom global(NpbRandom::kDefaultSeed);
  std::vector<double> all;
  for (std::uint64_t i = 0; i < 2 * block; ++i) all.push_back(global.next());

  NpbRandom r0(NpbRandom::kDefaultSeed);
  NpbRandom r1;
  r1.set_state(NpbRandom::skip(NpbRandom::kDefaultSeed, block));
  for (std::uint64_t i = 0; i < block; ++i) {
    ASSERT_DOUBLE_EQ(r0.next(), all[i]);
    ASSERT_DOUBLE_EQ(r1.next(), all[block + i]);
  }
}

}  // namespace
}  // namespace bladed
