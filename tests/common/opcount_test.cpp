#include "common/opcount.hpp"

#include <gtest/gtest.h>

namespace bladed {
namespace {

TEST(OpCounter, FlopsSumsFourClasses) {
  OpCounter c;
  c.fadd = 1;
  c.fmul = 2;
  c.fdiv = 3;
  c.fsqrt = 4;
  c.iop = 100;  // not a flop
  EXPECT_EQ(c.flops(), 10u);
}

TEST(OpCounter, MemOps) {
  OpCounter c;
  c.load = 7;
  c.store = 5;
  EXPECT_EQ(c.mem_ops(), 12u);
}

TEST(OpCounter, AdditionIsFieldwise) {
  OpCounter a, b;
  a.fadd = 1;
  a.msg_bytes = 10;
  b.fadd = 2;
  b.branch = 3;
  const OpCounter c = a + b;
  EXPECT_EQ(c.fadd, 3u);
  EXPECT_EQ(c.branch, 3u);
  EXPECT_EQ(c.msg_bytes, 10u);
}

TEST(OpCounter, ScalingMultipliesEveryField) {
  OpCounter a;
  a.fadd = 2;
  a.load = 5;
  a.msg_count = 1;
  const OpCounter b = a * 10;
  EXPECT_EQ(b.fadd, 20u);
  EXPECT_EQ(b.load, 50u);
  EXPECT_EQ(b.msg_count, 10u);
}

TEST(OpCounter, DefaultIsAllZero) {
  const OpCounter c;
  EXPECT_EQ(c.flops(), 0u);
  EXPECT_EQ(c.mem_ops(), 0u);
  EXPECT_EQ(c, OpCounter{});
}

}  // namespace
}  // namespace bladed
