#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace bladed {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInHalfOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.5, 2.25);
    ASSERT_GE(v, -3.5);
    ASSERT_LT(v, 2.25);
  }
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(123);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.normal();
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.01);
  EXPECT_NEAR(s.stddev, 1.0, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.below(8)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Rng a(99);
  Rng b(99);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChiSquareUniformityOn64Bins) {
  Rng rng(2024);
  constexpr int kBins = 64, kDraws = 64 * 2000;
  std::vector<int> hist(kBins, 0);
  for (int i = 0; i < kDraws; ++i)
    ++hist[static_cast<int>(rng.uniform() * kBins)];
  double chi2 = 0.0;
  const double expect = static_cast<double>(kDraws) / kBins;
  for (int h : hist) chi2 += (h - expect) * (h - expect) / expect;
  // 63 dof: mean 63, stddev ~11.2; 5-sigma bound.
  EXPECT_LT(chi2, 63 + 5 * 11.2);
}

}  // namespace
}  // namespace bladed
