#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace bladed {
namespace {

TEST(Summarize, KnownValues) {
  const std::array<double, 5> xs = {2.0, 4.0, 4.0, 4.0, 6.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);  // sample stddev
}

TEST(Summarize, EmptyInputYieldsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValueHasZeroStddev) {
  const std::array<double, 1> xs = {7.5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(FitLine, RecoversExactLine) {
  const std::array<double, 4> xs = {0.0, 1.0, 2.0, 3.0};
  const std::array<double, 4> ys = {1.0, 3.0, 5.0, 7.0};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(FitLine, RejectsMismatchedOrDegenerateInput) {
  const std::array<double, 2> xs = {1.0, 1.0};
  const std::array<double, 2> ys = {2.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), PreconditionError);  // identical x
  const std::array<double, 1> one = {1.0};
  EXPECT_THROW(fit_line(one, one), PreconditionError);  // too short
}

TEST(RelDiff, Basics) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
  EXPECT_NEAR(rel_diff(-2.0, 2.0), 2.0, 1e-12);
}

}  // namespace
}  // namespace bladed
