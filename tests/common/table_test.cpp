#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bladed {
namespace {

TEST(TablePrinter, RendersHeaderRuleAndRows) {
  TablePrinter t({"Machine", "Gflop"});
  t.add_row({"MetaBlade", "2.1"});
  t.add_row({"MetaBlade2", "3.3"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Machine"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("MetaBlade2"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, NumericColumnsRightAligned) {
  TablePrinter t({"Name", "Value"});
  t.add_row({"a", "1.0"});
  t.add_row({"b", "10000.0"});
  const std::string out = t.str();
  // The short number must be padded on the left to the column width.
  EXPECT_NE(out.find("    1.0"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), PreconditionError);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(TablePrinter, GroupedInsertsThousandsSeparators) {
  EXPECT_EQ(TablePrinter::grouped(9753824), "9,753,824");
  EXPECT_EQ(TablePrinter::grouped(999), "999");
  EXPECT_EQ(TablePrinter::grouped(1000), "1,000");
  EXPECT_EQ(TablePrinter::grouped(0), "0");
  EXPECT_EQ(TablePrinter::grouped(-12345), "-12,345");
}

}  // namespace
}  // namespace bladed
