#include "common/units.hpp"

#include <gtest/gtest.h>

namespace bladed {
namespace {

TEST(Units, ArithmeticWithinAUnit) {
  const Watts a(10.0), b(2.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 30.0);
  EXPECT_DOUBLE_EQ((3.0 * a).value(), 30.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 2.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const Dollars num(35000.0), den(108000.0);
  const double ratio = num / den;
  EXPECT_NEAR(ratio, 0.324, 1e-3);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(Watts(1.0), Watts(2.0));
  EXPECT_GE(Dollars(5.0), Dollars(5.0));
}

TEST(Units, CompoundAssignment) {
  Dollars d(100.0);
  d += Dollars(50.0);
  d -= Dollars(25.0);
  d *= 2.0;
  EXPECT_DOUBLE_EQ(d.value(), 250.0);
}

TEST(Units, KilowattsConversion) {
  EXPECT_DOUBLE_EQ(kilowatts(Watts(2040.0)), 2.04);
}

TEST(Units, EnergyCostMatchesPaperArithmetic) {
  // §4.1: 2.04 kW for 35,040 hours at $0.10/kWh = $7,148.
  const Dollars c = energy_cost(Watts(2040.0), Hours(35040.0), 0.10);
  EXPECT_NEAR(c.value(), 7148.0, 1.0);
}

TEST(Units, HoursPerYearConstant) {
  EXPECT_DOUBLE_EQ(kHoursPerYear.value(), 8760.0);
}

}  // namespace
}  // namespace bladed
