#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/presets.hpp"

namespace bladed::core {
namespace {

TEST(Metrics, TopperIsTcoOverMflops) {
  Tco t;
  t.hardware = Dollars(35000.0);
  EXPECT_NEAR(topper(t, 2.1), 35000.0 / 2100.0, 1e-9);
}

TEST(Metrics, PaperHeadline_TopperOverTwiceAsGood) {
  // §4.1: TCO 3x smaller at 75% of the performance -> ToPPeR for the Bladed
  // Beowulf is less than half (better than twice as good as) a traditional
  // Beowulf's.
  const CostContext ctx;
  const MetricReport blade = evaluate(metablade(), ctx);
  const MetricReport trad = evaluate(pentium3_24(), ctx);
  EXPECT_LT(blade.topper, 0.5 * trad.topper);
}

TEST(Metrics, PaperHeadline_AcquisitionPricePerfFavoursTraditional) {
  // §4.1: on acquisition-only price/performance "there exists no reason to
  // use a Bladed Beowulf": the blade is ~2x more expensive per Mflops.
  const CostContext ctx;
  const MetricReport blade = evaluate(metablade(), ctx);
  const MetricReport trad = evaluate(pentium3_24(), ctx);
  EXPECT_GT(blade.price_perf, 1.5 * trad.price_perf);
}

TEST(Metrics, PerfSpaceTable6Shape) {
  // Table 6: MetaBlade beats Avalon ~2x; Green Destiny beats it >20x.
  const double av = performance_per_space(avalon().sustained_gflops,
                                          avalon().area);
  const double mb = performance_per_space(metablade().sustained_gflops,
                                          metablade().area);
  const double gd = performance_per_space(green_destiny().sustained_gflops,
                                          green_destiny().area);
  EXPECT_NEAR(mb / av, 2.3, 0.5);
  EXPECT_GT(gd / av, 20.0);
}

TEST(Metrics, PerfPowerTable7Shape) {
  // Table 7: "the Bladed Beowulfs outperform the traditional Beowulf by a
  // factor of four" in Gflops/kW.
  const double av = performance_per_power(avalon().sustained_gflops,
                                          avalon().total_power());
  const double mb = performance_per_power(metablade().sustained_gflops,
                                          metablade().total_power());
  const double gd = performance_per_power(green_destiny().sustained_gflops,
                                          green_destiny().total_power());
  EXPECT_NEAR(mb / av, 4.0, 1.0);
  EXPECT_GT(gd, mb);  // the TM5800 blades are even better
}

TEST(Metrics, UnitsOfPerfSpace) {
  // 2.1 Gflops in 6 ft^2 = 350 Mflops/ft^2.
  EXPECT_NEAR(performance_per_space(2.1, SquareFeet(6.0)), 350.0, 1e-9);
}

TEST(Metrics, UnitsOfPerfPower) {
  // 2.1 Gflops at 0.6 kW = 3.5 Gflops/kW.
  EXPECT_NEAR(performance_per_power(2.1, Watts(600.0)), 3.5, 1e-9);
}

TEST(Metrics, EvaluateIsSelfConsistent) {
  const CostContext ctx;
  const ClusterSpec spec = metablade();
  const MetricReport r = evaluate(spec, ctx);
  EXPECT_NEAR(r.topper, topper(r.tco, spec.sustained_gflops), 1e-12);
  EXPECT_NEAR(r.perf_space,
              performance_per_space(spec.sustained_gflops, spec.area), 1e-12);
}

TEST(Metrics, RejectDegenerateInputs) {
  EXPECT_THROW(performance_per_space(1.0, SquareFeet(0.0)),
               PreconditionError);
  EXPECT_THROW(performance_per_power(1.0, Watts(0.0)), PreconditionError);
  EXPECT_THROW(topper(Tco{}, 0.0), PreconditionError);
}

}  // namespace
}  // namespace bladed::core
