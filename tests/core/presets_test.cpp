#include "core/presets.hpp"

#include <gtest/gtest.h>

#include "power/reliability.hpp"

namespace bladed::core {
namespace {

TEST(Presets, AllClustersValidate) {
  for (const ClusterSpec& c :
       {alpha_24(), athlon_24(), pentium3_24(), pentium4_24(), metablade(),
        avalon(), metablade2(), green_destiny(), loki()}) {
    EXPECT_NO_THROW(validate(c)) << c.name;
  }
}

TEST(Presets, Table5ClustersAreAll24Nodes) {
  for (const ClusterSpec& c : table5_clusters()) {
    EXPECT_EQ(c.nodes, 24) << c.name;
    EXPECT_GT(c.sustained_gflops, 0.0) << c.name;
  }
}

TEST(Presets, BladePerformanceIs75PercentOfTraditional) {
  // §4.1: "its performance being 75% of a comparably-clocked traditional
  // Beowulf cluster".
  EXPECT_NEAR(metablade().sustained_gflops / pentium3_24().sustained_gflops,
              0.75, 0.01);
}

TEST(Presets, OnlyBladesUseConvectionCooling) {
  EXPECT_EQ(metablade().cooling, power::Cooling::kNone);
  EXPECT_EQ(metablade2().cooling, power::Cooling::kNone);
  EXPECT_EQ(green_destiny().cooling, power::Cooling::kNone);
  EXPECT_EQ(alpha_24().cooling, power::Cooling::kActive);
  EXPECT_EQ(avalon().cooling, power::Cooling::kActive);
}

TEST(Presets, MetaBladePowerMatchesPaper) {
  // §4.1: "our 24-node MetaBlade ... dissipates [0.6] kW at load and
  // requires no fans" — total power cost $2,102/4yr at $0.10/kWh.
  EXPECT_NEAR(kilowatts(metablade().total_power()), 0.6, 0.01);
}

TEST(Presets, P4ClusterDissipates2_04kW) {
  EXPECT_NEAR(kilowatts(pentium4_24().dissipated()), 2.04, 0.001);
}

TEST(Presets, AvalonTotalsMatchPublishedFigures) {
  const ClusterSpec a = avalon();
  EXPECT_EQ(a.nodes, 140);
  EXPECT_NEAR(kilowatts(a.total_power()), 18.0, 1.0);
  EXPECT_NEAR(a.area.value(), 120.0, 1.0);
  EXPECT_NEAR(a.sustained_gflops, 18.0, 0.1);
}

TEST(Presets, GreenDestinySameFootprintAsMetaBlade) {
  // §4.2: Green Destiny "would fit in the same footprint as MetaBlade,
  // i.e., six square feet".
  EXPECT_DOUBLE_EQ(green_destiny().area.value(), metablade().area.value());
  EXPECT_EQ(green_destiny().nodes, 240);
}

TEST(Presets, SpaceScaleUpFactor33) {
  // §4.1 footnote: at 240 nodes the traditional space cost grows ten-fold
  // ($80K) while the blades stay at $2,400 — 33x more expensive.
  const double blade_cost_4yr = green_destiny().area.value() * 100.0 * 4.0;
  const double trad_cost_4yr = 10.0 * alpha_24().area.value() * 100.0 * 4.0;
  EXPECT_NEAR(trad_cost_4yr / blade_cost_4yr, 33.0, 1.0);
}

TEST(Presets, TreecodeHistoryMatchesProseConstraints) {
  const auto rows = treecode_history();
  ASSERT_EQ(rows.size(), 12u);

  auto find = [&](std::string_view name) -> const HistoricalMachine& {
    for (const auto& r : rows)
      if (r.machine == name) return r;
    throw std::runtime_error("row not found");
  };

  // §3.3: MetaBlade sustained 2.1 Gflops on 24 CPUs; MetaBlade2 3.3.
  EXPECT_NEAR(find("MetaBlade").gflops, 2.1, 0.01);
  EXPECT_NEAR(find("MetaBlade2").gflops, 3.3, 0.01);

  // §3.5: MetaBlade2 "only places behind the SGI Origin 2000".
  const double mb2 = find("MetaBlade2").mflops_per_proc();
  for (const auto& r : rows) {
    if (r.machine == "MetaBlade2" || r.machine == "SGI Origin 2000") continue;
    EXPECT_LT(r.mflops_per_proc(), mb2) << r.machine;
  }
  EXPECT_GT(find("SGI Origin 2000").mflops_per_proc(), mb2);

  // §3.5: TM5600 is about twice a Pentium Pro 200 (Loki) per processor...
  const double tm = find("MetaBlade").mflops_per_proc();
  EXPECT_NEAR(tm / find("Loki").mflops_per_proc(), 2.0, 0.25);
  // ...and about the same as Avalon's 533-MHz Alphas.
  EXPECT_NEAR(tm / find("Avalon").mflops_per_proc(), 1.0, 0.15);
}

TEST(Presets, TreecodeHistoryRowsAreSortedByPerProcRate) {
  const auto rows = treecode_history();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].mflops_per_proc(), rows[i].mflops_per_proc())
        << rows[i].machine;
  }
}

TEST(Presets, PredictiveReliabilityModelApproximatesObservedRates) {
  // Cross-check: the temperature-based failure model (rate doubling per
  // 10 C, component temperature ~ ambient + k * node watts) lands near the
  // failure cadences the paper observed: ~6/yr for a 24-node traditional
  // cluster, ~1/yr for the blades.
  power::ReliabilityModel rel;
  rel.failures_per_node_year_ref = 0.016;  // per node-year at 25 C component
  constexpr double kDegPerWatt = 0.48;     // self-heating of a packed node

  const ClusterSpec trad = pentium4_24();
  const double trad_temp =
      trad.ambient.value() + kDegPerWatt * trad.node_watts.value();
  const double trad_rate =
      rel.failure_rate(Celsius(trad_temp)) * trad.nodes;
  EXPECT_NEAR(trad_rate, 6.0, 2.0);

  const ClusterSpec blade = metablade();
  const double blade_temp =
      blade.ambient.value() + kDegPerWatt * blade.node_watts.value();
  const double blade_rate =
      rel.failure_rate(Celsius(blade_temp)) * blade.nodes;
  EXPECT_NEAR(blade_rate, 1.0, 0.8);
}

}  // namespace
}  // namespace bladed::core
