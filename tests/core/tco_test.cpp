#include "core/tco.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/presets.hpp"

namespace bladed::core {
namespace {

// Table 5 of the paper (verbatim in the text), in dollars, 4-year period.
struct Table5Row {
  const char* name;
  double acquisition, sysadmin, power_cooling, space, downtime, tco;
};
constexpr Table5Row kPaperTable5[] = {
    {"Alpha", 17000, 60000, 11000, 8000, 12000, 108000},
    {"Athlon", 15000, 60000, 6000, 8000, 12000, 101000},
    {"PIII", 16000, 60000, 6000, 8000, 12000, 102000},
    {"P4", 17000, 60000, 11000, 8000, 12000, 108000},
    {"TM5600", 26000, 5000, 2000, 2000, 0, 35000},
};

TEST(Tco, ReproducesPaperTable5WithinRounding) {
  const CostContext ctx;  // paper defaults: 4 yr, $0.10/kWh, $100/ft2/yr, $5/CPU-h
  const auto clusters = table5_clusters();
  ASSERT_EQ(clusters.size(), 5u);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const Tco t = compute_tco(clusters[i], ctx);
    const Table5Row& row = kPaperTable5[i];
    // The paper rounds to the nearest $1K; allow that rounding.
    EXPECT_NEAR(t.acquisition().value(), row.acquisition, 500.0) << row.name;
    EXPECT_NEAR(t.sysadmin.value(), row.sysadmin, 500.0) << row.name;
    EXPECT_NEAR(t.power_cooling.value(), row.power_cooling, 500.0) << row.name;
    EXPECT_NEAR(t.space.value(), row.space, 500.0) << row.name;
    EXPECT_NEAR(t.downtime.value(), row.downtime, 500.0) << row.name;
    EXPECT_NEAR(t.total().value(), row.tco, 1500.0) << row.name;
  }
}

TEST(Tco, BladedTcoIsAboutThreeTimesBetter) {
  // §4.1: "the TCO on our MetaBlade Bladed Beowulf is approximately three
  // times better than the TCO on a traditional Beowulf".
  const CostContext ctx;
  const double blade = compute_tco(metablade(), ctx).total().value();
  for (const ClusterSpec& trad :
       {alpha_24(), athlon_24(), pentium3_24(), pentium4_24()}) {
    const double t = compute_tco(trad, ctx).total().value();
    EXPECT_GT(t / blade, 2.5) << trad.name;
    EXPECT_LT(t / blade, 3.6) << trad.name;
  }
}

TEST(Tco, ExactPaperComponentFigures) {
  const CostContext ctx;
  const Tco blade = compute_tco(metablade(), ctx);
  EXPECT_NEAR(blade.sysadmin.value(), 5050.0, 1.0);      // $250 + 4x$1200
  EXPECT_NEAR(blade.power_cooling.value(), 2102.0, 5.0); // $2,102
  EXPECT_NEAR(blade.space.value(), 2400.0, 1.0);         // 6 ft2 x $100 x 4
  EXPECT_NEAR(blade.downtime.value(), 20.0, 1.0);        // $20

  const Tco p4 = compute_tco(pentium4_24(), ctx);
  EXPECT_NEAR(p4.power_cooling.value(), 10722.0, 10.0);  // $10,722
  EXPECT_NEAR(p4.downtime.value(), 11520.0, 1.0);        // $11,520
}

TEST(Tco, AcquisitionSplitsHardwareSoftware) {
  ClusterSpec c = metablade();
  c.software_cost = Dollars(1000.0);
  const Tco t = compute_tco(c, CostContext{});
  EXPECT_DOUBLE_EQ(t.acquisition().value(),
                   c.hardware_cost.value() + 1000.0);
}

TEST(Tco, OperatingCostIsSumOfFourComponents) {
  const Tco t = compute_tco(alpha_24(), CostContext{});
  EXPECT_DOUBLE_EQ(t.operating().value(),
                   t.sysadmin.value() + t.power_cooling.value() +
                       t.space.value() + t.downtime.value());
  EXPECT_DOUBLE_EQ(t.total().value(),
                   t.acquisition().value() + t.operating().value());
}

TEST(Tco, LostCpuHoursPaperArithmetic) {
  // Traditional: 6 whole-cluster outages/yr x 4 h x 24 CPUs x 4 yr = 2304.
  DowntimeSpec trad;
  trad.cluster_failures_per_year = 6.0;
  trad.repair_time = Hours(4.0);
  trad.whole_cluster_outage = true;
  EXPECT_NEAR(lost_cpu_hours(trad, 24, 4.0).value(), 2304.0, 1e-9);

  DowntimeSpec blade;
  blade.cluster_failures_per_year = 1.0;
  blade.repair_time = Hours(1.0);
  blade.whole_cluster_outage = false;
  EXPECT_NEAR(lost_cpu_hours(blade, 24, 4.0).value(), 4.0, 1e-9);
}

TEST(Tco, ScalesWithOperatingPeriod) {
  CostContext two;
  two.years = 2.0;
  CostContext four;
  four.years = 4.0;
  const ClusterSpec c = pentium3_24();
  const Tco t2 = compute_tco(c, two);
  const Tco t4 = compute_tco(c, four);
  EXPECT_DOUBLE_EQ(t2.acquisition().value(), t4.acquisition().value());
  EXPECT_NEAR(t4.power_cooling.value(), 2.0 * t2.power_cooling.value(), 1e-6);
  EXPECT_NEAR(t4.space.value(), 2.0 * t2.space.value(), 1e-6);
  EXPECT_NEAR(t4.downtime.value(), 2.0 * t2.downtime.value(), 1e-6);
}

TEST(Tco, RejectsEmptyCluster) {
  ClusterSpec c;
  c.nodes = 0;
  EXPECT_THROW(compute_tco(c, CostContext{}), PreconditionError);
}

}  // namespace
}  // namespace bladed::core
