#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/error.hpp"
#include "fault/checkpoint.hpp"
#include "fault/crc32.hpp"
#include "fault/injector.hpp"

namespace bladed::fault {
namespace {

// --- crc32 -----------------------------------------------------------------

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::vector<std::byte> a(64, std::byte{0x5A});
  std::vector<std::byte> b = a;
  b[17] ^= std::byte{0x04};
  EXPECT_NE(crc32_of(a), crc32_of(b));
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const char msg[] = "honey, i shrunk the beowulf";
  const std::uint32_t whole = crc32(msg, sizeof(msg) - 1);
  const std::uint32_t part = crc32(msg + 10, sizeof(msg) - 11,
                                   crc32(msg, 10));
  EXPECT_EQ(whole, part);
}

// --- FaultSchedule ---------------------------------------------------------

TEST(FaultSchedule, BuilderKeepsEventsTimeSorted) {
  FaultSchedule s;
  s.crash(3, 0.9).link_drop(0, 1, 0.1, 0.2).hang(2, 0.5, 0.05);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.events()[0].time, 0.1);
  EXPECT_DOUBLE_EQ(s.events()[1].time, 0.5);
  EXPECT_DOUBLE_EQ(s.events()[2].time, 0.9);
}

TEST(FaultSchedule, LinkEventsApplyBidirectionallyAndWildcard) {
  FaultSchedule s;
  s.link_drop(2, 5, 0.0, 1.0);
  const FaultEvent& e = s.events()[0];
  EXPECT_TRUE(e.applies_to_link(2, 5));
  EXPECT_TRUE(e.applies_to_link(5, 2));
  EXPECT_FALSE(e.applies_to_link(2, 4));
  FaultSchedule any;
  any.corrupt(-1, -1, 0.0, 1.0);
  EXPECT_TRUE(any.events()[0].applies_to_link(7, 11));
}

TEST(FaultSchedule, WindowActivityIsHalfOpen) {
  FaultSchedule s;
  s.delay(0, 1, 1.0, 0.5, 1e-3);
  const FaultEvent& e = s.events()[0];
  EXPECT_FALSE(e.active_at(0.999));
  EXPECT_TRUE(e.active_at(1.0));
  EXPECT_TRUE(e.active_at(1.499));
  EXPECT_FALSE(e.active_at(1.5));
}

ScheduleConfig accelerated(std::uint64_t seed) {
  ScheduleConfig cfg;
  cfg.nodes = 16;
  cfg.horizon_seconds = 10.0;
  // 0.25 failures/node-year is ~8e-9/s; accelerate into the 10 s horizon.
  cfg.acceleration = 2e8;
  cfg.seed = seed;
  // A crash permanently ends a node's stream (so the count would saturate at
  // the geometric mean 1/crash-weight per node); the scaling tests below
  // need the unbounded transient-only process.
  cfg.mix.crash = 0.0;
  return cfg;
}

TEST(FaultSchedule, GenerateIsDeterministicInSeed) {
  const FaultSchedule a = FaultSchedule::generate(accelerated(42));
  const FaultSchedule b = FaultSchedule::generate(accelerated(42));
  EXPECT_EQ(a, b);
  const FaultSchedule c = FaultSchedule::generate(accelerated(43));
  EXPECT_NE(a, c);
}

TEST(FaultSchedule, GenerateRespectsHorizonAndNodeRange) {
  const ScheduleConfig cfg = accelerated(7);
  const FaultSchedule s = FaultSchedule::generate(cfg);
  ASSERT_GT(s.size(), 0u);
  std::set<FaultKind> kinds;
  for (const FaultEvent& e : s.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, cfg.horizon_seconds);
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, cfg.nodes);
    kinds.insert(e.kind);
  }
  EXPECT_GE(kinds.size(), 3u);  // the mix produces a varied taxonomy
}

TEST(FaultSchedule, CrashEndsThatNodesEventStream) {
  ScheduleConfig cfg = accelerated(21);
  cfg.mix.crash = 5.0;  // crash-heavy: every node dies almost immediately
  const FaultSchedule s = FaultSchedule::generate(cfg);
  std::vector<double> crash_time(cfg.nodes, -1.0);
  for (const FaultEvent& e : s.events()) {
    if (crash_time[e.node] >= 0.0) {
      ADD_FAILURE() << "node " << e.node << " has an event at " << e.time
                    << " after crashing at " << crash_time[e.node];
    }
    if (e.kind == FaultKind::kNodeCrash) crash_time[e.node] = e.time;
  }
}

TEST(FaultSchedule, AccelerationScalesArrivalCount) {
  ScheduleConfig lo = accelerated(9);
  ScheduleConfig hi = lo;
  hi.acceleration *= 8.0;
  EXPECT_GT(FaultSchedule::generate(hi).size(),
            2 * FaultSchedule::generate(lo).size());
}

TEST(FaultSchedule, HotterAmbientProducesMoreFaults) {
  // Arrhenius: +10 C doubles the rate, so the schedule should roughly double.
  ScheduleConfig cool = accelerated(11);
  ScheduleConfig hot = cool;
  hot.ambient = Celsius(cool.ambient.value() + 20.0);  // 4x the rate
  const auto n_cool = FaultSchedule::generate(cool).size();
  const auto n_hot = FaultSchedule::generate(hot).size();
  EXPECT_GT(static_cast<double>(n_hot), 2.5 * static_cast<double>(n_cool));
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, DefaultConstructedIsDisabled) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.crash_time(0), FaultInjector::kNever);
}

FaultPlan plan_with(FaultSchedule s, double offset = 0.0) {
  FaultPlan p;
  p.enabled = true;
  p.schedule = std::move(s);
  p.time_offset = offset;
  return p;
}

TEST(FaultInjector, CrashTimeIsAttemptLocal) {
  FaultSchedule s;
  s.crash(3, 0.5);
  EXPECT_DOUBLE_EQ(FaultInjector(plan_with(s)).crash_time(3), 0.5);
  EXPECT_EQ(FaultInjector(plan_with(s)).crash_time(2),
            FaultInjector::kNever);
  // After 0.3 s of consumed run time the crash is 0.2 s away.
  EXPECT_DOUBLE_EQ(FaultInjector(plan_with(s, 0.3)).crash_time(3), 0.2);
  // A crash whose absolute time predates the attempt has been repaired.
  EXPECT_EQ(FaultInjector(plan_with(s, 0.7)).crash_time(3),
            FaultInjector::kNever);
}

TEST(FaultInjector, HangEndCoversWindow) {
  FaultSchedule s;
  s.hang(2, 1.0, 0.5);
  const FaultInjector inj(plan_with(s));
  EXPECT_DOUBLE_EQ(inj.hang_end(2, 1.2), 1.5);
  EXPECT_DOUBLE_EQ(inj.hang_end(2, 0.9), 0.9);   // before the window
  EXPECT_DOUBLE_EQ(inj.hang_end(2, 1.6), 1.6);   // after it
  EXPECT_DOUBLE_EQ(inj.hang_end(3, 1.2), 1.2);   // other node untouched
}

TEST(FaultInjector, XmitFateIsDeterministicAndWindowScoped) {
  FaultSchedule s;
  s.link_drop(0, 1, 0.0, 1.0, 1.0).delay(0, 1, 2.0, 1.0, 3e-3, 1.0);
  const FaultInjector inj(plan_with(s));
  const auto in_window = inj.xmit(0, 1, 0.5, /*msg_id=*/9, /*attempt=*/0);
  EXPECT_TRUE(in_window.dropped);
  const auto again = inj.xmit(0, 1, 0.5, 9, 0);
  EXPECT_EQ(again.dropped, in_window.dropped);
  EXPECT_FALSE(inj.xmit(0, 1, 1.5, 9, 1).dropped);  // outside the window
  EXPECT_FALSE(inj.xmit(2, 3, 0.5, 9, 0).dropped);  // other link
  EXPECT_DOUBLE_EQ(inj.xmit(0, 1, 2.5, 9, 0).extra_delay, 3e-3);
}

TEST(FaultInjector, CorruptPayloadFlipsFewBitsDeterministically) {
  FaultInjector inj(plan_with(FaultSchedule{}));
  const std::vector<std::byte> original(256, std::byte{0xAB});
  std::vector<std::byte> a = original;
  inj.corrupt_payload(a, /*msg_id=*/5, /*attempt=*/1);
  std::vector<std::byte> b = original;
  inj.corrupt_payload(b, 5, 1);
  EXPECT_EQ(a, b);  // replayable
  int flipped_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned x = std::to_integer<unsigned>(a[i] ^ original[i]);
    while (x) {
      flipped_bits += static_cast<int>(x & 1u);
      x >>= 1;
    }
  }
  EXPECT_GE(flipped_bits, 1);
  EXPECT_LE(flipped_bits, 3);
}

TEST(TransportPolicy, RetryDelayBacksOffExponentiallyAndSaturates) {
  TransportPolicy p;
  p.rto = 1e-3;
  p.backoff = 2.0;
  p.max_retry_delay = 5e-3;
  EXPECT_DOUBLE_EQ(p.retry_delay(0), 1e-3);
  EXPECT_DOUBLE_EQ(p.retry_delay(1), 2e-3);
  EXPECT_DOUBLE_EQ(p.retry_delay(2), 4e-3);
  EXPECT_DOUBLE_EQ(p.retry_delay(3), 5e-3);  // clamped
  EXPECT_DOUBLE_EQ(p.retry_delay(10), 5e-3);
}

// --- CheckpointStore -------------------------------------------------------

std::vector<std::byte> blob_of(const char* s) {
  std::vector<std::byte> b(std::strlen(s));
  std::memcpy(b.data(), s, b.size());
  return b;
}

TEST(CheckpointStore, RoundTripsBlobs) {
  CheckpointStore store;
  store.save(0, 1, blob_of("rank0@v1"));
  const auto got = store.load(0, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("rank0@v1"));
  EXPECT_FALSE(store.load(1, 1).has_value());
  EXPECT_FALSE(store.load(0, 2).has_value());
}

TEST(CheckpointStore, DamagedBlobIsRefused) {
  CheckpointStore store;
  store.save(2, 0, blob_of("precious state"));
  store.damage(2, 0);
  EXPECT_FALSE(store.load(2, 0).has_value());
}

TEST(CheckpointStore, CompleteVersionNeedsEveryRank) {
  CheckpointStore store;
  EXPECT_EQ(store.last_complete_version(2), -1);
  store.save(0, 0, blob_of("a"));
  store.save(1, 0, blob_of("b"));
  store.save(0, 1, blob_of("c"));  // rank 1 never commits v1
  EXPECT_EQ(store.last_complete_version(2), 0);
  store.save(1, 1, blob_of("d"));
  EXPECT_EQ(store.last_complete_version(2), 1);
  store.clear();
  EXPECT_EQ(store.last_complete_version(2), -1);
}

TEST(CheckpointBlob, WriterReaderRoundTrip) {
  BlobWriter w;
  w.put(42);
  w.put(2.5);
  w.put_vec(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<std::byte> bytes = w.take();
  BlobReader r(bytes);
  EXPECT_EQ(r.get<int>(), 42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_EQ(r.get_vec<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CheckpointBlob, TruncatedBlobThrows) {
  BlobWriter w;
  w.put(std::uint64_t{1000});  // claims a 1000-element vector follows
  const std::vector<std::byte> bytes = w.take();
  BlobReader r(bytes);
  EXPECT_THROW((void)r.get_vec<double>(), PreconditionError);
}

}  // namespace
}  // namespace bladed::fault
