/// Checkpoint/restart tests for the fault-tolerant parallel drivers: the
/// differential property (a recovered run must reproduce the fault-free
/// physics bit-for-bit at strictly greater virtual time), graceful
/// degradation, restart bookkeeping, and the NPB FT kernels.

#include "treecode/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "npb/parallel.hpp"

namespace bladed {
namespace {

treecode::ParallelConfig small_base() {
  treecode::ParallelConfig base;
  base.ranks = 6;
  base.particles = 240;
  base.steps = 4;
  base.seed = 11;
  base.cpu = &arch::tm5600_633();
  return base;
}

treecode::FtConfig small_ft() {
  treecode::FtConfig ft;
  ft.base = small_base();
  ft.checkpoint_every = 2;
  ft.restart_penalty_seconds = 0.5;
  return ft;
}

bool bit_identical(const treecode::ParticleSet& a,
                   const treecode::ParticleSet& b) {
  return a.size() == b.size() && a.x == b.x && a.y == b.y && a.z == b.z &&
         a.vx == b.vx && a.vy == b.vy && a.vz == b.vz && a.m == b.m;
}

TEST(TreecodeFt, CleanRunMatchesFaultFreeDriver) {
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  const treecode::FtResult ft = run_parallel_nbody_ft(small_ft());
  EXPECT_TRUE(bit_identical(ft.result.particles_out, ref.particles_out));
  EXPECT_EQ(ft.attempts, 1);
  EXPECT_EQ(ft.restarts, 0);
  EXPECT_EQ(ft.checkpoints, 1);  // after step 2 of 4
  EXPECT_EQ(ft.resumed_from_step, -1);
  EXPECT_DOUBLE_EQ(ft.lost_virtual_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ft.total_virtual_seconds, ft.result.elapsed_seconds);
}

// The acceptance-criterion differential test: drops + corruption + one node
// crash with restart-on-replacement must converge to the exact particle
// state of the fault-free run, at strictly greater virtual time.
TEST(TreecodeFt, RecoveredRunIsBitIdenticalToFaultFree) {
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  const double t_ref = ref.elapsed_seconds;

  treecode::FtConfig ft = small_ft();
  ft.schedule.link_drop(-1, -1, 0.0, 0.3 * t_ref, 0.15)
      .corrupt(-1, -1, 0.0, 0.3 * t_ref, 0.10)
      .crash(3, 0.6 * t_ref);
  const treecode::FtResult r = run_parallel_nbody_ft(ft);

  EXPECT_TRUE(bit_identical(r.result.particles_out, ref.particles_out));
  EXPECT_DOUBLE_EQ(r.result.kinetic, ref.kinetic);
  EXPECT_DOUBLE_EQ(r.result.potential, ref.potential);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.fault_stats.crashes, 1u);
  EXPECT_GE(r.fault_stats.drops + r.fault_stats.crc_rejects, 1u);
  EXPECT_EQ(r.failed_nodes, std::vector<int>{3});
  EXPECT_EQ(r.final_ranks, small_base().ranks);
  EXPECT_GT(r.total_virtual_seconds, t_ref);  // strictly: recovery costs time
  EXPECT_GT(r.lost_virtual_seconds, 0.0);
}

// Acceptance-criterion determinism test: the same fault seed must yield a
// bit-identical fault schedule, recovery trace and timings across two runs.
TEST(TreecodeFt, RecoveryIsDeterministicFromTheSeed) {
  treecode::FtConfig ft = small_ft();
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  ft.schedule.link_drop(-1, -1, 0.0, 0.4 * ref.elapsed_seconds, 0.2)
      .crash(1, 0.5 * ref.elapsed_seconds);
  ft.fault_seed = 99;
  const treecode::FtResult a = run_parallel_nbody_ft(ft);
  const treecode::FtResult b = run_parallel_nbody_ft(ft);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_GT(a.fault_trace.size(), 0u);
  EXPECT_DOUBLE_EQ(a.total_virtual_seconds, b.total_virtual_seconds);
  EXPECT_DOUBLE_EQ(a.lost_virtual_seconds, b.lost_virtual_seconds);
  EXPECT_TRUE(bit_identical(a.result.particles_out, b.result.particles_out));
}

TEST(TreecodeFt, DegradeFinishesOnSurvivingRanks) {
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  treecode::FtConfig ft = small_ft();
  ft.schedule.crash(2, 0.5 * ref.elapsed_seconds);
  ft.on_node_loss = treecode::NodeLossPolicy::kDegrade;
  const treecode::FtResult r = run_parallel_nbody_ft(ft);
  EXPECT_EQ(r.final_ranks, small_base().ranks - 1);
  EXPECT_EQ(r.restarts, 1);
  // Every particle survives the re-decomposition over fewer ranks.
  EXPECT_EQ(r.result.particles_out.size(), small_base().particles);
  EXPECT_TRUE(std::isfinite(r.result.kinetic + r.result.potential));
}

TEST(TreecodeFt, WithoutCheckpointsRestartGoesBackToStepZero) {
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  treecode::FtConfig ft = small_ft();
  ft.checkpoint_every = 0;
  ft.schedule.crash(4, 0.6 * ref.elapsed_seconds);
  const treecode::FtResult r = run_parallel_nbody_ft(ft);
  EXPECT_EQ(r.checkpoints, 0);
  EXPECT_EQ(r.resumed_from_step, 0);
  EXPECT_TRUE(bit_identical(r.result.particles_out, ref.particles_out));
  // Scratch restart throws away the whole failed attempt.
  EXPECT_GT(r.lost_virtual_seconds, 0.5);  // at least the restart penalty
}

TEST(TreecodeFt, ExhaustedRestartBudgetRethrows) {
  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  treecode::FtConfig ft = small_ft();
  ft.schedule.crash(0, 0.5 * ref.elapsed_seconds);
  ft.max_restarts = 0;
  EXPECT_THROW((void)run_parallel_nbody_ft(ft), FaultError);
}

TEST(TreecodeFt, FileSnapshotsSupportRestartAndSurviveDamage) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "bladed_ft_snapshots_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const treecode::ParallelResult ref = run_parallel_nbody(small_base());
  treecode::FtConfig ft = small_ft();
  ft.snapshot_dir = dir.string();
  // Late crash: the step-2 checkpoint must be committed by then (the FT run
  // trails the fault-free clock by the framing + checkpoint-write costs).
  ft.schedule.crash(3, 0.85 * ref.elapsed_seconds);
  const treecode::FtResult r = run_parallel_nbody_ft(ft);
  EXPECT_TRUE(bit_identical(r.result.particles_out, ref.particles_out));
  EXPECT_EQ(r.restarts, 1);
  EXPECT_GT(r.resumed_from_step, 0);  // actually used the snapshot files
  bool any_snapshot = false;
  for (const auto& entry : fs::directory_iterator(dir))
    any_snapshot |= entry.path().filename().string().starts_with("ck_v");
  EXPECT_TRUE(any_snapshot);
  fs::remove_all(dir);
}

// --- NPB fault-tolerant kernels --------------------------------------------

npb::NpbFaultConfig npb_cfg() {
  npb::NpbFaultConfig nf;
  nf.base.ranks = 4;
  nf.base.cpu = &arch::tm5600_633();
  nf.restart_penalty_seconds = 0.1;
  return nf;
}

TEST(NpbFt, EpRecoversToTheFaultFreeResult) {
  npb::NpbFaultConfig nf = npb_cfg();
  const npb::ParallelEpResult ref = npb::run_parallel_ep(nf.base, 14);
  nf.schedule.crash(1, 0.4 * ref.elapsed_seconds);
  const npb::ParallelEpFtResult r = npb::run_parallel_ep_ft(nf, 14, 4);
  EXPECT_EQ(r.ft.restarts, 1);
  EXPECT_GT(r.ft.checkpoints, 0);
  // Counts are exact; the Gaussian sums are regrouped by the per-batch
  // accumulation, so they agree only to FP reassociation.
  EXPECT_EQ(r.ep.global.q, ref.global.q);
  EXPECT_EQ(r.ep.global.pairs, ref.global.pairs);
  EXPECT_EQ(r.ep.global.accepted, ref.global.accepted);
  EXPECT_NEAR(r.ep.global.sx, ref.global.sx, 1e-10 * std::abs(ref.global.sx));
  EXPECT_NEAR(r.ep.global.sy, ref.global.sy, 1e-10 * std::abs(ref.global.sy));
  // The recovery (both attempts + penalty) costs strictly more than the
  // fault-free run even though the final attempt alone may be shorter.
  EXPECT_GT(r.ft.total_virtual_seconds, ref.elapsed_seconds);
}

TEST(NpbFt, EpRecoveryIsBitIdenticalToTheUnfaultedFtRun) {
  // The batched FT kernel is its own determinism reference: a crash plus
  // restart must reproduce the no-fault FT run's sums bit-for-bit (both
  // accumulate batch partials in the same order).
  const npb::ParallelEpFtResult clean =
      npb::run_parallel_ep_ft(npb_cfg(), 14, 4);
  EXPECT_EQ(clean.ft.attempts, 1);
  EXPECT_EQ(clean.ft.restarts, 0);
  EXPECT_DOUBLE_EQ(clean.ft.lost_virtual_seconds, 0.0);
  npb::NpbFaultConfig nf = npb_cfg();
  nf.schedule.crash(1, 0.5 * clean.ep.elapsed_seconds);
  const npb::ParallelEpFtResult r = npb::run_parallel_ep_ft(nf, 14, 4);
  EXPECT_EQ(r.ft.restarts, 1);
  EXPECT_DOUBLE_EQ(r.ep.global.sx, clean.ep.global.sx);
  EXPECT_DOUBLE_EQ(r.ep.global.sy, clean.ep.global.sy);
  EXPECT_EQ(r.ep.global.q, clean.ep.global.q);
}

TEST(NpbFt, IsStillVerifiesAfterRecovery) {
  npb::NpbFaultConfig nf = npb_cfg();
  const npb::ParallelIsResult ref =
      npb::run_parallel_is(nf.base, 12, 9, /*iterations=*/4);
  ASSERT_TRUE(ref.globally_sorted);
  nf.schedule.crash(2, 0.5 * ref.elapsed_seconds);
  const npb::ParallelIsFtResult r =
      npb::run_parallel_is_ft(nf, 12, 9, /*iterations=*/4);
  EXPECT_EQ(r.ft.restarts, 1);
  EXPECT_TRUE(r.is.globally_sorted);
  EXPECT_TRUE(r.is.ranks_are_permutation);
  EXPECT_EQ(r.is.keys, ref.keys);
  EXPECT_GT(r.ft.total_virtual_seconds, ref.elapsed_seconds);
}

}  // namespace
}  // namespace bladed
