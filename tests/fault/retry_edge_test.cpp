/// Edge cases of TransportPolicy::retry_delay and the recv_timeout = 0
/// wait-forever contract. retry_delay feeds virtual-time arithmetic inside
/// the FT transport, so an overflow to inf (or a NaN) at a large attempt
/// index would poison the engine clock; these tests pin the clamp.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fault/fault.hpp"
#include "simnet/cluster.hpp"
#include "simnet/comm.hpp"

namespace bladed::fault {
namespace {

TEST(RetryDelay, ExactExponentialLadderBelowTheClamp) {
  TransportPolicy p;  // rto=2e-3, backoff=2, max_retry_delay=1
  for (int attempt = 0; attempt < 9; ++attempt) {
    const double expect =
        std::min(p.rto * std::pow(p.backoff, attempt), p.max_retry_delay);
    EXPECT_DOUBLE_EQ(p.retry_delay(attempt), expect) << "attempt " << attempt;
  }
  // attempt 8 with the defaults: 2e-3 * 256 = 0.512, still under the clamp;
  // attempt 9 (1.024) is the first clamped value.
  EXPECT_DOUBLE_EQ(p.retry_delay(8), 0.512);
  EXPECT_DOUBLE_EQ(p.retry_delay(9), p.max_retry_delay);
}

TEST(RetryDelay, MonotoneNonDecreasing) {
  TransportPolicy p;
  double prev = 0.0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double d = p.retry_delay(attempt);
    EXPECT_GE(d, prev) << "attempt " << attempt;
    prev = d;
  }
}

TEST(RetryDelay, HugeAttemptIndexOverflowsToInfButClampsFinite) {
  TransportPolicy p;
  // pow(2, 1100) overflows double to inf; the clamp must still win — the
  // engine would otherwise add inf to virtual time and never wake the rank.
  EXPECT_TRUE(std::isinf(p.rto * std::pow(p.backoff, 1100)));
  EXPECT_DOUBLE_EQ(p.retry_delay(1100), p.max_retry_delay);
  EXPECT_DOUBLE_EQ(p.retry_delay(std::numeric_limits<int>::max()),
                   p.max_retry_delay);
  EXPECT_TRUE(std::isfinite(p.retry_delay(std::numeric_limits<int>::max())));
}

TEST(RetryDelay, AggressivePolicyStillClamps) {
  TransportPolicy p;
  p.rto = 0.5;
  p.backoff = 10.0;
  p.max_retry_delay = 2.0;
  EXPECT_DOUBLE_EQ(p.retry_delay(0), 0.5);
  EXPECT_DOUBLE_EQ(p.retry_delay(1), 2.0);  // 5.0 clamped
  EXPECT_DOUBLE_EQ(p.retry_delay(1000), 2.0);
}

TEST(RetryDelay, ZeroBackoffDegeneratesToConstantRto) {
  TransportPolicy p;
  p.backoff = 1.0;
  for (int attempt : {0, 1, 7, 1 << 20}) {
    EXPECT_DOUBLE_EQ(p.retry_delay(attempt), p.rto) << "attempt " << attempt;
  }
}

TEST(RecvTimeout, ZeroMeansWaitForever) {
  // recv_timeout = 0 is the wait-forever contract: a receiver blocked on a
  // slow sender must NOT trip RecvTimeoutError no matter how long (in
  // virtual time) the wait is — here far beyond every transport timescale.
  simnet::Cluster::Config cfg;
  cfg.ranks = 2;
  cfg.fault.enabled = true;
  ASSERT_EQ(cfg.fault.transport.recv_timeout, 0.0);  // the default
  simnet::Cluster cluster(cfg);
  const std::vector<int> payload{42, 43};
  cluster.run([&](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(50.0);  // 50 virtual seconds of silence
      comm.send(1, 3, payload);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 3), payload);  // no timeout, data intact
      EXPECT_GE(comm.now(), 50.0);
    }
  });
  EXPECT_EQ(cluster.fault_stats().messages_lost, 0u);
}

}  // namespace
}  // namespace bladed::fault
