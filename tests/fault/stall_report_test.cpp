/// The stall detector's report text is an interface: operators (and the
/// commcheck tests) grep it for which rank is blocked in which operation.
/// These tests pin that contract for the two canonical stall shapes — a
/// point-to-point receive cycle and a barrier some rank never reaches.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "simnet/comm.hpp"

namespace {

using namespace bladed;

std::string stall_message(int ranks,
                          const std::function<void(simnet::Comm&)>& program) {
  simnet::Cluster cluster({.ranks = ranks});
  try {
    cluster.run(program);
  } catch (const SimulationError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the stall detector to abort the run";
  return {};
}

TEST(StallReportTest, RecvCycleNamesBothRanksAndTheirSourcesAndTags) {
  const std::string msg = stall_message(2, [](simnet::Comm& comm) {
    // Head-to-head: each rank insists on receiving before it would send.
    const int other = 1 - comm.rank();
    (void)comm.recv_bytes(other, /*tag=*/comm.rank() == 0 ? 7 : 9);
    comm.send_value(other, comm.rank() == 0 ? 9 : 7, comm.rank());
  });
  EXPECT_NE(msg.find("no rank can make progress"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0 blocked in recv(src=1, tag=7)"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rank 1 blocked in recv(src=0, tag=9)"),
            std::string::npos)
      << msg;
}

TEST(StallReportTest, MissingBarrierNamesTheStuckRank) {
  const std::string msg = stall_message(3, [](simnet::Comm& comm) {
    // Rank 2 returns without entering the barrier the others wait in.
    if (comm.rank() != 2) comm.barrier();
  });
  EXPECT_NE(msg.find("rank 0 blocked in barrier"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1 blocked in barrier"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("rank 2 blocked"), std::string::npos) << msg;
}

TEST(StallReportTest, WildcardRecvIsReportedAsSrcAny) {
  const std::string msg = stall_message(2, [](simnet::Comm& comm) {
    if (comm.rank() == 0) (void)comm.recv_bytes(simnet::kAnySource, 4);
  });
  EXPECT_NE(msg.find("rank 0 blocked in recv(src=any, tag=4)"),
            std::string::npos)
      << msg;
}

}  // namespace
