/// Cluster-level tests of the fault-tolerant transport: executed drops,
/// corruption, delays, timeouts, failure detection and the stall detector,
/// all at virtual-time precision and bit-reproducible from the fault seed.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "simnet/cluster.hpp"
#include "simnet/comm.hpp"

namespace bladed::simnet {
namespace {

Cluster::Config ft_cfg(int ranks, fault::FaultSchedule schedule = {},
                       std::uint64_t seed = 1) {
  Cluster::Config c;
  c.ranks = ranks;
  c.fault.enabled = true;
  c.fault.schedule = std::move(schedule);
  c.fault.seed = seed;
  return c;
}

void ping(Comm& comm) {
  const std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
  if (comm.rank() == 0) {
    comm.send(1, 7, data);
  } else {
    EXPECT_EQ(comm.recv<int>(0, 7), data);
  }
}

TEST(FtTransport, NoFaultsBehavesLikeTheLegacyEngine) {
  Cluster plain((Cluster::Config{.ranks = 2}));
  plain.run(ping);
  Cluster ft(ft_cfg(2));
  ft.run(ping);
  // Payloads intact, no fault actions, and only the CRC/seq framing bytes
  // distinguish the wire traffic.
  EXPECT_TRUE(ft.fault_trace().empty());
  EXPECT_EQ(ft.fault_stats().drops, 0u);
  EXPECT_GT(ft.total_bytes(), plain.total_bytes());
}

TEST(FtTransport, DropWindowForcesRetransmitAndDeliversIntact) {
  // Every transmission on link 0->1 inside [0, 1ms) is dropped; the backoff
  // retransmission lands outside the window and the payload arrives intact.
  fault::FaultSchedule s;
  s.link_drop(0, 1, 0.0, 1e-3, 1.0);
  Cluster fault_free((Cluster::Config{.ranks = 2}));
  fault_free.run(ping);
  Cluster cluster(ft_cfg(2, s));
  cluster.run(ping);
  EXPECT_GE(cluster.fault_stats().drops, 1u);
  EXPECT_GE(cluster.fault_stats().retransmits, 1u);
  EXPECT_EQ(cluster.fault_stats().messages_lost, 0u);
  EXPECT_GT(cluster.elapsed_seconds(), fault_free.elapsed_seconds());
}

TEST(FtTransport, PersistentDropExhaustsAttemptsAndLosesTheMessage) {
  fault::FaultSchedule s;
  s.link_drop(0, 1, 0.0, 1e9, 1.0);  // the link is dead for the whole run
  Cluster cluster(ft_cfg(2, s));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 3, 99);
    } else {
      // The message can never arrive; the bounded receive reports that
      // instead of hanging.
      EXPECT_FALSE(comm.recv_bytes_for(0, 3, 50e-3).has_value());
    }
  });
  EXPECT_EQ(cluster.fault_stats().messages_lost, 1u);
  EXPECT_EQ(cluster.fault_stats().drops,
            static_cast<std::uint64_t>(
                cluster.fault_stats().retransmits + 1));
  ASSERT_FALSE(cluster.fault_trace().empty());
  EXPECT_EQ(cluster.fault_trace().back().action,
            fault::ExecutedFault::Action::kLost);
}

TEST(FtTransport, CorruptionIsCaughtByCrcAndRedelivered) {
  // Corrupt the first transmission window; the CRC rejects the damaged
  // frame, the nack triggers a resend, and the application still sees the
  // exact payload.
  fault::FaultSchedule s;
  s.corrupt(0, 1, 0.0, 1e-4, 1.0);
  Cluster cluster(ft_cfg(2, s));
  cluster.run(ping);
  EXPECT_GE(cluster.fault_stats().corruptions, 1u);
  EXPECT_GE(cluster.fault_stats().crc_rejects, 1u);
  EXPECT_EQ(cluster.fault_stats().messages_lost, 0u);
}

TEST(FtTransport, TransientDelayWindowSlowsDelivery) {
  constexpr double kExtra = 5e-3;
  fault::FaultSchedule s;
  s.delay(0, 1, 0.0, 1e9, kExtra, 1.0);
  Cluster fault_free((Cluster::Config{.ranks = 2}));
  fault_free.run(ping);
  Cluster cluster(ft_cfg(2, s));
  cluster.run(ping);
  EXPECT_GE(cluster.fault_stats().delays, 1u);
  EXPECT_GE(cluster.fault_stats().delay_seconds, kExtra);
  EXPECT_GE(cluster.elapsed_seconds(),
            fault_free.elapsed_seconds() + kExtra);
}

TEST(FtTransport, HangWindowStallsTheNode) {
  fault::FaultSchedule s;
  s.hang(1, 0.0, 20e-3);
  Cluster cluster(ft_cfg(2, s));
  cluster.run([](Comm& comm) {
    comm.compute(1e-3);
    comm.barrier();
    EXPECT_GE(comm.now(), 20e-3);  // everyone waits for the hung node
  });
  EXPECT_EQ(cluster.fault_stats().hangs, 1u);
  EXPECT_GT(cluster.fault_stats().hang_seconds, 0.0);
}

TEST(FtTransport, RecvTimeoutRaisesTypedErrorNamingTheWait) {
  Cluster::Config cfg = ft_cfg(2);
  cfg.fault.transport.recv_timeout = 2e-3;  // policy default for every recv
  Cluster cluster(cfg);
  bool threw = false;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 1) {
      try {
        (void)comm.recv_bytes(0, 5);  // rank 0 never sends
      } catch (const RecvTimeoutError& e) {
        threw = true;
        EXPECT_EQ(e.rank, 1);
        EXPECT_EQ(e.src, 0);
        EXPECT_EQ(e.tag, 5);
        EXPECT_NEAR(e.waited_seconds, 2e-3, 1e-9);
        EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("src=0"), std::string::npos);
      }
    } else {
      comm.compute(1e-3);
    }
  });
  EXPECT_TRUE(threw);
}

TEST(FtTransport, RecvForReturnsNulloptAndAdvancesTheClock) {
  Cluster cluster(ft_cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 1) {
      const double t0 = comm.now();
      EXPECT_FALSE(comm.recv_for<int>(0, 4, 3e-3).has_value());
      EXPECT_NEAR(comm.now() - t0, 3e-3, 1e-9);
    }
  });
}

TEST(FtTransport, CrashedPeerIsDetectedByTheWaitingRank) {
  fault::FaultSchedule s;
  s.crash(0, 1e-3);
  Cluster cluster(ft_cfg(2, s));
  bool threw = false;
  EXPECT_NO_THROW(cluster.run([&](Comm& comm) {
    if (comm.rank() == 1) {
      try {
        (void)comm.recv_bytes(0, 9);  // the sender dies before sending
      } catch (const PeerFailureError& e) {
        threw = true;
        EXPECT_EQ(e.rank, 1);
        EXPECT_EQ(e.peer, 0);
        EXPECT_NEAR(e.peer_failed_at, 1e-3, 1e-9);
      }
    } else {
      comm.compute(1.0);  // would send at t=1, but dies at t=1ms
      comm.send_value(1, 9, 1);
    }
  }));
  EXPECT_TRUE(threw);
  EXPECT_EQ(cluster.fault_stats().crashes, 1u);
  EXPECT_EQ(cluster.failed_nodes(), std::vector<int>{0});
  EXPECT_TRUE(cluster.node_failed(0));
  EXPECT_FALSE(cluster.node_failed(1));
}

TEST(FtTransport, CrashDuringBarrierRaisesNodeFailure) {
  fault::FaultSchedule s;
  s.crash(2, 5e-4);
  Cluster cluster(ft_cfg(4, s));
  try {
    cluster.run([](Comm& comm) {
      comm.compute(1e-3);
      comm.barrier();  // rank 2 never arrives
    });
    FAIL() << "expected NodeFailureError";
  } catch (const NodeFailureError& e) {
    EXPECT_EQ(e.nodes, std::vector<int>{2});
    EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos);
  }
}

// Satellite regression: when every runnable rank is blocked in op_recv on
// tags nobody will ever send, the stall detector must identify the deadlock
// and say exactly who is blocked on what.
TEST(FtTransport, StallReportNamesBlockedRanksAndTags) {
  Cluster cluster((Cluster::Config{.ranks = 2}));
  try {
    cluster.run([](Comm& comm) {
      // Mismatched tags: rank 0 waits on tag 7, rank 1 on tag 9; the sends
      // use tags nobody is waiting for, so all ranks block forever.
      if (comm.rank() == 0) {
        comm.send_value(1, 1, 0);
        (void)comm.recv_value<int>(1, 7);
      } else {
        comm.send_value(0, 2, 0);
        (void)comm.recv_value<int>(0, 9);
      }
    });
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no rank can make progress"), std::string::npos);
    EXPECT_NE(msg.find("rank 0 blocked in recv(src=1, tag=7)"),
              std::string::npos);
    EXPECT_NE(msg.find("rank 1 blocked in recv(src=0, tag=9)"),
              std::string::npos);
  }
}

TEST(FtTransport, StallReportCoversBarrierBlockers) {
  Cluster cluster((Cluster::Config{.ranks = 2}));
  try {
    cluster.run([](Comm& comm) {
      if (comm.rank() == 0) {
        (void)comm.recv_value<int>(1, 3);  // never sent
      } else {
        comm.barrier();  // can never complete
      }
    });
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("blocked in barrier"),
              std::string::npos);
  }
}

// The acceptance-criterion determinism property at the transport level: the
// same fault seed must produce a bit-identical executed-fault trace, stats
// and timing across runs.
TEST(FtTransport, FaultTraceIsBitIdenticalAcrossRuns) {
  auto experiment = [] {
    fault::FaultSchedule s;
    s.link_drop(-1, -1, 0.0, 5e-3, 0.4)
        .corrupt(-1, -1, 0.0, 5e-3, 0.3)
        .delay(-1, -1, 0.0, 5e-3, 2e-4, 0.5);
    Cluster cluster(ft_cfg(6, s, /*seed=*/1234));
    cluster.run([](Comm& comm) {
      // Irregular traffic: ring exchange plus everyone reports to rank 0.
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send(right, 1, std::vector<int>(50 + comm.rank(), comm.rank()));
      (void)comm.recv<int>(left, 1);
      if (comm.rank() == 0) {
        for (int i = 1; i < comm.size(); ++i) (void)comm.recv_bytes(i, 2);
      } else {
        comm.send_bytes(0, 2, std::vector<std::byte>(64));
      }
    });
    return std::pair(cluster.fault_trace(), cluster.elapsed_seconds());
  };
  const auto [trace1, t1] = experiment();
  const auto [trace2, t2] = experiment();
  EXPECT_GT(trace1.size(), 0u);  // the windows actually fired
  EXPECT_EQ(trace1, trace2);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(FtTransport, DifferentSeedsDiverge) {
  auto run_with_seed = [](std::uint64_t seed) {
    fault::FaultSchedule s;
    s.link_drop(-1, -1, 0.0, 5e-3, 0.5);
    Cluster cluster(ft_cfg(4, s, seed));
    cluster.run([](Comm& comm) {
      for (int round = 0; round < 4; ++round) {
        if (comm.rank() == 0) {
          for (int i = 1; i < comm.size(); ++i)
            (void)comm.recv_bytes(i, round);
        } else {
          comm.send_bytes(0, round, std::vector<std::byte>(128));
        }
      }
    });
    return cluster.fault_trace();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

}  // namespace
}  // namespace bladed::simnet
