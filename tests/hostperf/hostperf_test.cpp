/// bladed::hostperf unit tests: worker-pool primitives, bench-JSON
/// emission, and the parallel engine's determinism contract — simulation
/// results and virtual timings must be bit-identical at every
/// host_threads value.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "hostperf/benchjson.hpp"
#include "hostperf/hostperf.hpp"
#include "npb/parallel.hpp"
#include "simnet/cluster.hpp"
#include "simnet/comm.hpp"
#include "treecode/parallel.hpp"

namespace {

using namespace bladed;

TEST(ResolveHostThreads, PositiveRequestPassesThrough) {
  EXPECT_EQ(hostperf::resolve_host_threads(1), 1);
  EXPECT_EQ(hostperf::resolve_host_threads(7), 7);
}

TEST(ResolveHostThreads, AutoResolvesToAtLeastOne) {
  EXPECT_GE(hostperf::resolve_host_threads(0), 1);
  EXPECT_GE(hostperf::resolve_host_threads(-3), 1);
}

TEST(ResolveHostThreads, EnvironmentOverridesAuto) {
  ::setenv("BLADED_HOST_THREADS", "5", 1);
  EXPECT_EQ(hostperf::resolve_host_threads(0), 5);
  // Explicit requests win over the environment.
  EXPECT_EQ(hostperf::resolve_host_threads(2), 2);
  ::unsetenv("BLADED_HOST_THREADS");
}

TEST(ComputeSlots, BoundsConcurrency) {
  constexpr int kSlots = 3;
  constexpr int kThreads = 10;
  hostperf::ComputeSlots slots(kSlots);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        slots.acquire();
        const int now = inside.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
        slots.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), kSlots);
  EXPECT_GE(peak.load(), 1);
}

TEST(BenchReport, InactiveWithoutPath) {
  hostperf::BenchReport report("", "unit", 1);
  EXPECT_FALSE(report.active());
  report.add({"x", 1.0, 2.0, 3.0, 4.0});
  report.write();  // must be a no-op, not a crash
}

TEST(BenchReport, WritesSchemaDocumentPerReport) {
  const std::string path =
      testing::TempDir() + "/bladed_benchjson_test.jsonl";
  std::remove(path.c_str());
  {
    hostperf::BenchReport report(path, "unit_bench", 4);
    ASSERT_TRUE(report.active());
    report.add({"alpha", 0.25, 12.5, 1e9, 42.0});
    report.add({"beta \"quoted\"", 0.5, 1.0, 2.0, 3.0});
  }  // destructor writes
  {
    hostperf::BenchReport report(path, "second_binary", 1);
    report.add({"gamma", 1.0, 2.0, 3.0, 4.0});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2U);  // one JSONL document per report
  EXPECT_NE(lines[0].find("\"schema\":\"bladed-bench-v1\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"host_threads\":4"), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"virtual_seconds\":12.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"bench\":\"second_binary\""), std::string::npos);
  std::remove(path.c_str());
}

// --- engine determinism across host thread counts --------------------------

TEST(ParallelEngine, StencilChecksumAndTimingInvariantUnderHostThreads) {
  // The stencil kernel's solution checksum is a bitwise digest and
  // elapsed_seconds is virtual time: both must be exactly equal no matter
  // how many host workers execute the compute regions.
  npb::ParallelNpbConfig cfg;
  cfg.ranks = 6;
  cfg.cpu = &arch::tm5600_633();
  cfg.host_threads = 1;
  const npb::ParallelStencilResult serial =
      npb::run_parallel_stencil(cfg, 24, 6);
  for (int host_threads : {2, 8}) {
    cfg.host_threads = host_threads;
    const npb::ParallelStencilResult par =
        npb::run_parallel_stencil(cfg, 24, 6);
    EXPECT_EQ(serial.solution_checksum, par.solution_checksum)
        << "host_threads=" << host_threads;
    EXPECT_EQ(serial.elapsed_seconds, par.elapsed_seconds)
        << "host_threads=" << host_threads;
    EXPECT_EQ(serial.final_residual, par.final_residual)
        << "host_threads=" << host_threads;
    EXPECT_EQ(serial.bytes, par.bytes);
    EXPECT_EQ(serial.messages, par.messages);
  }
}

TEST(ParallelEngine, TreecodeStateBitIdenticalUnderHostThreads) {
  auto run = [](int host_threads) {
    treecode::ParallelConfig cfg;
    cfg.ranks = 4;
    cfg.particles = 500;
    cfg.steps = 2;
    cfg.cpu = &arch::tm5600_633();
    cfg.host_threads = host_threads;
    return treecode::run_parallel_nbody(cfg);
  };
  const treecode::ParallelResult serial = run(1);
  const treecode::ParallelResult par = run(8);
  EXPECT_EQ(serial.elapsed_seconds, par.elapsed_seconds);
  EXPECT_EQ(serial.total_flops, par.total_flops);
  EXPECT_EQ(serial.particles_out.x, par.particles_out.x);
  EXPECT_EQ(serial.particles_out.vx, par.particles_out.vx);
  EXPECT_EQ(serial.particles_out.pot, par.particles_out.pot);
}

TEST(ParallelEngine, AutoHostThreadsResolvesAndRuns) {
  npb::ParallelNpbConfig cfg;
  cfg.ranks = 4;
  cfg.cpu = &arch::tm5600_633();
  cfg.host_threads = 0;  // auto
  const npb::ParallelEpResult r = npb::run_parallel_ep(cfg, 12);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(ParallelEngine, ClusterReportsResolvedHostThreads) {
  simnet::Cluster c({.ranks = 2, .host_threads = 3});
  EXPECT_EQ(c.host_threads(), 3);
  simnet::Cluster serial({.ranks = 2});
  EXPECT_EQ(serial.host_threads(), 1);
}

TEST(ParallelEngine, ExceptionOnOneRankAbortsUnderManyWorkers) {
  simnet::Cluster c({.ranks = 6, .host_threads = 6});
  struct Boom : std::runtime_error {
    Boom() : std::runtime_error("boom") {}
  };
  EXPECT_THROW(c.run([](simnet::Comm& comm) {
    comm.compute(1e-3);
    if (comm.rank() == 3) throw Boom();
    comm.barrier();
  }),
               Boom);
}

}  // namespace
