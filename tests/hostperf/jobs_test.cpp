/// JobPool contract tests: bounded admission, deadline-driven cancellation
/// of queued AND running jobs, drain-on-shutdown, and the end-to-end
/// cancellation path into the simulated cluster (CancelToken::flag ->
/// Cluster::Config::cancel -> CancelledError, promptly freeing the worker).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "hostperf/jobs.hpp"
#include "treecode/parallel.hpp"

namespace bladed::hostperf {
namespace {

using Submit = JobPool::Submit;
using Clock = std::chrono::steady_clock;

/// A job the test can hold open and release.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> l(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return open; });
  }
};

TEST(JobPool, RunsEverythingSubmitted) {
  JobPool pool({.threads = 2, .queue_capacity = 16});
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(pool.try_submit([&] { ran.fetch_add(1); }), Submit::kAccepted);
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(JobPool, RefusesBeyondWorkersPlusQueue) {
  JobPool pool({.threads = 1, .queue_capacity = 1});
  Gate gate;
  std::atomic<int> ran{0};
  auto blocked = [&] {
    gate.wait();
    ran.fetch_add(1);
  };
  ASSERT_EQ(pool.try_submit(blocked), Submit::kAccepted);
  // Wait for the worker to pick it up so the queue slot is free for sure.
  while (pool.active() != 1) std::this_thread::yield();
  ASSERT_EQ(pool.try_submit(blocked), Submit::kAccepted);  // queued
  EXPECT_EQ(pool.try_submit(blocked), Submit::kQueueFull);
  EXPECT_EQ(pool.in_flight(), 2u);
  gate.release();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
  // Capacity is freed again after the drain.
  ASSERT_EQ(pool.try_submit(blocked), Submit::kAccepted);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(JobPool, WatchdogCancelsARunningJobAtItsDeadline) {
  JobPool pool({.threads = 1, .queue_capacity = 1});
  auto token = std::make_shared<CancelToken>();
  const auto t0 = Clock::now();
  ASSERT_EQ(pool.try_submit(
                [token] {
                  while (!token->cancelled()) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  }
                },
                token, /*deadline_seconds=*/0.05),
            Submit::kAccepted);
  pool.wait_idle();
  const double took =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_TRUE(token->cancelled());
  EXPECT_LT(took, 5.0);  // a missing watchdog would hang until the timeout
  EXPECT_GE(took, 0.05);
}

TEST(JobPool, WatchdogCancelsAJobStillInTheQueue) {
  JobPool pool({.threads = 1, .queue_capacity = 1});
  Gate gate;
  ASSERT_EQ(pool.try_submit([&] { gate.wait(); }), Submit::kAccepted);
  while (pool.active() != 1) std::this_thread::yield();
  auto token = std::make_shared<CancelToken>();
  std::atomic<bool> saw_cancelled_at_start{false};
  ASSERT_EQ(pool.try_submit(
                [&, token] {
                  saw_cancelled_at_start.store(token->cancelled());
                },
                token, /*deadline_seconds=*/0.02),
            Submit::kAccepted);
  // The deadline passes while the job waits behind the gated one.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(token->cancelled());
  gate.release();
  pool.wait_idle();
  EXPECT_TRUE(saw_cancelled_at_start.load());
}

TEST(JobPool, ShutdownDrainsQueuedJobsThenRefuses) {
  auto pool = std::make_unique<JobPool>(
      JobPool::Options{.threads = 1, .queue_capacity = 8});
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(pool->try_submit([&] {
                ran.fetch_add(1);
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
              }),
              Submit::kAccepted);
  }
  pool->shutdown();
  EXPECT_EQ(ran.load(), 5);  // graceful: queued work still ran
  EXPECT_EQ(pool->try_submit([&] { ran.fetch_add(1); }),
            Submit::kShuttingDown);
  pool->shutdown();  // idempotent
}

TEST(JobPool, NoDeadlineMeansNoCancellation) {
  JobPool pool({.threads = 1, .queue_capacity = 1});
  auto token = std::make_shared<CancelToken>();
  ASSERT_EQ(pool.try_submit(
                [] {
                  std::this_thread::sleep_for(std::chrono::milliseconds(30));
                },
                token, /*deadline_seconds=*/0.0),
            Submit::kAccepted);
  pool.wait_idle();
  EXPECT_FALSE(token->cancelled());
}

TEST(JobPool, CancelTokenUnwindsARealSimulationPromptly) {
  // The acceptance check for "no zombie compute": a cancelled simulation
  // must abandon the worker slot in wall-clock terms, not finish its hour.
  JobPool pool({.threads = 1, .queue_capacity = 1});
  auto token = std::make_shared<CancelToken>();
  std::atomic<bool> cancelled_error{false};
  std::atomic<bool> finished{false};
  ASSERT_EQ(pool.try_submit(
                [&, token] {
                  treecode::ParallelConfig cfg;
                  cfg.ranks = 8;
                  cfg.particles = 20000;
                  cfg.steps = 50;  // many seconds of compute if uncancelled
                  cfg.cpu = &arch::tm5600_633();
                  cfg.cancel = token->flag();
                  try {
                    (void)treecode::run_parallel_nbody(cfg);
                    finished.store(true);
                  } catch (const CancelledError&) {
                    cancelled_error.store(true);
                  }
                },
                token, /*deadline_seconds=*/0.2),
            Submit::kAccepted);
  const auto t0 = Clock::now();
  pool.wait_idle();
  const double took =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_TRUE(cancelled_error.load());
  EXPECT_FALSE(finished.load());
  EXPECT_LT(took, 30.0);  // generous CI margin; uncancelled would take far longer
  EXPECT_EQ(pool.in_flight(), 0u);  // the slot is free again
}

}  // namespace
}  // namespace bladed::hostperf
