/// Differential fuzzing for the tier-3 JIT: 1000 seeded random programs
/// (the prove fuzzer's generator: evolving base registers, mixed safe and
/// unsafe memory traffic, optional forward branches) run through the
/// two-tier engine and the JIT-tier engine with aggressive promotion
/// thresholds. Architectural state, engine cycle counts and the full
/// morphing accounting must be bit-identical — licensed regions run native
/// with bounds checks elided, everything else falls back, and a trapping
/// program must trap identically on both engines. A pure-interpreter pass
/// cross-checks the architectural result a third way.

#include <gtest/gtest.h>

#include <cstring>

#include "cms/engine.hpp"
#include "common/rng.hpp"
#include "jit/jit.hpp"

namespace bladed::jit {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

constexpr std::size_t kMemDoubles = 256;

std::uint64_t pick(Rng& rng, std::uint64_t n) { return rng.next_u64() % n; }

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

int base_reg(Rng& rng) { return 3 + static_cast<int>(pick(rng, 4)); }
int fp_reg(Rng& rng) { return static_cast<int>(pick(rng, 8)); }

Instr random_op(Rng& rng) {
  switch (pick(rng, 12)) {
    case 0:
    case 1:
      return make(Op::kFload, fp_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 24)) - 4);
    case 2:
    case 3:
      return make(Op::kFstore, fp_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 24)) - 4);
    case 4:
      return make(Op::kFload, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles)));
    case 5:
      return make(Op::kAddi, base_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 9)) - 2);
    case 6:
      return make(Op::kAddi, base_reg(rng), 1, 0,
                  static_cast<std::int64_t>(pick(rng, 32)));
    case 7:
      return make(Op::kAddi, base_reg(rng), base_reg(rng), 0, 0);
    case 8:
      return make(Op::kAdd, base_reg(rng), 1, base_reg(rng));
    case 9: {
      Instr in = make(Op::kFmovi, fp_reg(rng));
      in.imm_f = rng.uniform(-2.0, 2.0);
      return in;
    }
    case 10:
      return make(Op::kFadd, fp_reg(rng), fp_reg(rng), fp_reg(rng));
    default:
      return make(Op::kFmul, fp_reg(rng), fp_reg(rng), fp_reg(rng));
  }
}

/// Counted outer loop (r1/r2 reserved) with enough rounds that hot blocks
/// cross both the translation and the JIT thresholds.
Program random_program(Rng& rng) {
  Program p;
  const std::int64_t rounds = 24 + static_cast<std::int64_t>(pick(rng, 40));
  p.push_back(make(Op::kMovi, 1, 0, 0, 0));
  p.push_back(make(Op::kMovi, 2, 0, 0, rounds));
  for (int r = 3; r <= 6; ++r) {
    p.push_back(make(Op::kMovi, r, 0, 0,
                     static_cast<std::int64_t>(pick(rng, 32))));
  }
  const std::int64_t loop = static_cast<std::int64_t>(p.size());

  const std::size_t chunks = 1 + pick(rng, 3);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (pick(rng, 2) == 0) {
      const std::size_t skip = 1 + pick(rng, 3);
      const Op op = pick(rng, 2) == 0 ? Op::kBlt : Op::kBne;
      p.push_back(make(op, base_reg(rng), base_reg(rng), 0,
                       static_cast<std::int64_t>(p.size() + 1 + skip)));
      for (std::size_t i = 0; i < skip; ++i) p.push_back(random_op(rng));
    }
    const std::size_t len = 2 + pick(rng, 5);
    for (std::size_t i = 0; i < len; ++i) p.push_back(random_op(rng));
  }

  p.push_back(make(Op::kAddi, 1, 1, 0, 1));
  p.push_back(make(Op::kBlt, 1, 2, 0, loop));
  p.push_back(make(Op::kHalt));
  return p;
}

struct Outcome {
  bool trapped = false;
  cms::MorphingStats stats;
  cms::MachineState state{kMemDoubles};
};

Outcome run_engine(const cms::MorphingConfig& cfg, const Program& prog,
                   const cms::MachineState& initial) {
  Outcome out;
  out.state = initial;
  cms::MorphingEngine engine{cfg};
  try {
    // Two runs: cold promotion on the first, warm tiers on the second. The
    // second run's outcome is compared (the first must already agree, but
    // the warm run is where a stale compiled region would show).
    out.stats = engine.run(prog, out.state);
    cms::MachineState warm = initial;
    out.stats = engine.run(prog, warm);
    out.state = warm;
  } catch (const PreconditionError&) {
    out.trapped = true;  // bounds trap in exec_instr
  } catch (const SimulationError&) {
    out.trapped = true;  // e.g. a refused translation gate
  }
  return out;
}

class JitFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JitFuzz, JitTierIsBitIdenticalToTierTwo) {
  Rng rng(0x71a3 + static_cast<std::uint64_t>(GetParam()) * 9277);
  for (int trial = 0; trial < 10; ++trial) {
    const Program prog = random_program(rng);
    cms::MachineState initial(kMemDoubles);
    for (double& cell : initial.mem) cell = rng.uniform(-1.0, 1.0);

    cms::MorphingConfig t2 = cms::cms_43x();
    t2.hot_threshold = 2;
    cms::MorphingConfig t3 = t2;
    attach_jit(t3);
    t3.optimizer = nullptr;  // compare raw tier behavior
    t3.prover = nullptr;
    t3.jit_threshold = 2;    // promote aggressively

    const Outcome o2 = run_engine(t2, prog, initial);
    const Outcome o3 = run_engine(t3, prog, initial);
    ASSERT_EQ(o2.trapped, o3.trapped)
        << "seed " << GetParam() << " trial " << trial;
    if (o2.trapped) continue;

    // Bit-identical architectural state...
    EXPECT_EQ(std::memcmp(o2.state.r, o3.state.r, sizeof(o2.state.r)), 0)
        << "seed " << GetParam() << " trial " << trial;
    EXPECT_EQ(std::memcmp(o2.state.f, o3.state.f, sizeof(o2.state.f)), 0)
        << "seed " << GetParam() << " trial " << trial;
    EXPECT_EQ(std::memcmp(o2.state.mem.data(), o3.state.mem.data(),
                          kMemDoubles * sizeof(double)),
              0)
        << "seed " << GetParam() << " trial " << trial;
    // ...and bit-identical engine accounting.
    EXPECT_EQ(o2.stats.total_cycles, o3.stats.total_cycles);
    EXPECT_EQ(o2.stats.interpret_cycles, o3.stats.interpret_cycles);
    EXPECT_EQ(o2.stats.interpreted_instructions,
              o3.stats.interpreted_instructions);
    EXPECT_EQ(o2.stats.native_cycles, o3.stats.native_cycles);
    EXPECT_EQ(o2.stats.native_block_executions,
              o3.stats.native_block_executions);
    EXPECT_EQ(o2.stats.translations, o3.stats.translations);
    EXPECT_EQ(o2.stats.translate_cycles, o3.stats.translate_cycles);
    EXPECT_EQ(o2.stats.cache_hits, o3.stats.cache_hits);
    EXPECT_EQ(o2.stats.cache_misses, o3.stats.cache_misses);
    EXPECT_EQ(o2.stats.cache_evictions, o3.stats.cache_evictions);
    EXPECT_EQ(o2.stats.retranslations, o3.stats.retranslations);
    EXPECT_EQ(o3.stats.jit_rollbacks, 0u)
        << "seed " << GetParam() << " trial " << trial
        << ": a licensed region failed its own differential gate";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace bladed::jit
