/// Golden tests for the tier-3 JIT (DESIGN.md §14): promotion by execution
/// count, bit-identical accounting against the two-tier engine, license
/// refusal and fallback, rollback on a miscompiled region, invalidation on
/// cache eviction, the budget cap, the translation-cache replay primitive,
/// the dry-run lowering report and the BLADED_JIT toggle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cms/engine.hpp"
#include "cms/programs.hpp"
#include "jit/compile.hpp"
#include "jit/jit.hpp"

namespace bladed::jit {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

bool same_state(const cms::MachineState& a, const cms::MachineState& b) {
  return a.mem.size() == b.mem.size() &&
         std::memcmp(a.r, b.r, sizeof(a.r)) == 0 &&
         std::memcmp(a.f, b.f, sizeof(a.f)) == 0 &&
         std::memcmp(a.mem.data(), b.mem.data(),
                     a.mem.size() * sizeof(double)) == 0;
}

/// Everything except the jit_* counters must match the two-tier engine
/// bit for bit — the accounting invariant of DESIGN.md §14.
void expect_same_accounting(const cms::MorphingStats& t2,
                            const cms::MorphingStats& t3) {
  EXPECT_EQ(t2.total_cycles, t3.total_cycles);
  EXPECT_EQ(t2.interpreted_instructions, t3.interpreted_instructions);
  EXPECT_EQ(t2.interpret_cycles, t3.interpret_cycles);
  EXPECT_EQ(t2.native_block_executions, t3.native_block_executions);
  EXPECT_EQ(t2.native_cycles, t3.native_cycles);
  EXPECT_EQ(t2.translations, t3.translations);
  EXPECT_EQ(t2.translate_cycles, t3.translate_cycles);
  EXPECT_EQ(t2.retranslations, t3.retranslations);
  EXPECT_EQ(t2.cache_hits, t3.cache_hits);
  EXPECT_EQ(t2.cache_misses, t3.cache_misses);
  EXPECT_EQ(t2.cache_evictions, t3.cache_evictions);
}

cms::MorphingConfig tier3_config() {
  cms::MorphingConfig cfg = cms::cms_43x();
  attach_jit(cfg);
  // Pure tier comparison: no optimizer rewrite, no tier-2 license gate (the
  // JIT performs its own licensing; the prover hook gates *translations*,
  // which is orthogonal and exercised by the prove tests).
  cfg.optimizer = nullptr;
  cfg.prover = nullptr;
  return cfg;
}

TEST(JitTier, PromotionIsBitIdenticalToTierTwo) {
  const Program prog = cms::naive_daxpy_program(64);
  for (int run = 0; run < 3; ++run) {
    // Fresh engines each round, multiple runs per engine: cold promotion on
    // the first run, warm tier-3 afterwards.
    cms::MorphingEngine t2{cms::cms_43x()};
    cms::MorphingEngine t3{tier3_config()};
    for (int i = 0; i <= run; ++i) {
      cms::MachineState s2(4096);
      cms::MachineState s3(4096);
      const cms::MorphingStats r2 = t2.run(prog, s2);
      const cms::MorphingStats r3 = t3.run(prog, s3);
      EXPECT_TRUE(same_state(s2, s3)) << "run " << i;
      expect_same_accounting(r2, r3);
      EXPECT_EQ(r3.jit_rollbacks, 0u);
      EXPECT_EQ(r3.jit_refusals, 0u);
    }
  }
}

TEST(JitTier, PromotionFollowsExecutionCount) {
  const Program prog = cms::naive_daxpy_program(256);
  cms::MorphingConfig cfg = tier3_config();
  cms::MorphingEngine engine{cfg};
  cms::MachineState st(4096);
  const cms::MorphingStats first = engine.run(prog, st);
  // The loop runs 256 iterations: tier-2 promotes at hot_threshold, tier-3
  // at jit_threshold native executions, all within the first run.
  EXPECT_EQ(first.jit_regions, 1u);
  EXPECT_GT(first.jit_block_executions, 0u);
  EXPECT_LT(first.jit_block_executions, first.native_block_executions);
  // Warm run: everything hot runs tier-3, no recompilation.
  cms::MachineState st2(4096);
  const cms::MorphingStats warm = engine.run(prog, st2);
  EXPECT_EQ(warm.jit_regions, 0u);
  EXPECT_GT(warm.jit_block_executions, 0u);
  EXPECT_TRUE(same_state(st, st2));
}

TEST(JitTier, UnlicensedProgramFallsBackToTierTwo) {
  // A bne-latched loop: safe at run time (r1 walks 0..63 then exits at 64)
  // but the prover cannot bound r1 — the counted-loop argument needs a blt
  // latch and interval refinement on `!=` proves nothing. No license forms,
  // the JIT refuses, and the engine keeps the program correct on tier-2.
  Program prog;
  prog.push_back(make(Op::kMovi, 1, 0, 0, 0));     // i = 0
  prog.push_back(make(Op::kMovi, 2, 0, 0, 64));    // n = 64
  prog.push_back(make(Op::kFload, 0, 1, 0, 0));    // f0 = mem[i]
  prog.push_back(make(Op::kFadd, 0, 0, 0));        // f0 += f0
  prog.push_back(make(Op::kFstore, 0, 1, 0, 0));   // mem[i] = f0
  prog.push_back(make(Op::kAddi, 1, 1, 0, 1));     // ++i
  prog.push_back(make(Op::kBne, 1, 2, 0, 2));      // loop while i != n
  prog.push_back(make(Op::kHalt));
  const ProgramFacts facts = analyze_program(prog, 4096);
  ASSERT_TRUE(facts.valid);
  ASSERT_EQ(facts.proven_pc[2], 0u) << "premise: access must be unproven";

  cms::MorphingEngine t2{cms::cms_43x()};
  cms::MorphingEngine t3{tier3_config()};
  cms::MachineState s2(4096);
  cms::MachineState s3(4096);
  const cms::MorphingStats r2 = t2.run(prog, s2);
  const cms::MorphingStats r3 = t3.run(prog, s3);
  EXPECT_TRUE(same_state(s2, s3));
  expect_same_accounting(r2, r3);
  EXPECT_EQ(r3.jit_block_executions, 0u);
  EXPECT_EQ(r3.jit_regions, 0u);
  EXPECT_GE(r3.jit_refusals, 1u);
  // The refusal is permanent: later runs do not retry the compiler.
  cms::MachineState s4(4096);
  const cms::MorphingStats again = t3.run(prog, s4);
  EXPECT_EQ(again.jit_refusals, 0u);
  EXPECT_EQ(again.jit_block_executions, 0u);
}

/// A region that deliberately corrupts one fp register: the differential
/// gate must catch it on first entry, adopt the architectural result and
/// demote the entry permanently.
class CorruptRegion final : public cms::CompiledRegion {
 public:
  CorruptRegion(std::unique_ptr<cms::CompiledRegion> inner)
      : inner_(std::move(inner)) {}

  RunResult run(cms::MachineState& st, std::uint64_t max_blocks) override {
    RunResult res = inner_->run(st, max_blocks);
    st.f[0] += 1.0;  // miscompile
    return res;
  }
  RunResult run_reference(const cms::Program& prog, cms::MachineState& st,
                          std::uint64_t max_blocks) override {
    return inner_->run_reference(prog, st, max_blocks);
  }
  [[nodiscard]] const std::vector<std::size_t>& member_blocks()
      const override {
    return inner_->member_blocks();
  }

 private:
  std::unique_ptr<cms::CompiledRegion> inner_;
};

TEST(JitTier, DifferentialGateRollsBackMiscompiledRegion) {
  const Program prog = cms::naive_daxpy_program(64);
  cms::MorphingConfig cfg = tier3_config();
  const cms::RegionCompiler real = make_region_compiler();
  cfg.jit_compiler = [&real](const Program& p, std::size_t entry,
                             const cms::TranslationCache& cache,
                             std::size_t mem, bool* retry, std::string* why)
      -> std::unique_ptr<cms::CompiledRegion> {
    auto region = real(p, entry, cache, mem, retry, why);
    if (!region) return nullptr;
    return std::make_unique<CorruptRegion>(std::move(region));
  };
  cms::MorphingEngine t3{cfg};
  cms::MorphingEngine t2{cms::cms_43x()};
  cms::MachineState s3(4096);
  cms::MachineState s2(4096);
  const cms::MorphingStats r3 = t3.run(prog, s3);
  const cms::MorphingStats r2 = t2.run(prog, s2);
  // The corruption never reaches architectural state.
  EXPECT_TRUE(same_state(s2, s3));
  expect_same_accounting(r2, r3);
  EXPECT_EQ(r3.jit_rollbacks, 1u);
  // Demotion is permanent: the next run neither compiles nor re-enters.
  cms::MachineState s4(4096);
  const cms::MorphingStats again = t3.run(prog, s4);
  EXPECT_TRUE(same_state(s2, s4));
  EXPECT_EQ(again.jit_rollbacks, 0u);
  EXPECT_EQ(again.jit_block_executions, 0u);
  EXPECT_EQ(again.jit_regions, 0u);
}

/// Two counted inner loops under one outer loop, accessing disjoint
/// windows. With a cache too small for both bodies, every outer round
/// evicts one loop's translation while the other runs — a compiled region
/// whose member block is gone must invalidate, never run stale code.
Program two_loop_program(std::int64_t rounds, std::int64_t n) {
  Program p;
  p.push_back(make(Op::kMovi, 1, 0, 0, 0));       // 0: round = 0
  p.push_back(make(Op::kMovi, 2, 0, 0, rounds));  // 1
  p.push_back(make(Op::kMovi, 5, 0, 0, n));       // 2: nA
  p.push_back(make(Op::kMovi, 6, 0, 0, n));       // 3: nB
  p.push_back(make(Op::kMovi, 3, 0, 0, 0));       // 4: outer: iA = 0
  p.push_back(make(Op::kFload, 0, 3, 0, 0));      // 5: loop A body
  p.push_back(make(Op::kFadd, 0, 0, 0));          // 6
  p.push_back(make(Op::kFstore, 0, 3, 0, 0));     // 7
  p.push_back(make(Op::kAddi, 3, 3, 0, 1));       // 8
  p.push_back(make(Op::kBlt, 3, 5, 0, 5));        // 9
  p.push_back(make(Op::kMovi, 4, 0, 0, 0));       // 10: iB = 0
  p.push_back(make(Op::kFload, 1, 4, 0, 128));    // 11: loop B body
  p.push_back(make(Op::kFmul, 1, 1, 1));          // 12
  p.push_back(make(Op::kFstore, 1, 4, 0, 128));   // 13
  p.push_back(make(Op::kAddi, 4, 4, 0, 1));       // 14
  p.push_back(make(Op::kBlt, 4, 6, 0, 11));       // 15
  p.push_back(make(Op::kAddi, 1, 1, 0, 1));       // 16
  p.push_back(make(Op::kBlt, 1, 2, 0, 4));        // 17
  p.push_back(make(Op::kHalt));                   // 18
  return p;
}

TEST(JitTier, EvictionInvalidatesCompiledRegions) {
  const Program prog = two_loop_program(6, 48);
  cms::MorphingConfig cfg3 = tier3_config();
  cfg3.cache_molecules = 7;  // one 5-molecule loop body at most, never two
  cms::MorphingEngine t3{cfg3};
  cms::MorphingConfig cfg2 = cms::cms_43x();
  cfg2.cache_molecules = 7;
  cms::MorphingEngine t2{cfg2};
  cms::MachineState s3(4096);
  cms::MachineState s2(4096);
  const cms::MorphingStats r3 = t3.run(prog, s3);
  const cms::MorphingStats r2 = t2.run(prog, s2);
  EXPECT_TRUE(same_state(s2, s3));
  // The accounting equality proves every invalidation fell back to exactly
  // the tier-2 behavior (miss, retranslate, re-promote).
  expect_same_accounting(r2, r3);
  EXPECT_GT(r3.jit_invalidations, 0u);
  EXPECT_GT(r3.jit_block_executions, 0u);
}

TEST(JitTier, BlockBudgetStopsExactlyLikeTierTwo) {
  const Program prog = cms::naive_daxpy_program(256);
  for (const std::uint64_t budget : {1u, 17u, 40u, 101u, 257u}) {
    cms::MorphingEngine t2{cms::cms_43x()};
    cms::MorphingEngine t3{tier3_config()};
    // Warm both engines fully first so the budgeted run enters tier-3.
    cms::MachineState w2(4096);
    cms::MachineState w3(4096);
    (void)t2.run(prog, w2);
    (void)t3.run(prog, w3);
    cms::MachineState s2(4096);
    cms::MachineState s3(4096);
    const cms::MorphingStats r2 = t2.run(prog, s2, budget);
    const cms::MorphingStats r3 = t3.run(prog, s3, budget);
    EXPECT_TRUE(same_state(s2, s3)) << "budget " << budget;
    expect_same_accounting(r2, r3);
  }
}

TEST(JitTier, BitIdenticalAcrossHostThreadCounts) {
  // Engines are per-thread objects; the acceptance criterion is that any
  // host_threads fan-out (1, 2, 8) computes the same final state and the
  // same accounting. Run one engine per thread and compare all results.
  const Program prog = cms::naive_stencil_program(128);
  for (const int threads : {1, 2, 8}) {
    std::vector<cms::MachineState> states(threads, cms::MachineState(4096));
    std::vector<cms::MorphingStats> stats(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int i = 0; i < threads; ++i) {
      pool.emplace_back([&, i] {
        cms::MorphingEngine engine{tier3_config()};
        (void)engine.run(prog, states[i]);  // cold
        states[i] = cms::MachineState(4096);
        stats[i] = engine.run(prog, states[i]);  // warm, tier-3
      });
    }
    for (std::thread& t : pool) t.join();
    for (int i = 1; i < threads; ++i) {
      EXPECT_TRUE(same_state(states[0], states[i])) << "thread " << i;
      expect_same_accounting(stats[0], stats[i]);
      EXPECT_EQ(stats[0].jit_block_executions, stats[i].jit_block_executions);
    }
  }
}

TEST(JitTier, ProgramChangeFlushesCompiledRegions) {
  cms::MorphingEngine engine{tier3_config()};
  const Program a = cms::naive_daxpy_program(64);
  const Program b = cms::naive_stencil_program(64);
  cms::MachineState sa(4096);
  EXPECT_GT(engine.run(a, sa).jit_regions, 0u);
  // Switching programs mid-engine must recompile from fresh profile counts
  // and still match the two-tier engine (which shares the same cache-warm
  // history) architecturally.
  cms::MachineState sb(4096);
  const cms::MorphingStats rb = engine.run(b, sb);
  EXPECT_GT(rb.jit_regions, 0u);
  cms::MorphingEngine fresh{cms::cms_43x()};
  cms::MachineState sa2(4096);
  (void)fresh.run(a, sa2);
  cms::MachineState sb2(4096);
  (void)fresh.run(b, sb2);
  EXPECT_TRUE(same_state(sb, sb2));
}

TEST(TranslationCacheReplay, PeekDoesNotPerturbAccounting) {
  cms::TranslationCache cache(1 << 12);
  cms::Translator translator;
  const Program prog = cms::naive_daxpy_program(8);
  cache.insert(translator.translate(prog, 0));
  const std::uint64_t hits = cache.hits();
  const std::uint64_t misses = cache.misses();
  EXPECT_NE(cache.peek(0), nullptr);
  EXPECT_EQ(cache.peek(9999), nullptr);
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
}

TEST(TranslationCacheReplay, ReplayMatchesPerLookupLruState) {
  // Two caches with identical contents; one takes per-block lookups, the
  // other a single replay_hits with the last-execution touch order. The
  // observable LRU state (who gets evicted next) must be identical.
  const Program prog = cms::naive_stencil_program(16);
  cms::Translator translator;
  const std::size_t pcs[] = {0, 7, 12};  // distinct block leaders
  auto fill = [&](cms::TranslationCache& cache) {
    for (const std::size_t pc : pcs) {
      ASSERT_TRUE(cache.insert(translator.translate(prog, pc)));
    }
  };
  cms::TranslationCache by_lookup(1 << 12);
  cms::TranslationCache by_replay(1 << 12);
  fill(by_lookup);
  fill(by_replay);
  // Execution sequence: 0, 7, 0, 12, 7  -> last executions ascending: 0,12,7.
  for (const std::size_t pc : {0u, 7u, 0u, 12u, 7u}) {
    ASSERT_NE(by_lookup.lookup(pc), nullptr);
  }
  by_replay.replay_hits({0, 12, 7}, 5);
  EXPECT_EQ(by_lookup.hits(), by_replay.hits());
  // Evict twice by filling with large translations; the LRU victims must
  // come out in the same order from both caches.
  auto victims = [&](cms::TranslationCache& cache) {
    std::vector<std::size_t> gone;
    for (int i = 0; i < 2; ++i) {
      cms::Translation big = translator.translate(prog, pcs[0]);
      big.entry_pc = 1000 + static_cast<std::size_t>(i);
      // Pad to force one eviction per insert.
      while (big.molecules.size() * 3 < cache.capacity_molecules()) {
        big.molecules.push_back(big.molecules.back());
      }
      (void)cache.insert(std::move(big));
      for (const std::size_t pc : pcs) {
        if (cache.peek(pc) == nullptr &&
            std::find(gone.begin(), gone.end(), pc) == gone.end()) {
          gone.push_back(pc);
        }
      }
    }
    return gone;
  };
  cms::TranslationCache lru_a(64);
  cms::TranslationCache lru_b(64);
  fill(lru_a);
  fill(lru_b);
  for (const std::size_t pc : {0u, 7u, 0u, 12u, 7u}) {
    ASSERT_NE(lru_a.lookup(pc), nullptr);
  }
  lru_b.replay_hits({0, 12, 7}, 5);
  EXPECT_EQ(victims(lru_a), victims(lru_b));
}

TEST(JitDryRun, ReportsLicensedRegionPlans) {
  const LowerReport report = lower_dry_run(cms::naive_daxpy_program(256), 4096);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_GE(report.compiled_regions, 1u);
  EXPECT_GT(report.total_raw_mem_ops, 0u);
  const std::string text = to_string(report);
  EXPECT_NE(text.find("raw memory op"), std::string::npos);
}

TEST(JitDryRun, RefusesInvalidProgram) {
  Program bad;
  bad.push_back(make(Op::kFload, 0, 3, 0, 1 << 20));  // way out of bounds
  bad.push_back(make(Op::kHalt));
  const LowerReport report = lower_dry_run(bad, 64);
  // check_program flags the constant out-of-bounds access; nothing lowers.
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.error.empty());
}

TEST(JitEnv, BladedJitToggleParses) {
  ASSERT_EQ(unsetenv("BLADED_JIT"), 0);
  EXPECT_TRUE(env_enabled(true));
  EXPECT_FALSE(env_enabled(false));
  ASSERT_EQ(setenv("BLADED_JIT", "0", 1), 0);
  EXPECT_FALSE(env_enabled(true));
  ASSERT_EQ(setenv("BLADED_JIT", "off", 1), 0);
  EXPECT_FALSE(env_enabled(true));
  ASSERT_EQ(setenv("BLADED_JIT", "1", 1), 0);
  EXPECT_TRUE(env_enabled(false));
  ASSERT_EQ(unsetenv("BLADED_JIT"), 0);
}

}  // namespace
}  // namespace bladed::jit
