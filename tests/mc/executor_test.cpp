// Unit tests for the bladed::mc executor + explorer core: the TSO store
// buffer (SB litmus), the vector-clock race detector, condvar token
// semantics, deadlock detection, DPOR reduction sanity, and counterexample
// replay. These pin the checker's semantics independently of the shipped
// protocol models in src/mc/protocols.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/shim.hpp"

namespace mc = bladed::mc;

namespace {

mc::ExploreResult explore(mc::Model m) {
  mc::Explorer ex;
  return ex.explore(m);
}

/// Store-buffering litmus: T0 stores x then loads y, T1 stores y then loads
/// x. The joint outcome r0 == r1 == 0 requires both stores to still be
/// buffered when the loads run — reachable exactly when the stores are
/// weaker than seq_cst. The tally mutex serializes only the final check;
/// the racy half (store + cross load) runs before it.
mc::Model sb_litmus(std::memory_order store_order) {
  struct State {
    mc::checked_atomic<int> x{0};
    mc::checked_atomic<int> y{0};
    mc::checked_mutex mu;
    mc::var<int> done{0};
    mc::var<int> r0{-1};
    mc::var<int> r1{-1};
  };
  mc::Model m;
  m.name = "sb-litmus";
  m.actor_names = {"t0", "t1"};
  m.make = [store_order](mc::Executor&) {
    auto st = std::make_shared<State>();
    const auto finish = [st](int who, int r) {
      std::unique_lock<mc::checked_mutex> lk(st->mu);
      (who == 0 ? st->r0 : st->r1).write(r);
      st->done.write(st->done.read() + 1);
      if (st->done.read() == 2) {
        mc::model_check(!(st->r0.read() == 0 && st->r1.read() == 0),
                        "both loads read 0: store-load reordering observed");
      }
    };
    return std::vector<mc::Executor::ThreadFn>{
        [st, store_order, finish] {
          st->x.store(1, store_order);
          finish(0, st->y.load(std::memory_order_seq_cst));
        },
        [st, store_order, finish] {
          st->y.store(1, store_order);
          finish(1, st->x.load(std::memory_order_seq_cst));
        },
    };
  };
  return m;
}

TEST(McExecutor, SbLitmusRelaxedStoresReachBothZero) {
  const mc::ExploreResult r = explore(sb_litmus(std::memory_order_relaxed));
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "assertion");
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(McExecutor, SbLitmusSeqCstStoresVerifyClean) {
  const mc::ExploreResult r = explore(sb_litmus(std::memory_order_seq_cst));
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.stats.complete);
  EXPECT_GT(r.stats.executions, 1);
}

TEST(McExecutor, OwnStoreBufferForwardsToLoads) {
  mc::Model m;
  m.name = "forwarding";
  m.actor_names = {"t0"};
  m.make = [](mc::Executor&) {
    auto x = std::make_shared<mc::checked_atomic<int>>(0);
    return std::vector<mc::Executor::ThreadFn>{[x] {
      x->store(7, std::memory_order_relaxed);
      // The store is still parked in this thread's buffer, but program
      // order must observe it (TSO forwards from the own buffer).
      mc::model_check(x->load(std::memory_order_seq_cst) == 7,
                      "own buffered store not forwarded");
    }};
  };
  const mc::ExploreResult r = explore(m);
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.stats.complete);
}

mc::Model var_writers(bool locked) {
  struct State {
    mc::checked_mutex mu;
    mc::var<int> v{0};
  };
  mc::Model m;
  m.name = locked ? "locked-writers" : "racy-writers";
  m.actor_names = {"t0", "t1"};
  m.make = [locked](mc::Executor&) {
    auto st = std::make_shared<State>();
    const auto writer = [st, locked] {
      if (locked) {
        std::unique_lock<mc::checked_mutex> lk(st->mu);
        st->v.write(st->v.read() + 1);
      } else {
        st->v.write(st->v.read() + 1);
      }
    };
    return std::vector<mc::Executor::ThreadFn>{writer, writer};
  };
  return m;
}

TEST(McExecutor, UnlockedVarWritesAreAFlaggedDataRace) {
  const mc::ExploreResult r = explore(var_writers(false));
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "data-race");
}

TEST(McExecutor, MutexProtectedVarWritesAreRaceFree) {
  const mc::ExploreResult r = explore(var_writers(true));
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.stats.complete);
}

TEST(McExecutor, AbbaLockOrderDeadlockIsFound) {
  struct State {
    mc::checked_mutex a;
    mc::checked_mutex b;
  };
  mc::Model m;
  m.name = "abba";
  m.actor_names = {"t0", "t1"};
  m.make = [](mc::Executor&) {
    auto st = std::make_shared<State>();
    return std::vector<mc::Executor::ThreadFn>{
        [st] {
          std::unique_lock<mc::checked_mutex> la(st->a);
          std::unique_lock<mc::checked_mutex> lb(st->b);
        },
        [st] {
          std::unique_lock<mc::checked_mutex> lb(st->b);
          std::unique_lock<mc::checked_mutex> la(st->a);
        },
    };
  };
  const mc::ExploreResult r = explore(m);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "deadlock");
}

TEST(McExecutor, RecheckGapLosesTheWakeup) {
  struct State {
    mc::checked_mutex mu;
    mc::checked_condvar cv;
    mc::var<int> flag{0};
  };
  mc::Model m;
  m.name = "recheck-gap";
  m.actor_names = {"waiter", "signaler"};
  m.make = [](mc::Executor&) {
    auto st = std::make_shared<State>();
    return std::vector<mc::Executor::ThreadFn>{
        [st] {
          std::unique_lock<mc::checked_mutex> lk(st->mu);
          if (st->flag.read() == 0) {
            // BUG under test: the scan and the park are not atomic.
            lk.unlock();
            lk.lock();
            st->cv.wait(lk);
          }
        },
        [st] {
          std::unique_lock<mc::checked_mutex> lk(st->mu);
          st->flag.write(1);
          st->cv.notify_one();
        },
    };
  };
  const mc::ExploreResult r = explore(m);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "lost-wakeup");
}

TEST(McExecutor, DporExploresOneInterleavingOfIndependentWrites) {
  mc::Model m;
  m.name = "independent";
  m.actor_names = {"t0", "t1"};
  m.make = [](mc::Executor&) {
    auto x = std::make_shared<mc::checked_atomic<int>>(0);
    auto y = std::make_shared<mc::checked_atomic<int>>(0);
    return std::vector<mc::Executor::ThreadFn>{
        [x] { x->store(1, std::memory_order_seq_cst); },
        [y] { y->store(1, std::memory_order_seq_cst); },
    };
  };
  const mc::ExploreResult r = explore(m);
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.stats.complete);
  // The two stores commute; DPOR must not enumerate both orders.
  EXPECT_EQ(r.stats.executions, 1);
}

TEST(McExecutor, DporExploresBothOrdersOfConflictingWrites) {
  mc::Model m;
  m.name = "conflicting";
  m.actor_names = {"t0", "t1"};
  m.make = [](mc::Executor&) {
    auto x = std::make_shared<mc::checked_atomic<int>>(0);
    const auto w = [x](int v) {
      return [x, v] { x->store(v, std::memory_order_seq_cst); };
    };
    return std::vector<mc::Executor::ThreadFn>{w(1), w(2)};
  };
  const mc::ExploreResult r = explore(m);
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.stats.executions, 2);
}

TEST(McExecutor, CounterexampleScheduleReplaysToTheSameViolation) {
  mc::Model m = sb_litmus(std::memory_order_relaxed);
  mc::Explorer ex;
  const mc::ExploreResult r = ex.explore(m);
  ASSERT_TRUE(r.violation.has_value());
  std::vector<int> schedule;
  for (const mc::Transition& t : r.counterexample) {
    schedule.push_back(t.action);
  }
  const mc::Executor::Result replayed = ex.replay(m, schedule);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->kind, r.violation->kind);
}

TEST(McExecutor, ShimsFallBackToStdTypesWithoutAnExecutor) {
  // Outside a checker run (no thread-local executor installed) the shims
  // must behave as the plain std types the production build compiles to.
  mc::checked_atomic<int> a{1};
  a.store(5, std::memory_order_relaxed);
  EXPECT_EQ(a.load(std::memory_order_seq_cst), 5);
  mc::checked_mutex mu;
  {
    std::unique_lock<mc::checked_mutex> lk(mu);
    mc::var<int> v{3};
    v.write(4);
    EXPECT_EQ(v.read(), 4);
  }
  mc::checked_condvar cv;
  cv.notify_one();  // no waiters: must be a harmless no-op
}

}  // namespace
