// Tests for the extracted protocol models (src/mc/protocols.cpp): model
// construction, name round-trips, corpus integrity, fast clean verification
// of the handshake, and quick refutations of representative seeded bugs.
// The exhaustive clean proofs over every shipped protocol run in the
// bladed-mc --selftest ctest entry; these tests pin the pieces cheap enough
// for the unit suite.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mc/explorer.hpp"
#include "mc/protocols.hpp"

namespace mc = bladed::mc;

namespace {

mc::ExploreResult explore_bug(mc::Protocol protocol, mc::Bug bug,
                              const std::string& model_name = "") {
  mc::ModelConfig cfg;
  cfg.protocol = protocol;
  cfg.bug = bug;
  cfg.ranks = 2;
  cfg.slots = 1;
  for (const mc::Model& m : mc::build_models(cfg)) {
    if (!model_name.empty() && m.name != model_name) continue;
    mc::Explorer ex;
    mc::ExploreResult r = ex.explore(m);
    if (r.violation || (!model_name.empty() && m.name == model_name)) {
      return r;
    }
  }
  return {};
}

TEST(McProtocols, BuildModelsCoversEveryProtocol) {
  mc::ModelConfig cfg;
  cfg.protocol = mc::Protocol::kHandshake;
  auto handshake = mc::build_models(cfg);
  ASSERT_EQ(handshake.size(), 2u);
  EXPECT_EQ(handshake[0].name, "handshake-order");
  EXPECT_EQ(handshake[1].name, "handshake-progress");

  cfg.protocol = mc::Protocol::kRecvFastpath;
  cfg.ranks = 3;
  auto recv = mc::build_models(cfg);
  ASSERT_EQ(recv.size(), 1u);
  // 1 receiver + (ranks - 1) senders.
  EXPECT_EQ(recv[0].actor_names.size(), 3u);

  cfg.protocol = mc::Protocol::kSlotPool;
  auto slot = mc::build_models(cfg);
  ASSERT_EQ(slot.size(), 1u);
  // 1 scheduler + ranks ranks.
  EXPECT_EQ(slot[0].actor_names.size(), 4u);
}

TEST(McProtocols, NamesRoundTrip) {
  for (const mc::Protocol p :
       {mc::Protocol::kHandshake, mc::Protocol::kRecvFastpath,
        mc::Protocol::kSlotPool}) {
    mc::Protocol parsed;
    ASSERT_TRUE(mc::parse_protocol(mc::protocol_name(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  for (const mc::SeededBug& sb : mc::seeded_bug_corpus()) {
    mc::Bug parsed;
    ASSERT_TRUE(mc::parse_bug(mc::bug_name(sb.bug), &parsed));
    EXPECT_EQ(parsed, sb.bug);
  }
  mc::Protocol p;
  EXPECT_FALSE(mc::parse_protocol("no-such-protocol", &p));
  mc::Bug b;
  EXPECT_FALSE(mc::parse_bug("no-such-bug", &b));
}

TEST(McProtocols, CorpusCoversEveryProtocolWithUniqueNames) {
  std::set<std::string> names;
  std::set<mc::Protocol> protocols;
  for (const mc::SeededBug& sb : mc::seeded_bug_corpus()) {
    EXPECT_TRUE(names.insert(sb.name).second) << sb.name;
    protocols.insert(sb.protocol);
    EXPECT_NE(sb.bug, mc::Bug::kNone);
  }
  EXPECT_EQ(protocols.size(), 3u);
  EXPECT_GE(names.size(), 10u);
}

TEST(McProtocols, HandshakeVerifiesCleanAtTwoRanks) {
  mc::ModelConfig cfg;
  cfg.protocol = mc::Protocol::kHandshake;
  cfg.ranks = 2;
  for (const mc::Model& m : mc::build_models(cfg)) {
    mc::Explorer ex;
    const mc::ExploreResult r = ex.explore(m);
    EXPECT_FALSE(r.violation.has_value()) << m.name;
    EXPECT_TRUE(r.stats.complete) << m.name;
  }
}

TEST(McProtocols, WeakClockIsRefutedByALostWakeup) {
  const mc::ExploreResult r = explore_bug(
      mc::Protocol::kHandshake, mc::Bug::kWeakClock, "handshake-progress");
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "lost-wakeup");
  // The counterexample must show the relaxed clock store still buffered
  // when the scheduler's re-check reads the stale cell.
  EXPECT_NE(r.schedule.find("buffered"), std::string::npos);
}

TEST(McProtocols, WeakPublishIsRefuted) {
  const mc::ExploreResult r =
      explore_bug(mc::Protocol::kHandshake, mc::Bug::kWeakPublish,
                  "handshake-progress");
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "lost-wakeup");
}

TEST(McProtocols, NoRecheckGrantsOutOfOrder) {
  const mc::ExploreResult r = explore_bug(
      mc::Protocol::kHandshake, mc::Bug::kNoRecheck, "handshake-order");
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "assertion");
}

TEST(McProtocols, PlainMailboxIsADataRace) {
  const mc::ExploreResult r =
      explore_bug(mc::Protocol::kRecvFastpath, mc::Bug::kPlainMailbox);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, "data-race");
}

TEST(McProtocols, HoldWhileParkedWedgesThePool) {
  const mc::ExploreResult r =
      explore_bug(mc::Protocol::kSlotPool, mc::Bug::kHoldWhileParked);
  ASSERT_TRUE(r.violation.has_value());
  // A rank parked for its grant while holding the last slot starves the
  // other rank, which starves the scheduler's grant loop.
  EXPECT_TRUE(r.violation->kind == "lost-wakeup" ||
              r.violation->kind == "deadlock");
}

}  // namespace
