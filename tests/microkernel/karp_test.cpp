#include "microkernel/karp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bladed::micro {
namespace {

double rel_err(double approx, double exact) {
  return std::fabs(approx - exact) / std::fabs(exact);
}

TEST(KarpRsqrt, ExactOnPowersOfFour) {
  for (double x : {0.25, 1.0, 4.0, 16.0, 1024.0 * 1024.0}) {
    EXPECT_NEAR(karp_rsqrt(x), 1.0 / std::sqrt(x),
                4e-16 / std::sqrt(x))
        << x;
  }
}

TEST(KarpRsqrt, EstimateAccuracyBeforeRefinement) {
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(1.0, 4.0);
    EXPECT_LT(rel_err(karp_rsqrt_estimate(x), 1.0 / std::sqrt(x)), 2e-6)
        << x;
  }
}

TEST(KarpRsqrt, OneNewtonIterationSquaresTheError) {
  Rng rng(32);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(1.0, 4.0);
    EXPECT_LT(rel_err(karp_rsqrt(x, 1), 1.0 / std::sqrt(x)), 1e-11) << x;
  }
}

TEST(KarpRsqrt, TwoIterationsReachMachinePrecision) {
  Rng rng(33);
  for (int i = 0; i < 50000; ++i) {
    const double x = std::exp2(rng.uniform(-300.0, 300.0));
    EXPECT_LT(rel_err(karp_rsqrt(x, 2), 1.0 / std::sqrt(x)), 4e-16) << x;
  }
}

TEST(KarpRsqrt, ExponentParityHandledAcrossDecades) {
  // Values straddling even/odd binary exponents, including the 2^±1 cases.
  for (double x : {0.5, 2.0, 8.0, 32.0, 0.125, 3.9999, 1.0001, 2.0001}) {
    EXPECT_LT(rel_err(karp_rsqrt(x), 1.0 / std::sqrt(x)), 4e-16) << x;
  }
}

TEST(KarpRsqrt, SubnormalInputs) {
  const double tiny = 5e-324;  // smallest positive subnormal
  EXPECT_LT(rel_err(karp_rsqrt(tiny), 1.0 / std::sqrt(tiny)), 1e-15);
  const double sub = 1e-310;
  EXPECT_LT(rel_err(karp_rsqrt(sub), 1.0 / std::sqrt(sub)), 1e-15);
}

TEST(KarpRsqrt, RejectsNonPositiveAndNonFinite) {
  EXPECT_THROW(karp_rsqrt(0.0), PreconditionError);
  EXPECT_THROW(karp_rsqrt(-1.0), PreconditionError);
  EXPECT_THROW(karp_rsqrt(std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(karp_rsqrt(std::nan("")), PreconditionError);
  EXPECT_THROW(karp_rsqrt(1.0, -1), PreconditionError);
}

TEST(KarpRsqrt, MonotoneDecreasingOnSamples) {
  double prev = karp_rsqrt(0.01);
  for (double x = 0.02; x < 100.0; x *= 1.37) {
    const double y = karp_rsqrt(x);
    EXPECT_LT(y, prev);
    prev = y;
  }
}

TEST(KarpRcbrt3, MatchesRefImplementation) {
  Rng rng(34);
  for (int i = 0; i < 10000; ++i) {
    const double r2 = rng.uniform(1e-6, 1e6);
    const double exact = 1.0 / (r2 * std::sqrt(r2));
    EXPECT_LT(rel_err(karp_rcbrt3(r2), exact), 2e-15) << r2;
  }
}

class KarpIterationSweep : public ::testing::TestWithParam<int> {};

TEST_P(KarpIterationSweep, ErrorShrinksQuadratically) {
  const int iters = GetParam();
  Rng rng(35 + iters);
  double worst = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(1.0, 4.0);
    worst = std::max(worst, rel_err(karp_rsqrt(x, iters),
                                    1.0 / std::sqrt(x)));
  }
  // error_n ~ error_estimate^(2^n): 2e-6 -> ~1e-11 -> machine eps.
  const double bounds[] = {2e-6, 1e-11, 4e-16, 4e-16};
  EXPECT_LT(worst, bounds[iters]);
}

INSTANTIATE_TEST_SUITE_P(Iterations, KarpIterationSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace bladed::micro
