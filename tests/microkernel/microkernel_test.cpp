#include "microkernel/microkernel.hpp"

#include <gtest/gtest.h>

#include "arch/cost_model.hpp"
#include "arch/registry.hpp"
#include "common/error.hpp"

namespace bladed::micro {
namespace {

TEST(Microkernel, BothVariantsComputeTheSameAccelerations) {
  // Karp's rsqrt at 2 NR iterations is bit-comparable to libm sqrt: the two
  // checksums must agree to ~1e-13 relative.
  const MicroResult libm = run_microkernel(SqrtImpl::kLibm);
  const MicroResult karp = run_microkernel(SqrtImpl::kKarp);
  EXPECT_NE(libm.checksum, 0.0);
  EXPECT_NEAR(libm.checksum, karp.checksum,
              1e-12 * std::abs(libm.checksum));
}

TEST(Microkernel, ChecksumIsDeterministic) {
  EXPECT_DOUBLE_EQ(run_microkernel(SqrtImpl::kLibm).checksum,
                   run_microkernel(SqrtImpl::kLibm).checksum);
}

TEST(Microkernel, OpCountsScaleWithIterations) {
  const MicroResult a = run_microkernel(SqrtImpl::kKarp, 100);
  const MicroResult b = run_microkernel(SqrtImpl::kKarp, 200);
  EXPECT_EQ(b.ops.fmul, 2 * a.ops.fmul);
  EXPECT_EQ(b.ops.flops(), 2 * a.ops.flops());
}

TEST(Microkernel, LibmVariantUsesSqrtAndDivide) {
  const OpCounter o = per_iteration_ops(SqrtImpl::kLibm);
  EXPECT_EQ(o.fsqrt, 1u);
  EXPECT_EQ(o.fdiv, 1u);
  EXPECT_EQ(o.flops(), 14u);  // the nominal convention
  EXPECT_DOUBLE_EQ(static_cast<double>(o.flops()),
                   kNominalFlopsPerIteration);
}

TEST(Microkernel, KarpVariantIsSqrtAndDivideFree) {
  const OpCounter o = per_iteration_ops(SqrtImpl::kKarp);
  EXPECT_EQ(o.fsqrt, 0u);
  EXPECT_EQ(o.fdiv, 0u);
  EXPECT_GT(o.fmul, per_iteration_ops(SqrtImpl::kLibm).fmul);
}

TEST(Microkernel, ProfileMatchesMeasuredRun) {
  for (SqrtImpl impl : {SqrtImpl::kLibm, SqrtImpl::kKarp}) {
    const arch::KernelProfile p = microkernel_profile(impl, true, 500);
    const MicroResult r = run_microkernel(impl, 500);
    EXPECT_EQ(p.ops.flops(), r.ops.flops());
    EXPECT_EQ(p.ops.mem_ops(), r.ops.mem_ops());
  }
}

TEST(Microkernel, RejectsBadIterationCount) {
  EXPECT_THROW(run_microkernel(SqrtImpl::kLibm, 0), PreconditionError);
  EXPECT_THROW(microkernel_profile(SqrtImpl::kKarp, true, -5),
               PreconditionError);
}

// --- Table 1 shape invariants (the paper's prose) --------------------------

double nominal_mflops(const arch::ProcessorModel& cpu, SqrtImpl impl,
                      bool tuned) {
  const arch::KernelProfile p = microkernel_profile(impl, tuned);
  const double secs = arch::estimate_seconds(cpu, p);
  return kNominalFlopsPerIteration * kPaperIterations / secs / 1e6;
}

TEST(Table1Shape, KarpBeatsLibmOnEveryProcessor) {
  for (const auto& cpu : arch::all_processors()) {
    const bool tuned = cpu.short_name.substr(0, 2) != "TM";
    EXPECT_GT(nominal_mflops(cpu, SqrtImpl::kKarp, tuned),
              nominal_mflops(cpu, SqrtImpl::kLibm, tuned))
        << cpu.name;
  }
}

TEST(Table1Shape, TransmetaMatchesIntelAndAlphaPerClockOnMathSqrt) {
  // §3.2: "In the Math sqrt benchmark, the Transmeta performs as well as
  // (if not better than) the Intel and Alpha, relative to clock speed."
  const double tm = nominal_mflops(arch::tm5600_633(), SqrtImpl::kLibm,
                                   false) /
                    arch::tm5600_633().clock.value();
  const double p3 = nominal_mflops(arch::pentium3_500(), SqrtImpl::kLibm,
                                   true) /
                    arch::pentium3_500().clock.value();
  const double ev = nominal_mflops(arch::alpha_ev56_533(), SqrtImpl::kLibm,
                                   true) /
                    arch::alpha_ev56_533().clock.value();
  EXPECT_GE(tm, p3);
  EXPECT_GE(tm, ev);
}

TEST(Table1Shape, TransmetaSuffersABitOnKarp) {
  // §3.2: the Karp build was arch-optimized everywhere except the Transmeta,
  // so the TM5600's Karp speedup factor is the smallest in the table.
  auto ratio = [&](const arch::ProcessorModel& cpu, bool tuned) {
    return nominal_mflops(cpu, SqrtImpl::kKarp, tuned) /
           nominal_mflops(cpu, SqrtImpl::kLibm, tuned);
  };
  const double tm = ratio(arch::tm5600_633(), false);
  for (const char* other : {"PIII", "EV56", "Power3", "AthlonMP"}) {
    EXPECT_LT(tm, ratio(arch::by_short_name(other), true)) << other;
  }
}

TEST(Table1Shape, FastClockedCpusLeadInAbsoluteTerms) {
  // The Athlon MP (1.2 GHz) and Power3 dominate the absolute column — the
  // paper's motivation for calling out that they are not comparably clocked.
  const double athlon =
      nominal_mflops(arch::athlon_mp_1200(), SqrtImpl::kKarp, true);
  const double power3 =
      nominal_mflops(arch::power3_375(), SqrtImpl::kKarp, true);
  for (const char* slow : {"PIII", "EV56", "TM5600"}) {
    const auto& cpu = arch::by_short_name(slow);
    const bool tuned = cpu.short_name.substr(0, 2) != "TM";
    const double v = nominal_mflops(cpu, SqrtImpl::kKarp, tuned);
    EXPECT_GT(athlon, v) << slow;
    EXPECT_GT(power3, v) << slow;
  }
}

}  // namespace
}  // namespace bladed::micro
