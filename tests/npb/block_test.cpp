#include "npb/block.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bladed::npb {
namespace {

Mat5 random_dominant(Rng& rng) {
  Mat5 m = mat5_zero();
  for (int i = 0; i < kB; ++i) {
    double sum = 0.0;
    for (int j = 0; j < kB; ++j) {
      if (j != i) {
        m[i][j] = rng.uniform(-1.0, 1.0);
        sum += std::fabs(m[i][j]);
      }
    }
    m[i][i] = sum + rng.uniform(1.0, 2.0);
  }
  return m;
}

Vec5 random_vec(Rng& rng) {
  Vec5 v;
  for (double& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

TEST(Block, IdentityActsAsNeutral) {
  Rng rng(1);
  const Mat5 id = mat5_identity();
  const Vec5 x = random_vec(rng);
  Vec5 y{};
  matvec_acc(id, x, y);
  for (int i = 0; i < kB; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Block, MatvecAccAndSubAreInverse) {
  Rng rng(2);
  const Mat5 a = random_dominant(rng);
  const Vec5 x = random_vec(rng);
  Vec5 y = random_vec(rng);
  const Vec5 orig = y;
  matvec_acc(a, x, y);
  matvec_sub(a, x, y);
  for (int i = 0; i < kB; ++i) EXPECT_NEAR(y[i], orig[i], 1e-12);
}

TEST(Block, MatmulSubAgainstDirectComputation) {
  Rng rng(3);
  const Mat5 a = random_dominant(rng);
  const Mat5 b = random_dominant(rng);
  Mat5 c = mat5_zero();
  matmul_sub(a, b, c);  // c = -a*b
  for (int i = 0; i < kB; ++i) {
    for (int j = 0; j < kB; ++j) {
      double s = 0.0;
      for (int k = 0; k < kB; ++k) s += a[i][k] * b[k][j];
      EXPECT_NEAR(c[i][j], -s, 1e-12);
    }
  }
}

TEST(Block, LuSolveRecoversKnownSolution) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const Mat5 a = random_dominant(rng);
    const Vec5 x = random_vec(rng);
    // b = A x
    Vec5 b{};
    matvec_acc(a, x, b);
    Mat5 lu = a;
    lu_factor(lu);
    lu_solve(lu, b);
    for (int i = 0; i < kB; ++i) EXPECT_NEAR(b[i], x[i], 1e-10);
  }
}

TEST(Block, LuSolveMatComputesInverseTimesMatrix) {
  Rng rng(5);
  const Mat5 a = random_dominant(rng);
  Mat5 lu = a;
  lu_factor(lu);
  Mat5 inv = mat5_identity();
  lu_solve_mat(lu, inv);  // inv = A^{-1}
  // A * inv == I
  Mat5 check = mat5_identity();
  matmul_sub(a, inv, check);  // I - A*A^{-1} == 0
  for (int i = 0; i < kB; ++i) {
    for (int j = 0; j < kB; ++j) EXPECT_NEAR(check[i][j], 0.0, 1e-10);
  }
}

TEST(Block, DotProduct) {
  Vec5 a{1, 2, 3, 4, 5};
  Vec5 b{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot(a, b), 5 + 8 + 9 + 8 + 5);
}

TEST(Block, OpCountConstantsMatchAlgorithm) {
  // matvec: kB*kB multiply-adds.
  EXPECT_EQ(matvec_ops().fmul, 25u);
  EXPECT_EQ(matvec_ops().fadd, 25u);
  // matmul: kB^3.
  EXPECT_EQ(matmul_ops().fmul, 125u);
  // LU factorization: sum_k (n-k-1)(1 + (n-k-1)) products, 5 reciprocals.
  EXPECT_EQ(lu_factor_ops().fdiv, 5u);
  EXPECT_EQ(lu_factor_ops().fmul, 40u);  // 10 scales + 30 updates
  EXPECT_EQ(lu_factor_ops().fadd, 30u);
  // Triangular solves: 10 + 10 products + 5 diagonal scalings.
  EXPECT_EQ(lu_solve_ops().fmul, 25u);
  EXPECT_EQ(lu_solve_ops().fadd, 20u);
  EXPECT_EQ(lu_solve_mat_ops().fmul, 125u);
}

}  // namespace
}  // namespace bladed::npb
