#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "npb/bt.hpp"
#include "npb/lu.hpp"
#include "npb/sp.hpp"
#include "npb/suite.hpp"

namespace bladed::npb {
namespace {

TEST(BlockTridiag, SolvesManufacturedSystem) {
  // Build a system with a known solution and verify the solver recovers it.
  Rng rng(11);
  const std::size_t n = 12;
  std::vector<Mat5> a(n), b(n), c(n);
  std::vector<Vec5> x_true(n), f(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int r = 0; r < kB; ++r) {
      for (int q = 0; q < kB; ++q) {
        a[i][r][q] = i > 0 ? rng.uniform(-0.3, 0.3) : 0.0;
        c[i][r][q] = i + 1 < n ? rng.uniform(-0.3, 0.3) : 0.0;
        b[i][r][q] = rng.uniform(-0.2, 0.2);
      }
      x_true[i][r] = rng.uniform(-1.0, 1.0);
    }
    for (int r = 0; r < kB; ++r) {
      double rowsum = 0.0;
      for (int q = 0; q < kB; ++q) {
        rowsum += std::fabs(a[i][r][q]) + std::fabs(c[i][r][q]);
        if (q != r) rowsum += std::fabs(b[i][r][q]);
      }
      b[i][r][r] = 1.0 + rowsum;
    }
  }
  // f = A_block_tridiag * x_true.
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = Vec5{};
    matvec_acc(b[i], x_true[i], f[i]);
    if (i > 0) matvec_acc(a[i], x_true[i - 1], f[i]);
    if (i + 1 < n) matvec_acc(c[i], x_true[i + 1], f[i]);
  }
  OpCounter ops;
  solve_block_tridiag(a, b, c, f, ops);
  for (std::size_t i = 0; i < n; ++i) {
    for (int r = 0; r < kB; ++r) {
      EXPECT_NEAR(f[i][r], x_true[i][r], 1e-9) << i << "," << r;
    }
  }
  EXPECT_GT(ops.flops(), 0u);
}

TEST(BlockTridiag, SingleCellSystem) {
  std::vector<Mat5> a(1, mat5_zero()), c(1, mat5_zero());
  std::vector<Mat5> b(1, mat5_identity());
  for (int i = 0; i < kB; ++i) b[0][i][i] = 2.0;
  std::vector<Vec5> f(1, Vec5{2, 4, 6, 8, 10});
  OpCounter ops;
  solve_block_tridiag(a, b, c, f, ops);
  for (int i = 0; i < kB; ++i) EXPECT_NEAR(f[0][i], i + 1.0, 1e-12);
}

TEST(Bt, AllLinesVerifyAtSmallResidual) {
  const BtResult r = run_bt(8, 2);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.max_line_residual, 1e-10);
  EXPECT_EQ(r.lines_solved, 2u * 3u * 8u * 8u);
}

TEST(Bt, OpsScaleWithGridAndIterations) {
  const BtResult a = run_bt(8, 1);
  const BtResult b = run_bt(8, 2);
  EXPECT_EQ(b.ops.flops(), 2 * a.ops.flops());
  const BtResult big = run_bt(16, 1);
  // 8x the lines, 2x the line length: ~8-16x the ops.
  EXPECT_GT(big.ops.flops(), 7 * a.ops.flops());
}

TEST(Bt, RejectsBadArguments) {
  EXPECT_THROW(run_bt(1, 1), PreconditionError);
  EXPECT_THROW(run_bt(8, 0), PreconditionError);
}

TEST(Penta, SolvesManufacturedSystem) {
  Rng rng(13);
  const std::size_t n = 40;
  PentaSystem s;
  s.a2.resize(n);
  s.a1.resize(n);
  s.d.resize(n);
  s.c1.resize(n);
  s.c2.resize(n);
  s.f.resize(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.a2[i] = i >= 2 ? rng.uniform(-0.4, 0.4) : 0.0;
    s.a1[i] = i >= 1 ? rng.uniform(-0.4, 0.4) : 0.0;
    s.c1[i] = i + 1 < n ? rng.uniform(-0.4, 0.4) : 0.0;
    s.c2[i] = i + 2 < n ? rng.uniform(-0.4, 0.4) : 0.0;
    s.d[i] = 1.0 + std::fabs(s.a2[i]) + std::fabs(s.a1[i]) +
             std::fabs(s.c1[i]) + std::fabs(s.c2[i]);
    x_true[i] = rng.uniform(-1.0, 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double v = s.d[i] * x_true[i];
    if (i >= 1) v += s.a1[i] * x_true[i - 1];
    if (i >= 2) v += s.a2[i] * x_true[i - 2];
    if (i + 1 < n) v += s.c1[i] * x_true[i + 1];
    if (i + 2 < n) v += s.c2[i] * x_true[i + 2];
    s.f[i] = v;
  }
  const PentaSystem orig = s;
  OpCounter ops;
  solve_penta(s, ops);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(s.f[i], x_true[i], 1e-10) << i;
  }
  EXPECT_LT(penta_residual(orig, s.f), 1e-10);
}

TEST(Sp, AllSystemsVerify) {
  const SpResult r = run_sp(8, 2);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.systems_solved, 2u * 3u * 8u * 8u * 5u);
}

TEST(Sp, RejectsBadArguments) {
  EXPECT_THROW(run_sp(2, 1), PreconditionError);
  EXPECT_THROW(run_sp(8, 0), PreconditionError);
}

TEST(Lu, SsorConvergesMonotonically) {
  const LuResult r = run_lu(8, 10);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.final_residual, 0.01 * r.initial_residual);
  double prev = r.initial_residual;
  for (double res : r.residual_history) {
    EXPECT_LE(res, prev * 1.001);
    prev = res;
  }
}

TEST(Lu, OmegaOneIsPlainGaussSeidelAndAlsoConverges) {
  const LuResult r = run_lu(6, 8, 1.0);
  EXPECT_LT(r.final_residual, r.initial_residual);
}

TEST(Lu, RejectsBadArguments) {
  EXPECT_THROW(run_lu(2, 1), PreconditionError);
  EXPECT_THROW(run_lu(8, 0), PreconditionError);
  EXPECT_THROW(run_lu(8, 1, 2.5), PreconditionError);
}

TEST(Suite, EveryKernelVerifies) {
  for (const KernelRun& k : run_suite()) {
    EXPECT_TRUE(k.verified) << k.name << ": " << k.description;
    EXPECT_GT(k.profile.ops.iop + k.profile.ops.flops(), 0u) << k.name;
  }
}

TEST(Suite, Table3SubsetInPaperOrder) {
  const auto kernels = table3_kernels();
  ASSERT_EQ(kernels.size(), 6u);
  const char* expected[] = {"BT", "SP", "LU", "MG", "EP", "IS"};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(kernels[i].name, expected[i]);
}

}  // namespace
}  // namespace bladed::npb
