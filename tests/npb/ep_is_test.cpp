#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "npb/ep.hpp"
#include "npb/is.hpp"

namespace bladed::npb {
namespace {

TEST(Ep, AcceptanceRateIsPiOverFour) {
  const EpResult r = run_ep(20);
  const double rate =
      static_cast<double>(r.accepted) / static_cast<double>(r.pairs);
  EXPECT_NEAR(rate, M_PI / 4.0, 2e-3);
}

TEST(Ep, GaussianSumsNearZero) {
  // Sums of N standard normals have stddev sqrt(N).
  const EpResult r = run_ep(20);
  const double sigma = std::sqrt(static_cast<double>(r.accepted));
  EXPECT_LT(std::fabs(r.sx), 5.0 * sigma);
  EXPECT_LT(std::fabs(r.sy), 5.0 * sigma);
  EXPECT_GT(std::fabs(r.sx) + std::fabs(r.sy), 0.0);
}

TEST(Ep, AnnulusCountsMatchNormalTails) {
  const EpResult r = run_ep(20);
  EXPECT_EQ(r.count_sum(), r.accepted);
  // q[0] = P(max(|X|,|Y|) < 1) = erf(1/sqrt2)^2 ~ 0.4660.
  const double p0 =
      static_cast<double>(r.q[0]) / static_cast<double>(r.accepted);
  EXPECT_NEAR(p0, 0.466, 0.01);
  // Counts decay fast with the annulus index.
  EXPECT_GT(r.q[0], r.q[1]);
  EXPECT_GT(r.q[1], r.q[2]);
  EXPECT_EQ(r.q[9], 0u);  // ~6-sigma events are absent at this sample size
}

TEST(Ep, DeterministicForFixedSeed) {
  const EpResult a = run_ep(16);
  const EpResult b = run_ep(16);
  EXPECT_DOUBLE_EQ(a.sx, b.sx);
  EXPECT_EQ(a.q, b.q);
}

TEST(Ep, DifferentSeedsGiveDifferentSums) {
  const EpResult a = run_ep(16, 1);
  const EpResult b = run_ep(16, 2);
  EXPECT_NE(a.sx, b.sx);
}

TEST(Ep, OpCountsScaleWithClass) {
  const EpResult a = run_ep(14);
  const EpResult b = run_ep(16);
  // 4x the pairs -> ~4x the ops (acceptance rate is the same).
  const double ratio = static_cast<double>(b.ops.flops()) /
                       static_cast<double>(a.ops.flops());
  EXPECT_NEAR(ratio, 4.0, 0.05);
}

TEST(Ep, RejectsSillyClassSize) {
  EXPECT_THROW(run_ep(2), PreconditionError);
  EXPECT_THROW(run_ep(40), PreconditionError);
}

TEST(Is, RanksProduceSortedPermutation) {
  const IsResult r = run_is(16, 11);
  EXPECT_TRUE(r.ranks_are_permutation);
  EXPECT_TRUE(r.ranks_sort_keys);
  EXPECT_EQ(r.keys, 1u << 16);
  EXPECT_EQ(r.iterations, 10);
}

TEST(Is, DeterministicChecksum) {
  const IsResult a = run_is(14, 10, 5);
  const IsResult b = run_is(14, 10, 5);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Is, SeedChangesChecksum) {
  const IsResult a = run_is(14, 10, 5, 1);
  const IsResult b = run_is(14, 10, 5, 2);
  EXPECT_NE(a.checksum, b.checksum);
}

TEST(Is, PurelyIntegerWorkload) {
  const IsResult r = run_is(14, 10, 3);
  // The ranking iterations contribute no flops; only key generation does.
  EXPECT_EQ(r.ops.fsqrt, 0u);
  EXPECT_EQ(r.ops.fdiv, 0u);
  EXPECT_GT(r.ops.iop, r.ops.flops());
}

class IsSizeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IsSizeSweep, SortsAtEverySize) {
  const auto [n_log2, bmax_log2] = GetParam();
  const IsResult r = run_is(n_log2, bmax_log2, 4);
  EXPECT_TRUE(r.ranks_sort_keys) << n_log2 << " " << bmax_log2;
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsSizeSweep,
                         ::testing::Values(std::pair{8, 5}, std::pair{12, 8},
                                           std::pair{16, 11},
                                           std::pair{18, 14},
                                           std::pair{16, 4}));

TEST(Is, RejectsBadParameters) {
  EXPECT_THROW(run_is(2, 5), PreconditionError);
  EXPECT_THROW(run_is(16, 1), PreconditionError);
  EXPECT_THROW(run_is(16, 11, 0), PreconditionError);
}

}  // namespace
}  // namespace bladed::npb
