#include "npb/ft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bladed::npb {
namespace {

TEST(Fft1d, DeltaTransformsToConstant) {
  std::vector<Complex> a(8, Complex(0.0, 0.0));
  a[0] = Complex(1.0, 0.0);
  OpCounter ops;
  fft1d(a, false, ops);
  for (const Complex& c : a) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> a(n);
  const int tone = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * tone * static_cast<double>(i) / n;
    a[i] = Complex(std::cos(ang), std::sin(ang));
  }
  OpCounter ops;
  fft1d(a, false, ops);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone) {
      EXPECT_NEAR(std::abs(a[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(a[k]), 0.0, 1e-9) << k;
    }
  }
}

TEST(Fft1d, RoundTripIsIdentity) {
  Rng rng(71);
  std::vector<Complex> a(128);
  for (Complex& c : a) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const std::vector<Complex> orig = a;
  OpCounter ops;
  fft1d(a, false, ops);
  fft1d(a, true, ops);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] / 128.0 - orig[i]), 0.0, 1e-12) << i;
  }
}

TEST(Fft1d, ParsevalHolds) {
  Rng rng(73);
  std::vector<Complex> a(256);
  double time_energy = 0.0;
  for (Complex& c : a) {
    c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(c);
  }
  OpCounter ops;
  fft1d(a, false, ops);
  double freq_energy = 0.0;
  for (const Complex& c : a) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-9 * time_energy);
}

TEST(Fft1d, OpCountIsNLogNScale) {
  std::vector<Complex> a(1024), b(2048);
  OpCounter oa, ob;
  fft1d(a, false, oa);
  fft1d(b, false, ob);
  // (2n log 2n) / (n log n) = 2 * 11/10 = 2.2.
  EXPECT_NEAR(static_cast<double>(ob.flops()) / oa.flops(), 2.2, 0.01);
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<Complex> a(12);
  OpCounter ops;
  EXPECT_THROW(fft1d(a, false, ops), PreconditionError);
}

TEST(Fft3d, RoundTripOnAnisotropicGrid) {
  const int nx = 16, ny = 8, nz = 4;
  Rng rng(79);
  std::vector<Complex> g(static_cast<std::size_t>(nx) * ny * nz);
  for (Complex& c : g) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const std::vector<Complex> orig = g;
  OpCounter ops;
  fft3d(g, nx, ny, nz, false, ops);
  fft3d(g, nx, ny, nz, true, ops);
  const double inv = 1.0 / static_cast<double>(nx * ny * nz);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(std::abs(g[i] * inv - orig[i]), 0.0, 1e-12) << i;
  }
}

TEST(Fft3d, SizeMismatchRejected) {
  std::vector<Complex> g(100);
  OpCounter ops;
  EXPECT_THROW(fft3d(g, 8, 8, 8, false, ops), PreconditionError);
}

TEST(Ft, RunVerifies) {
  const FtResult r = run_ft(16, 16, 16, 4);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.roundtrip_error, 1e-10);
  EXPECT_EQ(r.checksums.size(), 4u);
}

TEST(Ft, HeatKernelDampsEnergyMonotonically) {
  const FtResult r = run_ft(16, 16, 16, 6);
  ASSERT_EQ(r.energies.size(), 6u);
  for (std::size_t s = 1; s < r.energies.size(); ++s) {
    EXPECT_LE(r.energies[s], r.energies[s - 1] * (1.0 + 1e-12)) << s;
    EXPECT_LT(r.energies[s], r.energies[s - 1]) << s;  // strictly, here
  }
}

TEST(Ft, DeterministicChecksums) {
  const FtResult a = run_ft(8, 8, 8, 3);
  const FtResult b = run_ft(8, 8, 8, 3);
  for (std::size_t s = 0; s < a.checksums.size(); ++s) {
    EXPECT_EQ(a.checksums[s], b.checksums[s]);
  }
}

TEST(Ft, AnisotropicClassWShape) {
  // Class W is 128x128x32; run the 4x-reduced shape to keep the test fast.
  const FtResult r = run_ft(32, 32, 8, 2);
  EXPECT_TRUE(r.verified);
}

TEST(Ft, RejectsBadIterationCount) {
  EXPECT_THROW(run_ft(8, 8, 8, 0), PreconditionError);
}

}  // namespace
}  // namespace bladed::npb
