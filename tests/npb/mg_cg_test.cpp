#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "npb/cg.hpp"
#include "npb/mg.hpp"

namespace bladed::npb {
namespace {

TEST(Grid3Test, PeriodicWrapping) {
  Grid3 g(8);
  g.at(0, 0, 0) = 5.0;
  EXPECT_DOUBLE_EQ(g.at(8, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.at(-8, 8, -16), 5.0);
  g.at(7, 3, 2) = 2.0;
  EXPECT_DOUBLE_EQ(g.at(-1, 3, 2), 2.0);
}

TEST(Grid3Test, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Grid3(12), PreconditionError);
  EXPECT_THROW(Grid3(1), PreconditionError);
}

TEST(Grid3Test, L2Norm) {
  Grid3 g(4);
  g.fill(2.0);
  EXPECT_NEAR(g.l2_norm(), 2.0, 1e-12);
}

TEST(Mg, VcyclesReduceResidual) {
  const MgResult r = run_mg(32, 5);
  EXPECT_GT(r.initial_residual, 0.0);
  EXPECT_LT(r.final_residual, 0.05 * r.initial_residual);
  // Monotone decrease cycle over cycle.
  double prev = r.initial_residual;
  for (double res : r.residual_history) {
    EXPECT_LT(res, prev);
    prev = res;
  }
}

TEST(Mg, ConvergenceFactorIsMultigridLike) {
  // Textbook V-cycle factors for Poisson are << 1 per cycle; even a modest
  // implementation should beat 0.6.
  const MgResult r = run_mg(32, 5);
  EXPECT_LT(r.convergence_factor(), 0.6);
  EXPECT_GT(r.convergence_factor(), 0.0);
}

TEST(Mg, WorksAcrossGridSizes) {
  for (int n : {8, 16, 64}) {
    const MgResult r = run_mg(n, 3);
    EXPECT_LT(r.final_residual, r.initial_residual) << n;
  }
}

TEST(Mg, OpsScaleRoughlyLinearlyInPoints) {
  const MgResult a = run_mg(16, 2);
  const MgResult b = run_mg(32, 2);
  const double ratio = static_cast<double>(b.ops.flops()) /
                       static_cast<double>(a.ops.flops());
  EXPECT_NEAR(ratio, 8.0, 1.5);  // 8x the points, same cycles
}

TEST(Mg, DeterministicForFixedSeed) {
  const MgResult a = run_mg(16, 3);
  const MgResult b = run_mg(16, 3);
  EXPECT_DOUBLE_EQ(a.final_residual, b.final_residual);
}

TEST(Mg, RejectsBadArguments) {
  EXPECT_THROW(run_mg(12, 1), PreconditionError);  // not a power of two
  EXPECT_THROW(run_mg(16, 0), PreconditionError);
}

TEST(Cg, MatrixIsSymmetricAndDiagonallyDominant) {
  const SparseMatrix a = make_spd_matrix(500, 7, 10.0, 42);
  EXPECT_TRUE(a.is_symmetric());
  for (int i = 0; i < a.n; ++i) {
    double diag = 0.0, off = 0.0;
    for (int p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
      if (a.col[static_cast<std::size_t>(p)] == i) {
        diag = a.val[static_cast<std::size_t>(p)];
      } else {
        off += std::fabs(a.val[static_cast<std::size_t>(p)]);
      }
    }
    EXPECT_GT(diag, off) << "row " << i;
  }
}

TEST(Cg, MultiplyMatchesDenseReference) {
  const SparseMatrix a = make_spd_matrix(40, 4, 5.0, 7);
  std::vector<double> x(40);
  for (int i = 0; i < 40; ++i) x[static_cast<std::size_t>(i)] = 0.1 * i - 2.0;
  std::vector<double> y;
  a.multiply(x, y);
  // Dense recompute.
  for (int i = 0; i < 40; ++i) {
    double s = 0.0;
    for (int p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
      s += a.val[static_cast<std::size_t>(p)] *
           x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(p)])];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], s, 1e-14);
  }
}

TEST(Cg, InnerResidualDecreasesMonotonically) {
  const CgResult r = run_cg(1000, 7, 1, 10.0);
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LT(r.residual_history[i], r.residual_history[i - 1]) << i;
  }
  EXPECT_LT(r.final_cg_residual, 1e-8 * r.residual_history.front());
}

TEST(Cg, ZetaApproachesSmallestEigenvalueScale) {
  // zeta = shift + 1/(x.z) converges to shift + lambda_min. Our matrix has
  // diagonal shift + rowsum and off-diagonal row sums equal to rowsum, so
  // Gershgorin puts lambda_min in [shift, shift + 2*max_rowsum]: zeta lies
  // in [2*shift, 2*shift + 2*max_rowsum].
  const CgResult r = run_cg(1000, 7, 4, 10.0);
  EXPECT_GT(r.zeta, 20.0);
  EXPECT_LT(r.zeta, 20.0 + 16.0);
}

TEST(Cg, DeterministicAndSeedSensitive) {
  const CgResult a = run_cg(300, 5, 2, 8.0, 1);
  const CgResult b = run_cg(300, 5, 2, 8.0, 1);
  const CgResult c = run_cg(300, 5, 2, 8.0, 2);
  EXPECT_DOUBLE_EQ(a.zeta, b.zeta);
  EXPECT_NE(a.zeta, c.zeta);
}

TEST(Cg, RejectsBadArguments) {
  EXPECT_THROW(make_spd_matrix(1, 1, 1.0, 0), PreconditionError);
  EXPECT_THROW(make_spd_matrix(10, 0, 1.0, 0), PreconditionError);
  EXPECT_THROW(run_cg(100, 5, 0, 10.0), PreconditionError);
}

}  // namespace
}  // namespace bladed::npb
