#include "npb/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace bladed::npb {
namespace {

ParallelNpbConfig cfg(int ranks) {
  ParallelNpbConfig c;
  c.ranks = ranks;
  c.cpu = &arch::tm5600_633();
  return c;
}

TEST(ParallelEp, CountsExactlyMatchSerial) {
  const EpResult serial = run_ep(16);
  for (int ranks : {1, 3, 8}) {
    const ParallelEpResult par = run_parallel_ep(cfg(ranks), 16);
    EXPECT_EQ(par.global.q, serial.q) << ranks;          // counts: exact
    EXPECT_EQ(par.global.accepted, serial.accepted) << ranks;
    EXPECT_EQ(par.global.pairs, serial.pairs) << ranks;
    // Sums: equal up to reduction order.
    EXPECT_NEAR(par.global.sx, serial.sx,
                1e-9 * std::max(1.0, std::fabs(serial.sx)))
        << ranks;
  }
}

TEST(ParallelEp, NearPerfectSpeedup) {
  // Needs a class-realistic pair count: at toy sizes the allreduce latency
  // is visible against microseconds of compute.
  const double t1 = run_parallel_ep(cfg(1), 22).elapsed_seconds;
  const double t8 = run_parallel_ep(cfg(8), 22).elapsed_seconds;
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 7.0);  // embarrassingly parallel
  EXPECT_LT(speedup, 8.01);
}

TEST(ParallelEp, BlockDecompositionIsSeamAgnostic) {
  // Splitting into 5 (non-power-of-two) blocks changes nothing.
  const ParallelEpResult a = run_parallel_ep(cfg(5), 14);
  const ParallelEpResult b = run_parallel_ep(cfg(7), 14);
  EXPECT_EQ(a.global.q, b.global.q);
}

TEST(ParallelEp, CommunicationIsTiny) {
  const ParallelEpResult r = run_parallel_ep(cfg(8), 22);
  // A handful of scalar/array allreduces; orders of magnitude below the
  // compute time at class-realistic sizes.
  EXPECT_LT(static_cast<double>(r.bytes), 1e5);
  EXPECT_GT(r.compute_seconds / r.elapsed_seconds, 0.9);
}

TEST(ParallelEp, RejectsBadConfig) {
  ParallelNpbConfig c = cfg(4);
  c.cpu = nullptr;
  EXPECT_THROW(run_parallel_ep(c, 16), PreconditionError);
  EXPECT_THROW(run_parallel_ep(cfg(4), 2), PreconditionError);
}

TEST(ParallelIs, GloballySortedPermutation) {
  for (int ranks : {1, 2, 6}) {
    const ParallelIsResult r = run_parallel_is(cfg(ranks), 14, 10, 5);
    EXPECT_TRUE(r.ranks_are_permutation) << ranks;
    EXPECT_TRUE(r.globally_sorted) << ranks;
    EXPECT_EQ(r.keys, 1u << 14);
  }
}

TEST(ParallelIs, CommunicationGrowsWithRanks) {
  const ParallelIsResult r2 = run_parallel_is(cfg(2), 14, 10, 5);
  const ParallelIsResult r8 = run_parallel_is(cfg(8), 14, 10, 5);
  EXPECT_GT(r8.bytes, r2.bytes);
  EXPECT_GT(r8.messages, r2.messages);
}

TEST(ParallelIs, ScalesWorseThanEp) {
  // The histogram allgather is the classic IS bottleneck on Fast Ethernet.
  auto speedup_is = [&](int ranks) {
    const double t1 = run_parallel_is(cfg(1), 16, 11, 3).elapsed_seconds;
    return t1 / run_parallel_is(cfg(ranks), 16, 11, 3).elapsed_seconds;
  };
  auto speedup_ep = [&](int ranks) {
    const double t1 = run_parallel_ep(cfg(1), 17).elapsed_seconds;
    return t1 / run_parallel_ep(cfg(ranks), 17).elapsed_seconds;
  };
  EXPECT_LT(speedup_is(8), speedup_ep(8));
}

TEST(ParallelIs, DeterministicAcrossRuns) {
  const ParallelIsResult a = run_parallel_is(cfg(4), 12, 8, 3);
  const ParallelIsResult b = run_parallel_is(cfg(4), 12, 8, 3);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(ParallelStencil, BitwiseIdenticalAcrossDecompositions) {
  // Jacobi reads only the previous iterate, so the slab decomposition must
  // not change a single bit: residuals and the z-ordered checksum are
  // exactly equal for any rank count.
  const ParallelStencilResult serial = run_parallel_stencil(cfg(1), 16, 6);
  for (int ranks : {2, 4, 8}) {
    const ParallelStencilResult par = run_parallel_stencil(cfg(ranks), 16, 6);
    EXPECT_EQ(par.solution_checksum, serial.solution_checksum) << ranks;
    EXPECT_EQ(par.final_residual, serial.final_residual) << ranks;
  }
}

TEST(ParallelStencil, JacobiReducesTheResidual) {
  const ParallelStencilResult r = run_parallel_stencil(cfg(4), 16, 30);
  EXPECT_GT(r.initial_residual, 0.0);
  EXPECT_LT(r.final_residual, 0.7 * r.initial_residual);
}

TEST(ParallelStencil, HaloTrafficScalesWithRanksNotGridVolume) {
  // Each rank exchanges two n^2 ghost planes per sweep: total bytes grow
  // linearly in rank count and are independent of slab thickness.
  const ParallelStencilResult r2 = run_parallel_stencil(cfg(2), 16, 4);
  const ParallelStencilResult r8 = run_parallel_stencil(cfg(8), 16, 4);
  EXPECT_NEAR(static_cast<double>(r8.bytes) / static_cast<double>(r2.bytes),
              4.0, 0.5);
}

TEST(ParallelStencil, NearestNeighborBeatsAllgatherScaling) {
  // The halo pattern's cost per rank is constant, so stencil efficiency at
  // 8 ranks must far exceed IS's collapsing allgather at similar sizes.
  // Needs a plane size where compute is visible against the per-sweep
  // halo (two 32 KB planes on Fast Ethernet).
  auto speedup = [&](int ranks) {
    const double t1 = run_parallel_stencil(cfg(1), 64, 12).elapsed_seconds;
    return t1 / run_parallel_stencil(cfg(ranks), 64, 12).elapsed_seconds;
  };
  EXPECT_GT(speedup(8), 2.0);
}

TEST(ParallelStencil, RejectsBadConfig) {
  EXPECT_THROW(run_parallel_stencil(cfg(4), 2, 1), PreconditionError);
  EXPECT_THROW(run_parallel_stencil(cfg(8), 16, 0), PreconditionError);
  EXPECT_THROW(run_parallel_stencil(cfg(32), 16, 1), PreconditionError);
}

TEST(ParallelIs, RejectsBadConfig) {
  EXPECT_THROW(run_parallel_is(cfg(4), 2, 8), PreconditionError);
  EXPECT_THROW(run_parallel_is(cfg(4), 12, 1), PreconditionError);
  EXPECT_THROW(run_parallel_is(cfg(4), 12, 8, 0), PreconditionError);
}

}  // namespace
}  // namespace bladed::npb
