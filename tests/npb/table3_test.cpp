#include <gtest/gtest.h>

#include <cmath>

#include "arch/cost_model.hpp"
#include "arch/registry.hpp"
#include "npb/suite.hpp"

namespace bladed::npb {
namespace {

/// Shared fixture so the suite is run once for all Table 3 shape checks.
class Table3Shape : public ::testing::Test {
 protected:
  static const std::vector<KernelRun>& kernels() {
    static const std::vector<KernelRun> k = table3_kernels();
    return k;
  }
  static double mops(const KernelRun& k, const char* cpu) {
    return arch::estimate(arch::by_short_name(cpu), k.profile).mops;
  }
  static double geomean_ratio(const char* num, const char* den) {
    double acc = 1.0;
    for (const KernelRun& k : kernels()) acc *= mops(k, num) / mops(k, den);
    return std::pow(acc, 1.0 / static_cast<double>(kernels().size()));
  }
};

TEST_F(Table3Shape, TransmetaPerformsAsWellAsPentiumIII) {
  // §3.4: "the 633-MHz Transmeta Crusoe TM5600 performs as well as the
  // 500-MHz Intel Pentium III".
  const double ratio = geomean_ratio("TM5600", "PIII");
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.45);
}

TEST_F(Table3Shape, TransmetaAboutOneThirdOfAthlon) {
  // §3.4: "... and about one-third as well as the Athlon ...".
  const double ratio = geomean_ratio("AthlonMP", "TM5600");
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(Table3Shape, TransmetaAboutOneThirdOfPower3) {
  // §3.4: "... and Power3 processors."
  const double ratio = geomean_ratio("Power3", "TM5600");
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(Table3Shape, EveryRatePositiveAndBelowPhysicalLimits) {
  for (const KernelRun& k : kernels()) {
    for (const char* cpu : {"AthlonMP", "PIII", "TM5600", "Power3"}) {
      const auto& m = arch::by_short_name(cpu);
      const double r = mops(k, cpu);
      EXPECT_GT(r, 1.0) << k.name << " on " << cpu;
      // Mop/s counts integer ops too, so the bound is issue width x clock.
      EXPECT_LT(r, 6.0 * m.clock.value()) << k.name << " on " << cpu;
    }
  }
}

TEST_F(Table3Shape, SpIsTheSlowestCfdCodePerProcessor) {
  // Scalar pentadiagonal recurrences extract the least ILP — SP trails BT
  // and LU on every machine (true in the published NPB tables as well).
  for (const char* cpu : {"AthlonMP", "PIII", "TM5600", "Power3"}) {
    const double sp = mops(kernels()[1], cpu);
    EXPECT_LT(sp, mops(kernels()[0], cpu)) << cpu;  // < BT
    EXPECT_LT(sp, mops(kernels()[2], cpu)) << cpu;  // < LU
  }
}

TEST_F(Table3Shape, MemoryBoundCodesPunishSlowMemorySystems) {
  // IS (random scatter) gains more from Power3's memory system than EP
  // (register-resident) does.
  const double is_gain = mops(kernels()[5], "Power3") /
                         mops(kernels()[5], "TM5600");
  const double ep_gain = mops(kernels()[4], "Power3") /
                         mops(kernels()[4], "TM5600");
  EXPECT_GT(is_gain, ep_gain);
}

}  // namespace
}  // namespace bladed::npb
