#include "ops/failures.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bladed::ops {
namespace {

TEST(OpsMonteCarlo, MeanFailuresMatchesPoissonRate) {
  // Traditional: 0.25/node-yr x 24 nodes x 4 yr = 24 expected failures.
  const MonteCarloResult mc = simulate(traditional_ops(), 4000, 11);
  EXPECT_NEAR(mc.failures.mean, 24.0, 0.5);
  // Poisson: variance == mean.
  EXPECT_NEAR(mc.failures.stddev * mc.failures.stddev, 24.0, 2.5);
}

TEST(OpsMonteCarlo, MeanCostNearTable5Figures) {
  // Traditional: 24 failures x 4 h x 24 CPUs x $5 = $11,520 expected.
  const MonteCarloResult trad = simulate(traditional_ops(), 4000, 13);
  EXPECT_NEAR(trad.downtime_cost.mean, 11520.0, 600.0);
  // Bladed: 4 failures x 1 h x 1 CPU x $5 = $20 expected.
  const MonteCarloResult blade = simulate(bladed_ops(), 4000, 13);
  EXPECT_NEAR(blade.downtime_cost.mean, 20.0, 3.0);
}

TEST(OpsMonteCarlo, TailRiskIsAlsoOrdersOfMagnitudeApart) {
  const MonteCarloResult trad = simulate(traditional_ops(), 2000, 17);
  const MonteCarloResult blade = simulate(bladed_ops(), 2000, 17);
  EXPECT_GT(trad.p95_cost, 100.0 * blade.p95_cost);
  EXPECT_GE(trad.p95_cost, trad.downtime_cost.mean);
}

TEST(OpsMonteCarlo, HotPluggableKeepsAvailabilityAtOne) {
  const MonteCarloResult blade = simulate(bladed_ops(), 500, 19);
  EXPECT_DOUBLE_EQ(blade.availability.min, 1.0);
  const MonteCarloResult trad = simulate(traditional_ops(), 500, 19);
  EXPECT_LT(trad.availability.mean, 1.0);
  EXPECT_GT(trad.availability.mean, 0.99);  // still "three nines"-ish
}

TEST(OpsMonteCarlo, ZeroFailureRateCostsNothing) {
  OperationsConfig cfg = traditional_ops();
  cfg.failures_per_node_year = 0.0;
  Rng rng(1);
  const Outcome o = simulate_once(cfg, rng);
  EXPECT_EQ(o.failures, 0);
  EXPECT_DOUBLE_EQ(o.downtime_cost.value(), 0.0);
  EXPECT_DOUBLE_EQ(o.availability, 1.0);
}

TEST(OpsMonteCarlo, DeterministicForFixedSeed) {
  const MonteCarloResult a = simulate(traditional_ops(), 100, 42);
  const MonteCarloResult b = simulate(traditional_ops(), 100, 42);
  EXPECT_DOUBLE_EQ(a.downtime_cost.mean, b.downtime_cost.mean);
  EXPECT_EQ(a.trials.size(), b.trials.size());
}

TEST(OpsMonteCarlo, FasterDiagnosisCutsCostProportionally) {
  OperationsConfig slow = traditional_ops();
  OperationsConfig fast = traditional_ops();
  fast.repair.diagnosis = Hours(1.0);  // 4h outage -> 2h outage
  const MonteCarloResult s = simulate(slow, 2000, 23);
  const MonteCarloResult f = simulate(fast, 2000, 23);
  EXPECT_NEAR(f.downtime_cost.mean / s.downtime_cost.mean, 0.5, 0.05);
}

TEST(OpsMonteCarlo, NearZeroMtbfStaysClampedAndFinite) {
  // Absurd failure rate (MTBF of minutes): the outage bookkeeping must stay
  // within the mission horizon and availability must clamp at zero instead
  // of going negative.
  OperationsConfig cfg = traditional_ops();
  cfg.failures_per_node_year = 5000.0;
  cfg.years = 0.01;
  Rng rng(3);
  const Outcome o = simulate_once(cfg, rng);
  const double horizon_h = cfg.years * kHoursPerYear.value();
  EXPECT_GT(o.failures, 0);
  EXPECT_LE(o.wall_clock_outage.value(), horizon_h * o.failures);
  EXPECT_GE(o.availability, 0.0);
  EXPECT_LE(o.availability, 1.0);
  EXPECT_TRUE(std::isfinite(o.downtime_cost.value()));
}

TEST(OpsMonteCarlo, RepairLongerThanMissionIsTruncatedAtTheHorizon) {
  OperationsConfig cfg = traditional_ops();
  cfg.years = 0.001;  // ~8.8 h mission
  cfg.repair.diagnosis = Hours(1000.0);
  cfg.repair.replacement = Hours(0.0);
  const double horizon_h = cfg.years * kHoursPerYear.value();
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Outcome o = simulate_once(cfg, rng);
    // No single outage (and hence the sum of disjoint-start truncations)
    // may bill time past the end of the mission.
    EXPECT_LE(o.wall_clock_outage.value(),
              horizon_h * std::max(o.failures, 1));
    EXPECT_GE(o.availability, 0.0);
  }
}

TEST(OpsMonteCarlo, HotAndNonHotShareTheSameArrivalStream) {
  // The failure arrivals depend only on (seed, rate), never on the repair
  // policy, so the two regimes must see identical failure counts per trial
  // and differ only in what each failure costs.
  OperationsConfig hot = traditional_ops();
  hot.repair.hot_pluggable = true;
  OperationsConfig cold = traditional_ops();
  cold.repair.hot_pluggable = false;
  const MonteCarloResult h = simulate(hot, 200, 77);
  const MonteCarloResult c = simulate(cold, 200, 77);
  ASSERT_EQ(h.trials.size(), c.trials.size());
  for (std::size_t i = 0; i < h.trials.size(); ++i)
    EXPECT_EQ(h.trials[i].failures, c.trials[i].failures);
  // Whole-cluster outages cost `nodes` times the hot-pluggable ones.
  EXPECT_NEAR(c.downtime_cost.mean / h.downtime_cost.mean,
              static_cast<double>(cold.nodes), 1e-9);
}

TEST(OpsMonteCarlo, PoissonArrivalsAreDeterministicPerTrial) {
  const MonteCarloResult a = simulate(traditional_ops(), 50, 2002);
  const MonteCarloResult b = simulate(traditional_ops(), 50, 2002);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].failures, b.trials[i].failures);
    EXPECT_DOUBLE_EQ(a.trials[i].wall_clock_outage.value(),
                     b.trials[i].wall_clock_outage.value());
  }
}

TEST(OpsMonteCarlo, RejectsBadArguments) {
  OperationsConfig cfg = traditional_ops();
  cfg.nodes = 0;
  Rng rng(1);
  EXPECT_THROW(simulate_once(cfg, rng), PreconditionError);
  EXPECT_THROW(simulate(traditional_ops(), 0, 1), PreconditionError);
}

}  // namespace
}  // namespace bladed::ops
