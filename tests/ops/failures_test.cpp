#include "ops/failures.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bladed::ops {
namespace {

TEST(OpsMonteCarlo, MeanFailuresMatchesPoissonRate) {
  // Traditional: 0.25/node-yr x 24 nodes x 4 yr = 24 expected failures.
  const MonteCarloResult mc = simulate(traditional_ops(), 4000, 11);
  EXPECT_NEAR(mc.failures.mean, 24.0, 0.5);
  // Poisson: variance == mean.
  EXPECT_NEAR(mc.failures.stddev * mc.failures.stddev, 24.0, 2.5);
}

TEST(OpsMonteCarlo, MeanCostNearTable5Figures) {
  // Traditional: 24 failures x 4 h x 24 CPUs x $5 = $11,520 expected.
  const MonteCarloResult trad = simulate(traditional_ops(), 4000, 13);
  EXPECT_NEAR(trad.downtime_cost.mean, 11520.0, 600.0);
  // Bladed: 4 failures x 1 h x 1 CPU x $5 = $20 expected.
  const MonteCarloResult blade = simulate(bladed_ops(), 4000, 13);
  EXPECT_NEAR(blade.downtime_cost.mean, 20.0, 3.0);
}

TEST(OpsMonteCarlo, TailRiskIsAlsoOrdersOfMagnitudeApart) {
  const MonteCarloResult trad = simulate(traditional_ops(), 2000, 17);
  const MonteCarloResult blade = simulate(bladed_ops(), 2000, 17);
  EXPECT_GT(trad.p95_cost, 100.0 * blade.p95_cost);
  EXPECT_GE(trad.p95_cost, trad.downtime_cost.mean);
}

TEST(OpsMonteCarlo, HotPluggableKeepsAvailabilityAtOne) {
  const MonteCarloResult blade = simulate(bladed_ops(), 500, 19);
  EXPECT_DOUBLE_EQ(blade.availability.min, 1.0);
  const MonteCarloResult trad = simulate(traditional_ops(), 500, 19);
  EXPECT_LT(trad.availability.mean, 1.0);
  EXPECT_GT(trad.availability.mean, 0.99);  // still "three nines"-ish
}

TEST(OpsMonteCarlo, ZeroFailureRateCostsNothing) {
  OperationsConfig cfg = traditional_ops();
  cfg.failures_per_node_year = 0.0;
  Rng rng(1);
  const Outcome o = simulate_once(cfg, rng);
  EXPECT_EQ(o.failures, 0);
  EXPECT_DOUBLE_EQ(o.downtime_cost.value(), 0.0);
  EXPECT_DOUBLE_EQ(o.availability, 1.0);
}

TEST(OpsMonteCarlo, DeterministicForFixedSeed) {
  const MonteCarloResult a = simulate(traditional_ops(), 100, 42);
  const MonteCarloResult b = simulate(traditional_ops(), 100, 42);
  EXPECT_DOUBLE_EQ(a.downtime_cost.mean, b.downtime_cost.mean);
  EXPECT_EQ(a.trials.size(), b.trials.size());
}

TEST(OpsMonteCarlo, FasterDiagnosisCutsCostProportionally) {
  OperationsConfig slow = traditional_ops();
  OperationsConfig fast = traditional_ops();
  fast.repair.diagnosis = Hours(1.0);  // 4h outage -> 2h outage
  const MonteCarloResult s = simulate(slow, 2000, 23);
  const MonteCarloResult f = simulate(fast, 2000, 23);
  EXPECT_NEAR(f.downtime_cost.mean / s.downtime_cost.mean, 0.5, 0.05);
}

TEST(OpsMonteCarlo, RejectsBadArguments) {
  OperationsConfig cfg = traditional_ops();
  cfg.nodes = 0;
  Rng rng(1);
  EXPECT_THROW(simulate_once(cfg, rng), PreconditionError);
  EXPECT_THROW(simulate(traditional_ops(), 0, 1), PreconditionError);
}

}  // namespace
}  // namespace bladed::ops
