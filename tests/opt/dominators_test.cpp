/// Golden tests for the dominator tree and natural-loop discovery over the
/// built-in corpus programs (cms/programs.hpp) plus crafted shapes: the
/// structures LICM trusts. Block indices in the assertions follow from the
/// leader analysis in check/cfg.hpp; each test spells out the expected
/// block layout first so the goldens stay readable.

#include "check/dominators.hpp"

#include <gtest/gtest.h>

#include "cms/programs.hpp"

namespace bladed::check {
namespace {

using cms::Instr;
using cms::Op;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

TEST(Dominators, DaxpyIsOneSelfLoop) {
  // daxpy: B0 = [0,3) prologue, B1 = [3,10) loop body (blt 9 -> 3),
  // B2 = [10,11) halt.
  const cms::Program p = cms::daxpy_program(32);
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const DomTree dom = DomTree::build(cfg);
  EXPECT_EQ(dom.idom(0), DomTree::kNone);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 1u);
  EXPECT_TRUE(dom.dominates(0, 2));
  EXPECT_TRUE(dom.dominates(1, 1));
  EXPECT_FALSE(dom.dominates(2, 1));

  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1u);
  EXPECT_EQ(loops[0].blocks, (std::vector<std::size_t>{1}));
  EXPECT_EQ(loops[0].latches, (std::vector<std::size_t>{1}));
  EXPECT_EQ(cfg.blocks()[loops[0].header].begin, 3u);
}

TEST(Dominators, BranchyLoopSpansBothArms) {
  // branchy: B0 = [0,5), B1 = [5,6) header (bne), B2 = [6,10) even arm,
  // B3 = [10,13) odd arm, B4 = [13,16) join + latch (blt 15 -> 5),
  // B5 = [16,17) halt.
  const cms::Program p = cms::branchy_program(16);
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 6u);
  const DomTree dom = DomTree::build(cfg);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 1u);
  EXPECT_EQ(dom.idom(3), 1u);
  // The join is dominated by the header, not by either arm.
  EXPECT_EQ(dom.idom(4), 1u);
  EXPECT_TRUE(dom.dominates(1, 4));
  EXPECT_FALSE(dom.dominates(2, 4));
  EXPECT_FALSE(dom.dominates(3, 4));

  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1u);
  EXPECT_EQ(loops[0].blocks, (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_EQ(loops[0].latches, (std::vector<std::size_t>{4}));
  EXPECT_TRUE(loops[0].contains(2));
  EXPECT_FALSE(loops[0].contains(5));
}

TEST(Dominators, NrRsqrtAndManyBlocksLoopHeaders) {
  {
    const cms::Program p = cms::nr_rsqrt_program(8);
    const Cfg cfg = Cfg::build(p);
    const std::vector<NaturalLoop> loops =
        find_natural_loops(cfg, DomTree::build(cfg));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(cfg.blocks()[loops[0].header].begin, 6u);
  }
  {
    const cms::Program p = cms::many_blocks_program(8, 5);
    const Cfg cfg = Cfg::build(p);
    const std::vector<NaturalLoop> loops =
        find_natural_loops(cfg, DomTree::build(cfg));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(cfg.blocks()[loops[0].header].begin, 4u);
    // The round-robin loop contains every chunk block plus the tail latch.
    EXPECT_EQ(loops[0].blocks.size(), 9u);
    ASSERT_EQ(loops[0].latches.size(), 1u);
    EXPECT_TRUE(loops[0].contains(loops[0].latches[0]));
  }
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  // 0-1 fork, 2-3 left arm, 4 right arm, 5 join/halt.
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                          make(Op::kBne, 1, 0, 0, 4),
                          make(Op::kAddi, 2, 0, 0, 1),
                          make(Op::kJmp, 0, 0, 0, 5),
                          make(Op::kAddi, 2, 0, 0, 2),
                          make(Op::kHalt)};
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 4u);
  const DomTree dom = DomTree::build(cfg);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 0u);
  EXPECT_EQ(dom.idom(3), 0u);
  EXPECT_TRUE(find_natural_loops(cfg, dom).empty());
}

TEST(Dominators, NestedLoopsShareInnerBlock) {
  // B1 = [2,3) outer header, B2 = [3,5) inner self-loop, B3 = [5,7) outer
  // latch, so the outer loop is {1,2,3} and the inner {2}.
  const cms::Program p = {make(Op::kMovi, 1, 0, 0, 0),   // 0
                          make(Op::kMovi, 5, 0, 0, 2),   // 1: limits
                          make(Op::kMovi, 2, 0, 0, 0),   // 2: outer header
                          make(Op::kAddi, 2, 2, 0, 1),   // 3: inner header
                          make(Op::kBlt, 2, 5, 0, 3),    // 4: inner latch
                          make(Op::kAddi, 1, 1, 0, 1),   // 5
                          make(Op::kBlt, 1, 5, 0, 2),    // 6: outer latch
                          make(Op::kHalt)};              // 7
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 5u);
  const DomTree dom = DomTree::build(cfg);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].header, 1u);  // sorted by header: outer first
  EXPECT_EQ(loops[0].blocks, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(loops[1].header, 2u);
  EXPECT_EQ(loops[1].blocks, (std::vector<std::size_t>{2}));
}

TEST(Dominators, UnreachableBlockIsDominatedByNothing) {
  const cms::Program p = {make(Op::kJmp, 0, 0, 0, 2),
                          make(Op::kMovi, 1, 0, 0, 7),  // jumped over
                          make(Op::kHalt)};
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const DomTree dom = DomTree::build(cfg);
  EXPECT_EQ(dom.idom(1), DomTree::kNone);
  EXPECT_FALSE(dom.dominates(0, 1));
  EXPECT_FALSE(dom.dominates(1, 1));  // unreachable: not even reflexive
  EXPECT_TRUE(find_natural_loops(cfg, dom).empty());
}

TEST(Dominators, WholeCorpusHeadersDominateTheirLatches) {
  for (const cms::NamedProgram& entry : cms::opt_corpus()) {
    const Cfg cfg = Cfg::build(entry.program);
    const DomTree dom = DomTree::build(cfg);
    for (const NaturalLoop& loop : find_natural_loops(cfg, dom)) {
      for (const std::size_t latch : loop.latches) {
        EXPECT_TRUE(dom.dominates(loop.header, latch)) << entry.name;
        EXPECT_TRUE(loop.contains(latch)) << entry.name;
      }
      for (const std::size_t b : loop.blocks) {
        EXPECT_TRUE(dom.dominates(loop.header, b)) << entry.name;
      }
    }
  }
}

}  // namespace
}  // namespace bladed::check
