/// Equivalence fuzzing for the optimizer: 1000 seeded random programs are
/// pushed through the full pipeline at level 2 with the pipeline's own
/// proof obligations DISABLED (verify = false), then equivalence and
/// static cleanliness are asserted externally. This tests that the passes
/// themselves are sound, not that the rollback safety net catches them; a
/// separate test runs with verify = true and requires zero rejections.
///
/// The generator emits terminating-by-construction programs: a counted
/// outer loop (r1/r2 are reserved for the counter and limit), chunks of
/// random integer/fp arithmetic, r0-based in-bounds memory traffic (r0 is
/// never a destination, so it stays 0), the `kAddi x, y, 0` copy idiom,
/// deliberately dead stores, and forward conditional branches — the
/// control shapes every pass has to reason about.

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/differential.hpp"
#include "cms/isa.hpp"
#include "opt/opt.hpp"
#include "common/rng.hpp"

namespace bladed::opt {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

constexpr std::size_t kMemDoubles = 256;

std::uint64_t pick(Rng& rng, std::uint64_t n) { return rng.next_u64() % n; }

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

/// Integer destinations avoid r0 (zero base for addressing) and r1/r2
/// (loop counter and limit).
int int_dest(Rng& rng) { return 3 + static_cast<int>(pick(rng, 5)); }
int int_src(Rng& rng) { return static_cast<int>(pick(rng, 8)); }
int fp_reg(Rng& rng) { return static_cast<int>(pick(rng, 8)); }

/// One random non-branch instruction.
Instr random_op(Rng& rng) {
  switch (pick(rng, 10)) {
    case 0:
      return make(Op::kMovi, int_dest(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, 64)));
    case 1:
      return make(Op::kAddi, int_dest(rng), int_src(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 8)));
    case 2:  // the copy idiom copy-propagation looks for
      return make(Op::kAddi, int_dest(rng), int_src(rng), 0, 0);
    case 3:
      return make(Op::kAdd, int_dest(rng), int_src(rng), int_src(rng));
    case 4:
      return make(Op::kSub, int_dest(rng), int_src(rng), int_src(rng));
    case 5:
      return make(Op::kMuli, int_dest(rng), int_src(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 4)));
    case 6: {
      Instr in = make(Op::kFmovi, fp_reg(rng));
      in.imm_f = rng.uniform(-2.0, 2.0);
      return in;
    }
    case 7:
      return make(Op::kFadd, fp_reg(rng), fp_reg(rng), fp_reg(rng));
    case 8:
      return make(Op::kFload, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles)));
    default:
      return make(Op::kFstore, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles)));
  }
}

Program random_program(Rng& rng) {
  Program p;
  const std::int64_t rounds = 1 + static_cast<std::int64_t>(pick(rng, 6));
  p.push_back(make(Op::kMovi, 1, 0, 0, 0));
  p.push_back(make(Op::kMovi, 2, 0, 0, rounds));
  const std::int64_t loop = static_cast<std::int64_t>(p.size());

  const std::size_t chunks = 1 + pick(rng, 4);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (pick(rng, 2) == 0) {
      // A forward conditional branch skipping a small region: emit the
      // branch, then exactly `skip` instructions it may jump over.
      const std::size_t skip = 1 + pick(rng, 3);
      const Op op = pick(rng, 2) == 0 ? Op::kBlt : Op::kBne;
      p.push_back(make(op, int_src(rng), int_src(rng), 0,
                       static_cast<std::int64_t>(p.size() + 1 + skip)));
      for (std::size_t i = 0; i < skip; ++i) p.push_back(random_op(rng));
    }
    const std::size_t len = 2 + pick(rng, 6);
    for (std::size_t i = 0; i < len; ++i) p.push_back(random_op(rng));
    if (pick(rng, 3) == 0) {
      // A deliberately dead fp write: same register immediately rewritten.
      const int f = fp_reg(rng);
      Instr dead = make(Op::kFmovi, f);
      dead.imm_f = 42.0;
      p.push_back(dead);
      p.push_back(make(Op::kFload, f, 0, 0,
                       static_cast<std::int64_t>(pick(rng, kMemDoubles))));
    }
  }

  p.push_back(make(Op::kAddi, 1, 1, 0, 1));
  p.push_back(make(Op::kBlt, 1, 2, 0, loop));
  p.push_back(make(Op::kHalt));
  return p;
}

class OptFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptFuzz, OptimizedProgramsStayEquivalent) {
  Rng rng(0xf0053 + static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    const Program p = random_program(rng);
    const std::size_t errors_before =
        check::check_program(p, kMemDoubles).error_count();

    OptOptions opts;
    opts.level = 2;
    opts.mem_doubles = kMemDoubles;
    opts.verify = false;  // test the passes, not the safety net
    const OptResult res = optimize(p, opts);

    // Soundness asserted externally: no new static errors, and the
    // interpreter cannot tell the two programs apart.
    EXPECT_LE(check::check_program(res.program, kMemDoubles).error_count(),
              errors_before)
        << "seed " << GetParam() << " trial " << trial;
    check::DifferentialOptions dopt;
    dopt.mem_doubles = kMemDoubles;
    const check::Report rep =
        check::differential_equivalence(p, res.program, dopt);
    EXPECT_TRUE(rep.ok()) << "seed " << GetParam() << " trial " << trial
                          << "\n" << rep.to_string();

    // With the proofs enabled every pass application must also be accepted
    // (a rejection would mean pass and proof disagree). Sampled to keep
    // the suite fast.
    if (trial == 0) {
      opts.verify = true;
      const OptResult verified = optimize(p, opts);
      for (const PassDelta& d : verified.deltas) {
        EXPECT_FALSE(d.rejected)
            << "seed " << GetParam() << ": " << d.pass << ": " << d.note;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace bladed::opt
