/// Unit tests for the individual optimizer passes (opt/passes.hpp) and the
/// analyses that drive them: SCCP constant lattices, reaching definitions,
/// branch-refined intervals, then one test block per pass pinning both the
/// positive rewrite and the soundness refusals (the diamond that broke the
/// reaching-set formulation of copy propagation, the unproven kFload the
/// dead-store pass must keep, the aliasing store LICM must respect).

#include "opt/passes.hpp"

#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "check/intervals.hpp"
#include "check/reaching.hpp"
#include "check/sccp.hpp"
#include "cms/programs.hpp"

namespace bladed::opt {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

Instr makef(Op op, int a, double imm) {
  Instr in;
  in.op = op;
  in.a = a;
  in.imm_f = imm;
  return in;
}

/// Every pass test's safety net: the rewritten program must be
/// input-equivalent to the original.
void expect_equivalent(const Program& original, const Program& optimized) {
  const check::Report rep =
      check::differential_equivalence(original, optimized);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

bool same_program(const Program& a, const Program& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].c != b[i].c || a[i].imm_i != b[i].imm_i ||
        a[i].imm_f != b[i].imm_f) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------- analyses

TEST(Sccp, StraightLineConstantsFold) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kAddi, 2, 1, 0, 3),
                     make(Op::kHalt)};
  const check::Cfg cfg = check::Cfg::build(p);
  const check::Sccp sccp = check::Sccp::build(p, cfg);
  // Entry: the machine zero-initializes, so everything starts constant 0.
  EXPECT_TRUE(sccp.at(0).r[7].is_const());
  EXPECT_EQ(sccp.at(0).r[7].i, 0);
  const check::SccpState at_halt = sccp.at(2);
  ASSERT_TRUE(at_halt.r[2].is_const());
  EXPECT_EQ(at_halt.r[2].i, 8);
}

TEST(Sccp, ConstantBranchKeepsDeadArmNonExecutable) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 1),
                     make(Op::kBne, 1, 0, 0, 4),  // always taken
                     make(Op::kMovi, 2, 0, 0, 9),  // dead arm
                     make(Op::kJmp, 0, 0, 0, 5),
                     make(Op::kMovi, 2, 0, 0, 7),
                     make(Op::kHalt)};
  const check::Cfg cfg = check::Cfg::build(p);
  const check::Sccp sccp = check::Sccp::build(p, cfg);
  EXPECT_FALSE(sccp.executable(cfg.block_of(2)));
  EXPECT_TRUE(sccp.executable(cfg.block_of(4)));
  // Only the feasible edge joins at the halt: r2 is a crisp constant 7,
  // which plain reachability-based propagation could not conclude.
  const check::SccpState at_halt = sccp.at(5);
  ASSERT_TRUE(at_halt.r[2].is_const());
  EXPECT_EQ(at_halt.r[2].i, 7);
}

TEST(Sccp, LoadsAndJoinsGoVarying) {
  const Program p = {make(Op::kFload, 1, 0, 0, 0),
                     make(Op::kHalt)};
  const check::Cfg cfg = check::Cfg::build(p);
  const check::Sccp sccp = check::Sccp::build(p, cfg);
  EXPECT_EQ(sccp.at(1).f[1].kind, check::ConstVal::Kind::kVarying);
}

TEST(ReachingDefs, JoinMergesArmAndEntryDefinitions) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 1),
                     make(Op::kBne, 1, 0, 0, 3),   // may skip pc 2
                     make(Op::kMovi, 2, 0, 0, 5),
                     make(Op::kAdd, 3, 2, 2),
                     make(Op::kHalt)};
  const check::Cfg cfg = check::Cfg::build(p);
  const check::ReachingDefs rd = check::ReachingDefs::build(p, cfg);
  // Before pc 0 the only definition of r1 is the synthetic entry def.
  EXPECT_EQ(rd.defs_of(0, 1), (std::vector<std::size_t>{rd.entry_def(1)}));
  // At the join both the real def at pc 2 and the entry def of r2 reach.
  EXPECT_EQ(rd.defs_of(3, 2),
            (std::vector<std::size_t>{2, rd.entry_def(2)}));
}

TEST(Intervals, BranchRefinementBoundsInductionVariable) {
  // daxpy's store `y[i] = f3` at pc 7 has address r1 + 32 with r1 the loop
  // counter: without the blt-edge refinement r1 would widen to +inf, with
  // it the address interval is exactly the y half of the working set.
  const Program p = cms::daxpy_program(32);
  const check::Cfg cfg = check::Cfg::build(p);
  const check::Intervals iv = check::Intervals::build(p, cfg);
  const check::Interval addr = iv.address_at(7);
  EXPECT_EQ(addr.lo, 32);
  EXPECT_EQ(addr.hi, 63);
}

// ------------------------------------------------------------------ passes

TEST(ConstantFold, FoldsZeroBaseAddiToMovi) {
  // naive_daxpy sets up i and the limit with kAddi off r0 — SCCP proves
  // both constant and the pass rewrites them to kMovi.
  const Program p = cms::naive_daxpy_program(32);
  bool changed = false;
  const Program q = pass_constant_fold(p, &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(q[2].op, Op::kMovi);
  EXPECT_EQ(q[2].imm_i, 0);
  EXPECT_EQ(q[3].op, Op::kMovi);
  EXPECT_EQ(q[3].imm_i, 32);
  expect_equivalent(p, q);
}

TEST(ConstantFold, RewritesConstantBranchToJump) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 1),
                     make(Op::kBne, 1, 0, 0, 4),
                     make(Op::kMovi, 2, 0, 0, 9),
                     make(Op::kJmp, 0, 0, 0, 5),
                     make(Op::kMovi, 2, 0, 0, 7),
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_constant_fold(p, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(q[1].op, Op::kJmp);
  EXPECT_EQ(q[1].imm_i, 4);
  expect_equivalent(p, q);
}

TEST(ConstantFold, LeavesVaryingValuesAlone) {
  const Program p = cms::daxpy_program(32);
  bool changed = false;
  const Program q = pass_constant_fold(p, &changed);
  // daxpy already uses kMovi/kFmovi for its constants and everything else
  // depends on memory: nothing to fold.
  EXPECT_FALSE(changed);
  EXPECT_EQ(q.size(), p.size());
}

TEST(Unreachable, DropsJumpedOverCodeAndJumpChains) {
  const Program p = {make(Op::kJmp, 0, 0, 0, 2),
                     make(Op::kMovi, 1, 0, 0, 7),  // unreachable
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_unreachable(p, &changed);
  EXPECT_TRUE(changed);
  // The dead kMovi goes first; the jump then targets the next instruction
  // and is dropped too.
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].op, Op::kHalt);
  expect_equivalent(p, q);
}

TEST(Unreachable, RetargetsBranchesPastErasedCode) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 1),
                     make(Op::kJmp, 0, 0, 0, 4),
                     make(Op::kMovi, 2, 0, 0, 9),  // unreachable
                     make(Op::kMovi, 2, 0, 0, 8),  // unreachable
                     make(Op::kBlt, 0, 1, 0, 6),   // taken: r0 < r1
                     make(Op::kMovi, 3, 0, 0, 5),
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_unreachable(p, &changed);
  EXPECT_TRUE(changed);
  // Erasing pcs 2-3 turns the kJmp into a jump-to-next, which the cleanup
  // then drops too; the surviving blt is retargeted across both erasures.
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q[1].op, Op::kBlt);
  EXPECT_EQ(q[1].imm_i, 3);
  EXPECT_EQ(q[2].op, Op::kMovi);
  EXPECT_EQ(q[2].a, 3);
  expect_equivalent(p, q);
}

TEST(CopyProp, RewritesReadsThroughAvailableCopy) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kAddi, 2, 1, 0, 0),  // r2 = r1
                     make(Op::kAdd, 3, 2, 2),
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_copy_prop(p, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(q[2].b, 1);
  EXPECT_EQ(q[2].c, 1);
  expect_equivalent(p, q);
}

TEST(CopyProp, DiamondKillingSourceBlocksPropagation) {
  // Regression for the unsound reaching-def-set formulation: the copy
  // r2 = r1 reaches the join on both arms, but one arm redefines r1, so a
  // read of r2 at the join must NOT be rewritten to r1. Available-copies
  // is a must-analysis and kills the pair on that arm.
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kAddi, 2, 1, 0, 0),  // r2 = r1
                     make(Op::kMovi, 4, 0, 0, 1),
                     make(Op::kBne, 4, 0, 0, 6),   // skip the redefinition
                     make(Op::kMovi, 1, 0, 0, 9),  // kills the copy
                     make(Op::kJmp, 0, 0, 0, 6),
                     make(Op::kAdd, 3, 2, 2),      // join: keep reading r2
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_copy_prop(p, &changed);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(q[6].b, 2);
  EXPECT_EQ(q[6].c, 2);
  expect_equivalent(p, q);
}

TEST(CopyProp, RedefinedDestKillsCopy) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kAddi, 2, 1, 0, 0),  // r2 = r1
                     make(Op::kAddi, 2, 2, 0, 1),  // r2 = r2 + 1: not a copy
                     make(Op::kAdd, 3, 2, 2),      // must keep reading r2
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_copy_prop(p, &changed);
  // The read at pc 2 still sees the copy and is rewritten to r1, but the
  // write there kills the pair: pc 3 must keep reading r2.
  EXPECT_TRUE(changed);
  EXPECT_EQ(q[2].b, 1);
  EXPECT_EQ(q[3].b, 2);
  EXPECT_EQ(q[3].c, 2);
  expect_equivalent(p, q);
}

TEST(DeadStore, RemovesOverwrittenWrite) {
  const Program p = {makef(Op::kFmovi, 1, 1.0),  // dead: overwritten below
                     makef(Op::kFmovi, 1, 2.0),
                     make(Op::kFstore, 1, 0, 0, 0),
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_dead_store(p, 4096, &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0].op, Op::kFmovi);
  EXPECT_EQ(q[0].imm_f, 2.0);
  expect_equivalent(p, q);
}

TEST(DeadStore, KeepsWritesLiveAtExit) {
  // The final machine state is observable: a write never overwritten is
  // live-out of the exit and must survive even though nothing reads it.
  const Program p = {makef(Op::kFmovi, 1, 1.0), make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_dead_store(p, 4096, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(q.size(), 2u);
}

TEST(DeadStore, KeepsDeadLoadWithUnprovenAddress) {
  // f1 is overwritten before any read, but the load's address (5000 with
  // 4096 doubles of memory) traps — removing it would change behaviour.
  const Program trapping = {make(Op::kFload, 1, 0, 0, 5000),
                            makef(Op::kFmovi, 1, 0.0),
                            make(Op::kFstore, 1, 0, 0, 0),
                            make(Op::kHalt)};
  bool changed = false;
  Program q = pass_dead_store(trapping, 4096, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(q.size(), trapping.size());

  // Same shape with a proven in-bounds address: now removable.
  Program fine = trapping;
  fine[0].imm_i = 5;
  changed = false;
  q = pass_dead_store(fine, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(q.size(), fine.size() - 1);
  expect_equivalent(fine, q);
}

TEST(Licm, HoistsInvariantLoadOutOfNaiveDaxpy) {
  // naive_daxpy re-loads the scalar `a` from mem[2n] on every iteration;
  // LICM moves the load ahead of the loop by retargeting the back edge.
  const Program p = cms::naive_daxpy_program(32);
  bool changed = false;
  const Program q = pass_licm(p, 4096, &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(q[4].op, Op::kFload);  // the load stays at pc 4...
  EXPECT_EQ(q[13].op, Op::kBlt);
  EXPECT_EQ(q[13].imm_i, 5);       // ...but the loop now re-enters past it
  expect_equivalent(p, q);
}

TEST(Licm, PossibleAliasBlocksHoist) {
  // The loop stores through r1 in [0, 8) and the candidate loads mem[0]:
  // the intervals overlap, so the load must stay inside the loop.
  const Program aliasing = {make(Op::kMovi, 1, 0, 0, 0),
                            make(Op::kMovi, 2, 0, 0, 8),
                            make(Op::kFload, 1, 0, 0, 0),   // candidate
                            make(Op::kFstore, 1, 1, 0, 0),  // may hit mem[0]
                            make(Op::kAddi, 1, 1, 0, 1),
                            make(Op::kBlt, 1, 2, 0, 2),
                            make(Op::kHalt)};
  bool changed = false;
  Program q = pass_licm(aliasing, 4096, &changed);
  EXPECT_FALSE(changed);
  EXPECT_TRUE(same_program(q, aliasing));

  // Shifting the stores to [16, 24) makes them provably disjoint from the
  // load; the hoist goes through.
  Program disjoint = aliasing;
  disjoint[3].imm_i = 16;
  changed = false;
  q = pass_licm(disjoint, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(q[5].imm_i, 3);
  expect_equivalent(disjoint, q);
}

TEST(Licm, LoopVariantBaseBlocksHoist) {
  // The candidate's base register is the induction variable itself:
  // hoisting would freeze the address at its entry value.
  const Program p = {make(Op::kMovi, 1, 0, 0, 0),
                     make(Op::kMovi, 2, 0, 0, 8),
                     make(Op::kFload, 1, 1, 0, 0),    // f1 = mem[r1]
                     make(Op::kFstore, 1, 1, 0, 16),
                     make(Op::kAddi, 1, 1, 0, 1),
                     make(Op::kBlt, 1, 2, 0, 2),
                     make(Op::kHalt)};
  bool changed = false;
  const Program q = pass_licm(p, 4096, &changed);
  EXPECT_FALSE(changed);
  EXPECT_TRUE(same_program(q, p));
}

}  // namespace
}  // namespace bladed::opt
