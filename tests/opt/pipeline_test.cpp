/// End-to-end tests for the verified pipeline (opt/opt.hpp): opt_level
/// semantics, the proof obligations over the whole corpus, and the engine
/// integration — an engine running at opt_level 2 must finish in the exact
/// machine state of an unoptimized run, in fewer cycles on the naive
/// programs the optimizer exists for.

#include "opt/opt.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "check/check.hpp"
#include "check/differential.hpp"
#include "cms/programs.hpp"
#include "common/rng.hpp"

namespace bladed::opt {
namespace {

cms::MachineState seeded_state(std::size_t mem_doubles) {
  cms::MachineState st(mem_doubles);
  Rng rng(0xb1ade);
  for (double& cell : st.mem) cell = rng.uniform(-1.0, 1.0);
  return st;
}

TEST(Pipeline, LevelZeroIsIdentity) {
  const cms::Program p = cms::naive_daxpy_program(32);
  OptOptions opts;
  opts.level = 0;
  const OptResult res = optimize(p, opts);
  EXPECT_FALSE(res.changed());
  EXPECT_EQ(res.sweeps, 0u);
  EXPECT_EQ(res.program.size(), p.size());
}

TEST(Pipeline, NaiveDaxpyShrinksAndStaysEquivalent) {
  const cms::Program p = cms::naive_daxpy_program(32);
  OptOptions opts;
  opts.level = 2;
  const OptResult res = optimize(p, opts);
  EXPECT_TRUE(res.changed());
  // The dead kFmovi in the loop body is removed; folding, copy propagation
  // and LICM rewrite in place.
  EXPECT_LT(res.program.size(), p.size());
  for (const PassDelta& d : res.deltas) {
    EXPECT_FALSE(d.rejected) << d.pass << ": " << d.note;
  }
  const check::Report rep = check::differential_equivalence(p, res.program);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Pipeline, WholeCorpusOptimizesWithoutRejections) {
  for (const cms::NamedProgram& entry : cms::opt_corpus()) {
    OptOptions opts;
    opts.level = 2;
    opts.mem_doubles = entry.mem_doubles;
    const OptResult res = optimize(entry.program, opts);
    for (const PassDelta& d : res.deltas) {
      EXPECT_FALSE(d.rejected)
          << entry.name << " " << d.pass << ": " << d.note;
    }
    // The pipeline's own proofs ran (verify defaults on); re-establish both
    // independently: no new static errors, bit-identical behaviour.
    const std::size_t errors_before =
        check::check_program(entry.program, entry.mem_doubles).error_count();
    EXPECT_LE(
        check::check_program(res.program, entry.mem_doubles).error_count(),
        errors_before)
        << entry.name;
    check::DifferentialOptions dopt;
    dopt.mem_doubles = entry.mem_doubles;
    const check::Report rep =
        check::differential_equivalence(entry.program, res.program, dopt);
    EXPECT_TRUE(rep.ok()) << entry.name << "\n" << rep.to_string();
  }
}

TEST(Pipeline, FixpointIsStable) {
  // Optimizing an already-optimized program must find nothing more.
  OptOptions opts;
  opts.level = 2;
  const OptResult once = optimize(cms::naive_daxpy_program(32), opts);
  const OptResult twice = optimize(once.program, opts);
  EXPECT_FALSE(twice.changed());
  EXPECT_EQ(twice.program.size(), once.program.size());
}

TEST(Pipeline, EngineRunsOptimizedProgramBitIdentical) {
  const cms::Program p = cms::naive_daxpy_program(256);

  cms::MorphingEngine base;
  cms::MachineState st0 = seeded_state(4096);
  const cms::MorphingStats s0 = base.run(p, st0);

  cms::MorphingConfig cfg;
  cfg.opt_level = 2;
  cfg.optimizer = engine_optimizer();
  cfg.verify_translations = true;  // optimized regions pass the same gate
  cms::MorphingEngine opt_engine(cfg);
  cms::MachineState st1 = seeded_state(4096);
  const cms::MorphingStats s1 = opt_engine.run(p, st1);

  for (int i = 0; i < 16; ++i) EXPECT_EQ(st0.r[i], st1.r[i]) << "r" << i;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::memcmp(&st0.f[i], &st1.f[i], sizeof(double)), 0)
        << "f" << i;
  }
  ASSERT_EQ(st0.mem.size(), st1.mem.size());
  EXPECT_EQ(std::memcmp(st0.mem.data(), st1.mem.data(),
                        st0.mem.size() * sizeof(double)),
            0);
  // The acceptance bar for the whole exercise: a real cycle win, not a
  // wash. naive_daxpy drops well past 10% (see bench/ablation section f).
  EXPECT_LT(s1.total_cycles, s0.total_cycles * 9 / 10);
}

TEST(Pipeline, EngineLevelZeroIgnoresOptimizer) {
  const cms::Program p = cms::naive_daxpy_program(32);
  cms::MorphingConfig cfg;
  cfg.opt_level = 0;
  cfg.optimizer = engine_optimizer();
  cms::MorphingEngine e(cfg);
  cms::MachineState st = seeded_state(4096);

  cms::MorphingEngine base;
  cms::MachineState st_base = seeded_state(4096);
  EXPECT_EQ(e.run(p, st).total_cycles, base.run(p, st_base).total_cycles);
}

}  // namespace
}  // namespace bladed::opt
