/// Unit tests for the prove-licensed optimizer passes added with
/// bladed::prove: redundant-load elimination (same-register reloads,
/// store-to-load forwarding of facts, the alias-oracle kill rules) and the
/// dead *memory* store extension of pass_dead_store. Each positive rewrite
/// is pinned alongside the refusal that keeps it sound.

#include "opt/passes.hpp"

#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "cms/programs.hpp"

namespace bladed::opt {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

Instr makef(Op op, int a, double imm) {
  Instr in;
  in.op = op;
  in.a = a;
  in.imm_f = imm;
  return in;
}

void expect_equivalent(const Program& original, const Program& optimized) {
  const check::Report rep =
      check::differential_equivalence(original, optimized);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

std::size_t count_op(const Program& p, Op op) {
  std::size_t n = 0;
  for (const Instr& in : p) n += in.op == op ? 1 : 0;
  return n;
}

// ------------------------------------------------- redundant-load

TEST(RedundantLoad, DeletesSameRegisterReload) {
  const Program p = cms::naive_stencil_program(8);
  bool changed = false;
  const Program out = pass_redundant_load(p, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(out.size(), p.size() - 1);
  EXPECT_EQ(count_op(out, Op::kFload), count_op(p, Op::kFload) - 1);
  expect_equivalent(p, out);
}

TEST(RedundantLoad, StoreForwardsToSameRegisterReload) {
  const Program p = {
      make(Op::kMovi, 3, 0, 0, 5),     // 0
      makef(Op::kFmovi, 1, 2.0),       // 1
      make(Op::kFstore, 1, 3, 0, 0),   // 2: mem[5] = f1
      make(Op::kFload, 1, 3, 0, 0),    // 3: f1 = mem[5] — redundant
      make(Op::kFstore, 1, 3, 0, 1),   // 4: keep f1 observable
      make(Op::kHalt),                 // 5
  };
  bool changed = false;
  const Program out = pass_redundant_load(p, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(out.size(), p.size() - 1);
  expect_equivalent(p, out);
}

TEST(RedundantLoad, DifferentRegisterReloadIsKept) {
  // The ISA has no fp register-to-register copy, so a reload into a
  // *different* register cannot be elided.
  const Program p = {
      make(Op::kMovi, 3, 0, 0, 5),    make(Op::kFmovi, 1, 0, 0, 0),
      make(Op::kFstore, 1, 3, 0, 0),  make(Op::kFload, 2, 3, 0, 0),
      make(Op::kFstore, 2, 3, 0, 1),  make(Op::kHalt),
  };
  bool changed = false;
  (void)pass_redundant_load(p, 4096, &changed);
  EXPECT_FALSE(changed);
}

TEST(RedundantLoad, BaseClobberKillsTheFact) {
  const Program p = {
      make(Op::kMovi, 3, 0, 0, 5),    // 0
      make(Op::kFload, 1, 3, 0, 0),   // 1: f1 = mem[5]
      make(Op::kAddi, 3, 3, 0, 1),    // 2: base moves
      make(Op::kFload, 1, 3, 0, 0),   // 3: f1 = mem[6] — NOT redundant
      make(Op::kFstore, 1, 3, 0, 1),  // 4
      make(Op::kHalt),                // 5
  };
  bool changed = false;
  (void)pass_redundant_load(p, 4096, &changed);
  EXPECT_FALSE(changed);
}

/// Two bases that genuinely may collide (i vs 2i inside a loop): the
/// intervening store must kill the fact and keep the reload.
Program may_alias_program() {
  return {
      make(Op::kMovi, 1, 0, 0, 0),     // 0
      make(Op::kMovi, 2, 0, 0, 8),     // 1
      make(Op::kAddi, 3, 1, 0, 0),     // 2: loop: r3 = i
      make(Op::kAdd, 4, 1, 1),         // 3: r4 = 2i
      make(Op::kFload, 1, 3, 0, 0),    // 4: f1 = mem[i]
      make(Op::kFmovi, 2, 0, 0, 0),    // 5
      make(Op::kFstore, 2, 4, 0, 0),   // 6: mem[2i] = 0 — may hit mem[i]
      make(Op::kFload, 1, 3, 0, 0),    // 7: must reload
      make(Op::kFstore, 1, 3, 0, 64),  // 8
      make(Op::kAddi, 1, 1, 0, 1),     // 9
      make(Op::kBlt, 1, 2, 0, 2),      // 10
      make(Op::kHalt),                 // 11
  };
}

TEST(RedundantLoad, MayAliasStoreKillsTheFact) {
  const Program p = may_alias_program();
  bool changed = false;
  (void)pass_redundant_load(p, 4096, &changed);
  EXPECT_FALSE(changed);
}

TEST(RedundantLoad, ProvenDisjointStoreSurvives) {
  // Same shape, but the store goes through the same base with a different
  // immediate: the oracle proves disjointness and the reload dies.
  Program p = may_alias_program();
  p[6] = make(Op::kFstore, 2, 3, 0, 32);  // mem[i+32], same base r3
  bool changed = false;
  const Program out = pass_redundant_load(p, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(out.size(), p.size() - 1);
  expect_equivalent(p, out);
}

// ------------------------------------------------- dead memory stores

TEST(DeadMemStore, StencilZeroingStoreIsRemoved) {
  const Program p = cms::naive_stencil_program(8);
  bool changed = false;
  const Program out = pass_dead_store(p, 4096, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(count_op(out, Op::kFstore), count_op(p, Op::kFstore) - 1);
  expect_equivalent(p, out);
}

TEST(DeadMemStore, MayAliasLoadBetweenBlocksRemoval) {
  // Overwritten same-cell store, but a load that may read it sits in
  // between: must stay.
  Program p = may_alias_program();
  p[4] = make(Op::kFstore, 1, 3, 0, 0);   // mem[i] = f1 (overwritten at 7?)
  p[6] = make(Op::kFload, 2, 4, 0, 0);    // f2 = mem[2i] — may read mem[i]
  p[7] = make(Op::kFstore, 1, 3, 0, 0);   // overwrites mem[i]
  // The register sweep may fire elsewhere, but both fstores to [r3+0]
  // must survive.
  bool changed = false;
  const Program out = pass_dead_store(p, 4096, &changed);
  std::size_t same_cell = 0;
  for (const Instr& in : out) {
    same_cell +=
        (in.op == Op::kFstore && in.b == 3 && in.imm_i == 0) ? 1 : 0;
  }
  EXPECT_EQ(same_cell, 2u);
}

TEST(DeadMemStore, UnprovenAccessBetweenBlocksRemoval) {
  // mem[i] is stored, an *unprovable* load may trap, then mem[i] is
  // overwritten. Removing the first store would change the trap state.
  const Program p = {
      make(Op::kMovi, 3, 0, 0, 5),      // 0
      make(Op::kMovi, 4, 0, 0, 100000), // 1
      makef(Op::kFmovi, 1, 2.0),        // 2
      make(Op::kFstore, 1, 3, 0, 0),    // 3: mem[5] = 2.0
      make(Op::kFload, 2, 4, 0, 0),     // 4: traps (far out of bounds)
      make(Op::kFstore, 1, 3, 0, 0),    // 5: overwrites mem[5]
      make(Op::kHalt),                  // 6
  };
  bool changed = false;
  const Program out = pass_dead_store(p, 4096, &changed);
  std::size_t stores = 0;
  for (const Instr& in : out) {
    stores += (in.op == Op::kFstore && in.b == 3) ? 1 : 0;
  }
  EXPECT_EQ(stores, 2u);
}

}  // namespace
}  // namespace bladed::opt
