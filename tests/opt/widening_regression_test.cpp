/// Regression tests pinning the join-before-widen termination fix in the
/// interval analysis (check/intervals.cpp). The optimizer fuzzer generated
/// loop bodies with cyclic transfers like `r3 = r7 - r3` where the
/// subtrahend register is reassigned later in the body, so its interval at
/// the loop head has non-zero width. Once widening makes the cycled
/// register half-infinite, each fixpoint iteration flips which side is
/// unbounded ([-inf, k] -> [c - k, +inf] -> [-inf, k + w] -> ...), growing
/// k by the subtrahend's width w every period: plain widening — which only
/// pushes a bound toward the direction it *grew* — never stabilizes. The
/// fallback (non-refining) phase must join with the previous state before
/// widening so bounds never retreat. The cases below are the verbatim
/// fuzzer seeds that oscillated, plus a distilled minimal form; each hangs
/// the analysis (test timeout) if the join is ever dropped.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/cfg.hpp"
#include "check/check.hpp"
#include "check/differential.hpp"
#include "check/intervals.hpp"
#include "cms/isa.hpp"
#include "opt/opt.hpp"

namespace bladed::opt {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

/// The analysis must terminate on `p` and remain sound: the state at the
/// final halt must contain the loop-exit counter value (r1 == r2 == rounds),
/// and the full level-2 pipeline must still produce an equivalent program.
void expect_terminates_soundly(const Program& p, std::int64_t rounds) {
  const check::Cfg cfg = check::Cfg::build(p);
  const check::Intervals iv = check::Intervals::build(p, cfg);
  const check::IntervalState exit = iv.at(p.size() - 1);
  ASSERT_TRUE(exit.reachable);
  EXPECT_LE(exit.r[1].lo, rounds);
  EXPECT_GE(exit.r[1].hi, rounds);

  OptOptions opts;
  opts.level = 2;
  const OptResult res = optimize(p, opts);
  const check::Report rep = check::differential_equivalence(p, res.program);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(WideningRegression, DistilledCyclicSubTransfer) {
  // Minimal oscillator: `r3 = r5 - r3` reads r5 before the body reassigns
  // it, so r5's loop-head interval is [0, 44] (entry zero joined with the
  // back edge) — the non-zero width that makes the flip amplitude grow.
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),
      make(Op::kMovi, 2, 0, 0, 6),
      make(Op::kSub, 3, 5, 3, 0),
      make(Op::kMovi, 5, 0, 0, 44),
      make(Op::kAddi, 1, 1, 0, 1),
      make(Op::kBlt, 1, 2, 0, 2),
      make(Op::kHalt, 0, 0, 0, 0),
  };
  expect_terminates_soundly(p, 6);
}

TEST(WideningRegression, FuzzerSeed760StraightLineLoopBody) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),
      make(Op::kMovi, 2, 0, 0, 4),
      make(Op::kSub, 3, 7, 3, 0),
      make(Op::kMuli, 7, 5, 0, 1),
      make(Op::kMovi, 7, 0, 0, 43),
      make(Op::kSub, 4, 5, 1, 0),
      make(Op::kAddi, 1, 1, 0, 1),
      make(Op::kBlt, 1, 2, 0, 2),
      make(Op::kHalt, 0, 0, 0, 0),
  };
  expect_terminates_soundly(p, 4);
}

TEST(WideningRegression, FuzzerSeed1170CycleThroughRewrittenRegister) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),
      make(Op::kMovi, 2, 0, 0, 6),
      make(Op::kAddi, 6, 7, 0, 0),
      make(Op::kSub, 3, 5, 3, 0),
      make(Op::kMovi, 5, 0, 0, 44),
      make(Op::kMovi, 6, 0, 0, 3),
      make(Op::kMovi, 7, 0, 0, 49),
      make(Op::kMuli, 7, 6, 0, 0),
      make(Op::kAddi, 1, 1, 0, 1),
      make(Op::kBlt, 1, 2, 0, 2),
      make(Op::kHalt, 0, 0, 0, 0),
  };
  expect_terminates_soundly(p, 6);
}

TEST(WideningRegression, FuzzerSeed973BranchyLoopBody) {
  // Conditional branches inside the body keep the edge-refinement phase
  // engaged until its budget exhausts, forcing the monotone fallback — the
  // exact phase the join-before-widen fix guards.
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),
      make(Op::kMovi, 2, 0, 0, 2),
      make(Op::kBne, 1, 3, 0, 5),
      make(Op::kAddi, 7, 6, 0, 0),
      make(Op::kSub, 4, 2, 5, 0),
      make(Op::kMovi, 7, 0, 0, 1),
      make(Op::kAdd, 6, 5, 0, 0),
      make(Op::kAddi, 7, 5, 0, 0),
      make(Op::kAddi, 3, 3, 0, 0),
      make(Op::kMovi, 6, 0, 0, 50),
      make(Op::kBlt, 1, 0, 0, 14),
      make(Op::kAdd, 7, 1, 6, 0),
      make(Op::kSub, 7, 0, 5, 0),
      make(Op::kMovi, 6, 0, 0, 61),
      make(Op::kMuli, 3, 0, 0, 3),
      make(Op::kAddi, 5, 4, 0, 0),
      make(Op::kMovi, 4, 0, 0, 30),
      make(Op::kSub, 4, 4, 2, 0),
      make(Op::kAdd, 3, 2, 7, 0),
      make(Op::kMovi, 6, 0, 0, 54),
      make(Op::kAddi, 1, 1, 0, 1),
      make(Op::kBlt, 1, 2, 0, 2),
      make(Op::kHalt, 0, 0, 0, 0),
  };
  expect_terminates_soundly(p, 2);
}

}  // namespace
}  // namespace bladed::opt
