#include "power/electricity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bladed::power {
namespace {

TEST(Electricity, PaperP4ClusterCost) {
  // §4.1: 2.04 kW over four years at $0.10/kWh is $7,148.
  const Dollars c = electricity_cost(Watts(2040.0), 4.0, UtilityRate{});
  EXPECT_NEAR(c.value(), 7148.0, 2.0);
}

TEST(Electricity, PaperBladedClusterCost) {
  // §4.1: the Bladed Beowulf's total power cost is $2,102 over four years,
  // i.e. 0.6 kW continuously.
  const Dollars c = electricity_cost(Watts(600.0), 4.0, UtilityRate{});
  EXPECT_NEAR(c.value(), 2102.0, 2.0);
}

TEST(Electricity, LinearInPowerYearsAndRate) {
  UtilityRate r{0.10};
  const double base = electricity_cost(Watts(100.0), 1.0, r).value();
  EXPECT_NEAR(electricity_cost(Watts(200.0), 1.0, r).value(), 2 * base, 1e-9);
  EXPECT_NEAR(electricity_cost(Watts(100.0), 3.0, r).value(), 3 * base, 1e-9);
  EXPECT_NEAR(electricity_cost(Watts(100.0), 1.0, UtilityRate{0.20}).value(),
              2 * base, 1e-9);
}

TEST(Electricity, ZeroYearsCostsNothing) {
  EXPECT_DOUBLE_EQ(electricity_cost(Watts(1e6), 0.0, UtilityRate{}).value(),
                   0.0);
}

TEST(Electricity, RejectsNegativeInputs) {
  EXPECT_THROW(electricity_cost(Watts(1.0), -1.0, UtilityRate{}),
               PreconditionError);
  EXPECT_THROW(electricity_cost(Watts(1.0), 1.0, UtilityRate{-0.1}),
               PreconditionError);
}

}  // namespace
}  // namespace bladed::power
