#include "power/longrun.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "microkernel/microkernel.hpp"

namespace bladed::power {
namespace {

arch::KernelProfile work() {
  return micro::microkernel_profile(micro::SqrtImpl::kKarp, false, 500000);
}

TEST(LongRun, LadderIsSortedAndTopMatchesDatasheet) {
  for (const LongRunLadder& l : {tm5600_ladder(), tm5800_800_ladder()}) {
    for (std::size_t i = 1; i < l.states.size(); ++i) {
      EXPECT_GT(l.states[i].frequency.value(),
                l.states[i - 1].frequency.value());
      EXPECT_GE(l.states[i].volts, l.states[i - 1].volts);
    }
    EXPECT_NEAR(l.active_watts(l.top()).value(), l.top_watts.value(), 1e-9);
  }
  EXPECT_NEAR(tm5600_ladder().top().frequency.value(), 633.0, 1e-9);
}

TEST(LongRun, PowerScalesSuperlinearlyDownTheLadder) {
  const LongRunLadder l = tm5600_ladder();
  // 300 MHz / 1.2 V vs 633 MHz / 1.6 V: dynamic power ratio
  // (300/633)(1.2/1.6)^2 = 0.267 -> well under the frequency ratio 0.474.
  const double bottom = l.active_watts(l.bottom()).value();
  const double top = l.active_watts(l.top()).value();
  const double freq_ratio = 300.0 / 633.0;
  EXPECT_LT((bottom - l.static_watts.value()) /
                (top - l.static_watts.value()),
            freq_ratio);
}

TEST(LongRun, IdleBelowEveryActiveState) {
  const LongRunLadder l = tm5600_ladder();
  for (const PerfState& s : l.states) {
    EXPECT_LT(l.idle_watts().value(), l.active_watts(s).value());
  }
  EXPECT_GE(l.idle_watts().value(), l.static_watts.value());
}

TEST(LongRun, SlowerStateTakesProportionallyLonger) {
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const EnergyReport fast = energy_to_solution(cpu, l, work(), l.top());
  const EnergyReport slow = energy_to_solution(cpu, l, work(), l.bottom());
  EXPECT_NEAR(slow.seconds / fast.seconds, 633.0 / 300.0, 1e-9);
}

TEST(LongRun, SlowAndLowUsesLessEnergyPerWorkUnit) {
  // Without idle power, V^2 scaling makes the bottom state the most
  // energy-efficient per operation.
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const EnergyReport fast = energy_to_solution(cpu, l, work(), l.top());
  const EnergyReport slow = energy_to_solution(cpu, l, work(), l.bottom());
  EXPECT_LT(slow.joules, fast.joules);
}

TEST(LongRun, IdleFloorCreatesAnEnergyOptimumOverAPeriod) {
  // Over a fixed period the bottom state is NOT automatically best: idle
  // power during the slack favours finishing earlier. The governor's pick
  // must beat or match both extremes.
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const arch::KernelProfile p = work();
  const double top_time = energy_to_solution(cpu, l, p, l.top()).seconds;
  const double period = 1.2 * top_time * (633.0 / 300.0);

  const PerfState chosen = pick_state(cpu, l, p, period);
  const double chosen_e = energy_over_period(cpu, l, p, chosen, period);
  for (const PerfState& s : l.states) {
    const double e = energy_over_period(cpu, l, p, s, period);
    EXPECT_LE(chosen_e, e + 1e-12) << s.frequency.value();
  }
}

TEST(LongRun, TightDeadlineForcesTopState) {
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const arch::KernelProfile p = work();
  const double top_time = energy_to_solution(cpu, l, p, l.top()).seconds;
  const PerfState s = pick_state(cpu, l, p, top_time * 1.01);
  EXPECT_NEAR(s.frequency.value(), 633.0, 1e-9);
}

TEST(LongRun, LooseDeadlinePrefersLowerState) {
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const arch::KernelProfile p = work();
  const double top_time = energy_to_solution(cpu, l, p, l.top()).seconds;
  const PerfState s = pick_state(cpu, l, p, 10.0 * top_time);
  EXPECT_LT(s.frequency.value(), 633.0);
}

TEST(LongRun, ImpossibleDeadlineThrows) {
  const LongRunLadder l = tm5600_ladder();
  const auto& cpu = arch::tm5600_633();
  const arch::KernelProfile p = work();
  const double top_time = energy_to_solution(cpu, l, p, l.top()).seconds;
  EXPECT_THROW(pick_state(cpu, l, p, 0.5 * top_time), SimulationError);
  EXPECT_THROW(energy_over_period(cpu, l, p, l.bottom(), 0.0),
               PreconditionError);
}

TEST(LongRun, Tm5800LadderIsStrictlyMoreEfficient) {
  // The newer part does the same work in fewer joules at every rung depth.
  const auto& cpu56 = arch::tm5600_633();
  const auto& cpu58 = arch::tm5800_800();
  const LongRunLadder l56 = tm5600_ladder();
  const LongRunLadder l58 = tm5800_800_ladder();
  const arch::KernelProfile p = work();
  EXPECT_LT(energy_to_solution(cpu58, l58, p, l58.top()).joules,
            energy_to_solution(cpu56, l56, p, l56.top()).joules);
}

}  // namespace
}  // namespace bladed::power
