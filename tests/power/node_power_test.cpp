#include "power/node_power.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace bladed::power {
namespace {

TEST(NodePower, TotalSumsComponents) {
  NodeComponents n;
  n.cpu = Watts(6.0);
  n.memory = Watts(3.0);
  n.disk = Watts(8.0);
  n.nic = Watts(2.0);
  n.board = Watts(4.0);
  EXPECT_DOUBLE_EQ(n.total().value(), 23.0);
}

TEST(NodePower, StandardNodeUsesCpuLoadPower) {
  const NodeComponents n = standard_node(arch::pentium4_1300());
  EXPECT_DOUBLE_EQ(n.cpu.value(), 75.0);
  // §4.1: a complete P4 node generates about 85 watts under load.
  EXPECT_NEAR(n.total().value(), 85.0, 10.0);
}

TEST(NodePower, BladeNodeIsFarBelowTraditional) {
  const NodeComponents blade = standard_node(arch::tm5600_633());
  const NodeComponents p4 = standard_node(arch::pentium4_1300());
  EXPECT_LT(blade.total() * 3.0, p4.total());
}

TEST(ClusterPower, ActiveCoolingAddsHalfWattPerWatt) {
  NodeComponents n;
  n.cpu = Watts(50.0);
  n.memory = Watts(0.0);
  n.disk = Watts(0.0);
  n.nic = Watts(0.0);
  n.board = Watts(0.0);
  const ClusterPower p =
      cluster_power(n, 10, Watts(100.0), Cooling::kActive);
  EXPECT_DOUBLE_EQ(p.compute.value(), 500.0);
  EXPECT_DOUBLE_EQ(p.network.value(), 100.0);
  EXPECT_DOUBLE_EQ(p.cooling.value(), 300.0);
  EXPECT_DOUBLE_EQ(p.total().value(), 900.0);
}

TEST(ClusterPower, PassiveCoolingAddsNothing) {
  NodeComponents n;
  n.cpu = Watts(25.0);
  n.memory = Watts(0.0);
  n.disk = Watts(0.0);
  n.nic = Watts(0.0);
  n.board = Watts(0.0);
  const ClusterPower p = cluster_power(n, 24, Watts(0.0), Cooling::kNone);
  EXPECT_DOUBLE_EQ(p.cooling.value(), 0.0);
  EXPECT_DOUBLE_EQ(p.total().value(), 600.0);
}

TEST(ClusterPower, RejectsNonPositiveNodeCount) {
  EXPECT_THROW(cluster_power(NodeComponents{}, 0, Watts(0.0), Cooling::kNone),
               PreconditionError);
}

}  // namespace
}  // namespace bladed::power
