#include "power/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace bladed::power {
namespace {

TEST(Reliability, RateDoublesEveryTenDegrees) {
  // The paper's vendor rule: failure rate doubles per 10 C.
  ReliabilityModel m;
  const double base = m.failure_rate(m.reference_temp);
  EXPECT_DOUBLE_EQ(base, m.failures_per_node_year_ref);
  EXPECT_NEAR(m.failure_rate(Celsius(m.reference_temp.value() + 10.0)),
              2.0 * base, 1e-12);
  EXPECT_NEAR(m.failure_rate(Celsius(m.reference_temp.value() + 20.0)),
              4.0 * base, 1e-12);
  EXPECT_NEAR(m.failure_rate(Celsius(m.reference_temp.value() - 10.0)),
              0.5 * base, 1e-12);
}

TEST(Reliability, ExpectedFailuresScaleWithNodesAndYears) {
  ReliabilityModel m;
  m.failures_per_node_year_ref = 0.1;
  const double f1 = m.expected_failures(10, 1.0, m.reference_temp);
  EXPECT_NEAR(f1, 1.0, 1e-12);
  EXPECT_NEAR(m.expected_failures(20, 2.0, m.reference_temp), 4.0 * f1,
              1e-12);
}

TEST(Reliability, FractionalDegreesInterpolateGeometrically) {
  ReliabilityModel m;
  const double r5 = m.failure_rate(Celsius(m.reference_temp.value() + 5.0));
  EXPECT_NEAR(r5 / m.failures_per_node_year_ref, std::sqrt(2.0), 1e-12);
}

TEST(Downtime, WholeClusterOutageMultipliesCpuHours) {
  ReliabilityModel rel;
  rel.failures_per_node_year_ref = 0.25;  // 24 nodes -> 6 failures/yr
  OutageModel out;
  out.repair_time = Hours(4.0);
  out.whole_cluster_outage = true;
  const DowntimeEstimate d =
      estimate_downtime(rel, out, 24, 4.0, rel.reference_temp);
  EXPECT_NEAR(d.failures, 24.0, 1e-9);           // 6/yr over 4 years
  EXPECT_NEAR(d.outage.value(), 96.0, 1e-9);     // paper: 96 hours
  EXPECT_NEAR(d.cpu_hours_lost.value(), 2304.0, 1e-9);  // paper: 2304
}

TEST(Downtime, SingleNodeOutageLosesOnlyThatNode) {
  ReliabilityModel rel;
  rel.failures_per_node_year_ref = 1.0 / 24.0;  // one blade per year
  OutageModel out;
  out.repair_time = Hours(1.0);
  out.whole_cluster_outage = false;
  const DowntimeEstimate d =
      estimate_downtime(rel, out, 24, 4.0, rel.reference_temp);
  EXPECT_NEAR(d.cpu_hours_lost.value(), 4.0, 1e-9);  // paper: 4 CPU-hours
  EXPECT_DOUBLE_EQ(d.availability, 1.0);  // blades stay up
}

TEST(Downtime, AvailabilityReflectsWallClockOutage) {
  ReliabilityModel rel;
  rel.failures_per_node_year_ref = 0.25;
  OutageModel out;
  const DowntimeEstimate d =
      estimate_downtime(rel, out, 24, 4.0, rel.reference_temp);
  EXPECT_NEAR(d.availability, 1.0 - 96.0 / (4.0 * 8760.0), 1e-9);
}

TEST(Reliability, HotterRoomMeansMoreFailures) {
  ReliabilityModel m;
  EXPECT_GT(m.expected_failures(24, 4.0, Celsius(40.0)),
            m.expected_failures(24, 4.0, Celsius(20.0)));
}

TEST(Downtime, ExtremeFailureRateClampsAvailabilityAtZero) {
  // A pathological rate (e.g. a schedule generator probing the model) makes
  // expected outage exceed the mission; availability must clamp, not go
  // negative.
  ReliabilityModel rel;
  rel.failures_per_node_year_ref = 1e6;
  OutageModel out;
  out.repair_time = Hours(4.0);
  out.whole_cluster_outage = true;
  const DowntimeEstimate d =
      estimate_downtime(rel, out, 24, 4.0, rel.reference_temp);
  EXPECT_DOUBLE_EQ(d.availability, 0.0);
  EXPECT_TRUE(std::isfinite(d.cpu_hours_lost.value()));
}

TEST(Reliability, RejectsBadArguments) {
  ReliabilityModel m;
  EXPECT_THROW(m.expected_failures(0, 1.0, Celsius(25.0)), PreconditionError);
  EXPECT_THROW(m.expected_failures(1, -1.0, Celsius(25.0)),
               PreconditionError);
}

}  // namespace
}  // namespace bladed::power
