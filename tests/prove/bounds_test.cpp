/// Unit tests for the in-bounds prover (prove/bounds.hpp): loop trip-count
/// bounds from the guard induction variable, derived-IV ranges, the
/// interval/trip-count proof split, and the refusals — kBne latches, a
/// latch whose fallthrough re-enters the header, unbounded strides.

#include "prove/bounds.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cms/programs.hpp"
#include "prove/context.hpp"

namespace bladed::prove {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

std::size_t unproven_count(const std::vector<AccessProof>& proofs) {
  std::size_t n = 0;
  for (const AccessProof& p : proofs) {
    if (p.kind == ProofKind::kUnproven) ++n;
  }
  return n;
}

TEST(Bounds, DaxpyLoopIsTripBounded) {
  const Program p = cms::daxpy_program(32);
  const Context ctx(p, 4096);
  ASSERT_EQ(ctx.loops().size(), 1u);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_TRUE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, 32);
  EXPECT_EQ(bounds[0].guard_iv, 1);  // r1 is the counter

  bool found_counter = false;
  for (const IvRange& iv : bounds[0].ivs) {
    if (iv.reg == 1) {
      found_counter = true;
      EXPECT_EQ(iv.step, 1);
      EXPECT_EQ(iv.range.lo, 0);
      EXPECT_EQ(iv.range.hi, 32);
    }
  }
  EXPECT_TRUE(found_counter);

  const std::vector<AccessProof> proofs = prove_accesses(ctx, bounds);
  EXPECT_EQ(unproven_count(proofs), 0u);
}

TEST(Bounds, StridedSumNeedsTheTripCountProof) {
  const Program p = cms::strided_sum_program(64);
  const Context ctx(p, 4096);
  const std::vector<AccessProof> proofs =
      prove_accesses(ctx, compute_loop_bounds(ctx));
  ASSERT_EQ(proofs.size(), 2u);
  // The strided load: interval widening loses r3, the trip count saves it.
  EXPECT_EQ(proofs[0].pc, 4u);
  EXPECT_EQ(proofs[0].kind, ProofKind::kTripCount);
  EXPECT_EQ(proofs[0].addr.lo, 0);
  EXPECT_EQ(proofs[0].addr.hi, 8 * 64);
  // The result store has a constant address: plain interval proof.
  EXPECT_EQ(proofs[1].pc, 9u);
  EXPECT_EQ(proofs[1].kind, ProofKind::kInterval);
}

TEST(Bounds, StridedOverrunIsRefused) {
  // 600 trips of j += 8 reach mem[4792] on a 4096-double machine: the trip
  // count must compute the range and *refuse* the proof.
  const Program p = cms::strided_sum_program(600);
  const Context ctx(p, 4096);
  const std::vector<AccessProof> proofs =
      prove_accesses(ctx, compute_loop_bounds(ctx));
  ASSERT_EQ(proofs.size(), 2u);
  EXPECT_EQ(proofs[0].pc, 4u);
  EXPECT_EQ(proofs[0].kind, ProofKind::kUnproven);
}

TEST(Bounds, BneLatchHasNoTripBound) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),    // 0
      make(Op::kMovi, 2, 0, 0, 16),   // 1
      make(Op::kFload, 0, 1, 0, 0),   // 2: loop
      make(Op::kAddi, 1, 1, 0, 1),    // 3
      make(Op::kBne, 1, 2, 0, 2),     // 4: guard is != — no bound
      make(Op::kHalt),                // 5
  };
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_FALSE(bounds[0].bounded);
  EXPECT_EQ(unproven_count(prove_accesses(ctx, bounds)), 1u);
}

TEST(Bounds, LatchFallingThroughToHeaderIsRefused) {
  // The latch's blt targets the header AND falls through to it: the guard
  // decides nothing, the loop never exits that way, and a trip bound from
  // the guard IV would be unsound.
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),   // 0
      make(Op::kMovi, 2, 0, 0, 4),   // 1
      make(Op::kJmp, 0, 0, 0, 6),    // 2: enter at the header
      make(Op::kFload, 0, 1, 0, 0),  // 3: latch block
      make(Op::kAddi, 1, 1, 0, 1),   // 4
      make(Op::kBlt, 1, 2, 0, 6),    // 5: taken -> 6, fallthrough -> 6
      make(Op::kJmp, 0, 0, 0, 3),    // 6: header
      make(Op::kHalt),               // 7: unreachable
  };
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_FALSE(bounds[0].bounded);
  EXPECT_EQ(unproven_count(prove_accesses(ctx, bounds)), 1u);
}

TEST(Bounds, UnreachableAccessIsVacuouslyProven) {
  const Program p = {
      make(Op::kJmp, 0, 0, 0, 2),        // 0
      make(Op::kFload, 0, 0, 0, -100),   // 1: never executes
      make(Op::kHalt),                   // 2
  };
  const Context ctx(p, 4096);
  const std::vector<AccessProof> proofs =
      prove_accesses(ctx, compute_loop_bounds(ctx));
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_NE(proofs[0].kind, ProofKind::kUnproven);
  EXPECT_NE(proofs[0].detail.find("unreachable"), std::string::npos);
}

TEST(Bounds, OffByOneLoopIsRefused) {
  // i runs to 4096 inclusive on a 4096-double machine.
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),     // 0
      make(Op::kMovi, 2, 0, 0, 4097),  // 1
      make(Op::kFload, 1, 1, 0, 0),    // 2
      make(Op::kAddi, 1, 1, 0, 1),     // 3
      make(Op::kBlt, 1, 2, 0, 2),      // 4
      make(Op::kHalt),                 // 5
  };
  const Context ctx(p, 4096);
  const std::vector<AccessProof> proofs =
      prove_accesses(ctx, compute_loop_bounds(ctx));
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_EQ(proofs[0].kind, ProofKind::kUnproven);
  // One fewer trip fits exactly.
  const Program ok = {
      make(Op::kMovi, 1, 0, 0, 0),     make(Op::kMovi, 2, 0, 0, 4096),
      make(Op::kFload, 1, 1, 0, 0),    make(Op::kAddi, 1, 1, 0, 1),
      make(Op::kBlt, 1, 2, 0, 2),      make(Op::kHalt),
  };
  const Context octx(ok, 4096);
  EXPECT_EQ(unproven_count(prove_accesses(octx, compute_loop_bounds(octx))),
            0u);
}

/// Canonical counted loop `for (a = start; a < limit; a += step)` with an
/// empty body — the minimal shape the trip-count argument licenses.
[[nodiscard]] Program counted_loop(std::int64_t start, std::int64_t limit,
                                   std::int64_t step) {
  return {
      make(Op::kMovi, 1, 0, 0, start),  // 0
      make(Op::kMovi, 2, 0, 0, limit),  // 1
      make(Op::kAddi, 1, 1, 0, step),   // 2: header + latch block
      make(Op::kBlt, 1, 2, 0, 2),       // 3
      make(Op::kHalt),                  // 4
  };
}

TEST(BoundsOverflow, TripCountAtTheLargestRepresentableLimit) {
  // limit INT64_MAX - 1 is the largest limit the interval domain can state
  // as a real constant (INT64_MAX itself is the +inf sentinel). The
  // __int128 computation must neither wrap nor refuse here.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Program p = counted_loop(0, kMax - 1, 1);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_TRUE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, kMax - 1);
}

TEST(BoundsOverflow, LimitOnTheInfinitySentinelIsRefused) {
  // A literal INT64_MAX limit is indistinguishable from "unknown" in the
  // interval domain (it IS kIntervalPosInf), so the trip-count argument
  // must refuse rather than read the sentinel as a real bound.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Program p = counted_loop(0, kMax, 1);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_FALSE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, 0);
}

TEST(BoundsOverflow, TripCountPastTheInt64CeilingIsRefused) {
  // start -2 against the largest representable limit pushes k_max + 1 to
  // INT64_MAX + 1: it does not fit an int64 trip count and the bound must
  // be *refused*, not wrapped into a small (unsound) number.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Program p = counted_loop(-2, kMax - 1, 1);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_FALSE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, 0);
}

TEST(BoundsOverflow, ExtremeEndpointsWithLargeStride) {
  // diff spans nearly the whole int64 range; the stride division must
  // happen in the wide type. trips = floor((kMax - 1 - 1 - 0) / kBig) + 1.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kBig = std::int64_t{1} << 40;
  const Program p = counted_loop(0, kMax - 1, kBig);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_TRUE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, (kMax - 2) / kBig + 1);
}

TEST(BoundsOverflow, StepLargerThanRangeIsOneTrip) {
  // step > limit - start: the guard fails at the first latch, exactly one
  // header execution. diff / step truncates to zero, not negative.
  const Program p = counted_loop(0, 5, 100);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_TRUE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, 1);
}

TEST(BoundsOverflow, StartAtOrPastLimitIsStillOneHeaderExecution) {
  // diff < 0 (start beyond the limit): the header still runs once before
  // the guard is consulted, so max_trips is clamped to 1, never 0 or
  // negative.
  const Program p = counted_loop(10, 5, 1);
  const Context ctx(p, 4096);
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_TRUE(bounds[0].bounded);
  EXPECT_EQ(bounds[0].max_trips, 1);
}

}  // namespace
}  // namespace bladed::prove
