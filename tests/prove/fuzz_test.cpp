/// Soundness fuzzing for the analyzer: 1000 seeded random programs with
/// genuinely varying base registers (strided IVs, rebases, copies) are
/// analyzed, then stepped through the interpreter, and every *proven*
/// memory access is cross-checked against the dynamic trace: its address
/// must fall inside the proof's interval and inside the machine. The
/// generator deliberately emits both safe and unsafe programs — unsafe
/// ones simply must not be proven (completeness is not claimed; soundness
/// is).

#include <gtest/gtest.h>

#include <map>

#include "cms/isa.hpp"
#include "common/rng.hpp"
#include "prove/prove.hpp"

namespace bladed::prove {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

constexpr std::size_t kMemDoubles = 256;

std::uint64_t pick(Rng& rng, std::uint64_t n) { return rng.next_u64() % n; }

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

/// Base registers r3..r6 evolve inside the loop; r7..r9 are scratch.
int base_reg(Rng& rng) { return 3 + static_cast<int>(pick(rng, 4)); }
int fp_reg(Rng& rng) { return static_cast<int>(pick(rng, 8)); }

/// One loop-body instruction: memory traffic off evolving bases (mostly
/// in bounds, occasionally not), base updates (stride, rebase off the
/// counter, copies), and fp arithmetic.
Instr random_op(Rng& rng) {
  switch (pick(rng, 12)) {
    case 0:
    case 1:
      return make(Op::kFload, fp_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 24)) - 4);
    case 2:
    case 3:
      return make(Op::kFstore, fp_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 24)) - 4);
    case 4:  // r0-based constant-address traffic
      return make(Op::kFload, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles + 8)));
    case 5:  // stride the base
      return make(Op::kAddi, base_reg(rng), base_reg(rng), 0,
                  static_cast<std::int64_t>(pick(rng, 9)) - 2);
    case 6:  // rebase off the loop counter
      return make(Op::kAddi, base_reg(rng), 1, 0,
                  static_cast<std::int64_t>(pick(rng, 32)));
    case 7:  // copy idiom between bases
      return make(Op::kAddi, base_reg(rng), base_reg(rng), 0, 0);
    case 8:  // a join-killing arithmetic base
      return make(Op::kAdd, base_reg(rng), 1, base_reg(rng));
    case 9: {
      Instr in = make(Op::kFmovi, fp_reg(rng));
      in.imm_f = rng.uniform(-2.0, 2.0);
      return in;
    }
    case 10:
      return make(Op::kFadd, fp_reg(rng), fp_reg(rng), fp_reg(rng));
    default:
      return make(Op::kFmul, fp_reg(rng), fp_reg(rng), fp_reg(rng));
  }
}

/// Counted outer loop (r1/r2 reserved), seeded bases, random body with
/// optional forward branches. Terminates by construction.
Program random_program(Rng& rng) {
  Program p;
  const std::int64_t rounds = 1 + static_cast<std::int64_t>(pick(rng, 8));
  p.push_back(make(Op::kMovi, 1, 0, 0, 0));
  p.push_back(make(Op::kMovi, 2, 0, 0, rounds));
  for (int r = 3; r <= 6; ++r) {
    p.push_back(make(Op::kMovi, r, 0, 0,
                     static_cast<std::int64_t>(pick(rng, 32))));
  }
  const std::int64_t loop = static_cast<std::int64_t>(p.size());

  const std::size_t chunks = 1 + pick(rng, 3);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (pick(rng, 2) == 0) {
      const std::size_t skip = 1 + pick(rng, 3);
      const Op op = pick(rng, 2) == 0 ? Op::kBlt : Op::kBne;
      p.push_back(make(op, base_reg(rng), base_reg(rng), 0,
                       static_cast<std::int64_t>(p.size() + 1 + skip)));
      for (std::size_t i = 0; i < skip; ++i) p.push_back(random_op(rng));
    }
    const std::size_t len = 2 + pick(rng, 5);
    for (std::size_t i = 0; i < len; ++i) p.push_back(random_op(rng));
  }

  p.push_back(make(Op::kAddi, 1, 1, 0, 1));
  p.push_back(make(Op::kBlt, 1, 2, 0, loop));
  p.push_back(make(Op::kHalt));
  return p;
}

class ProveFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProveFuzz, ProvenAccessesNeverTrap) {
  Rng rng(0x9204e + static_cast<std::uint64_t>(GetParam()) * 6151);
  for (int trial = 0; trial < 10; ++trial) {
    const Program p = random_program(rng);
    const ProveResult res = prove_program(p, kMemDoubles);
    ASSERT_TRUE(res.valid) << res.error;

    std::map<std::size_t, const AccessProof*> by_pc;
    for (const AccessProof& a : res.accesses) by_pc[a.pc] = &a;

    cms::MachineState st(kMemDoubles);
    for (double& cell : st.mem) cell = rng.uniform(-1.0, 1.0);
    std::size_t pc = 0;
    std::size_t steps = 0;
    while (pc < p.size() && steps < 200000) {
      const Instr& in = p[pc];
      if (in.op == Op::kHalt) break;
      if (cms::is_mem_op(in.op)) {
        const std::int64_t addr = st.r[in.b] + in.imm_i;
        auto it = by_pc.find(pc);
        ASSERT_NE(it, by_pc.end()) << "access at pc " << pc << " unanalyzed";
        const AccessProof& proof = *it->second;
        if (proof.kind != ProofKind::kUnproven) {
          // The soundness claim: a proven access never traps, and its
          // dynamic address honors the proof's interval.
          EXPECT_GE(addr, 0) << "seed " << GetParam() << " trial " << trial
                             << " pc " << pc << ": " << proof.detail;
          EXPECT_LT(addr, static_cast<std::int64_t>(kMemDoubles))
              << "seed " << GetParam() << " trial " << trial << " pc " << pc
              << ": " << proof.detail;
          EXPECT_GE(addr, proof.addr.lo) << "pc " << pc;
          EXPECT_LE(addr, proof.addr.hi) << "pc " << pc;
        }
        if (addr < 0 || addr >= static_cast<std::int64_t>(kMemDoubles)) {
          break;  // the interpreter would trap here; trace ends
        }
      }
      pc = cms::exec_instr(in, pc, st);
      ++steps;
    }
    ASSERT_LT(steps, 200000u) << "generated program failed to terminate";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProveFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace bladed::prove
