/// Golden analyzer reports for the daxpy / NPB-stencil corpus: the exact
/// alias facts the optimizer passes consume, the proof kinds, the region
/// licenses, the bladed-prove-v1 JSON serialization, and the engine's
/// region-prover gate (cached accept path and refusal path).

#include "prove/prove.hpp"

#include <gtest/gtest.h>

#include "cms/programs.hpp"

namespace bladed::prove {
namespace {

using cms::Program;

const AliasFact* find_fact(const ProveResult& res, std::size_t a,
                           std::size_t b) {
  for (const AliasFact& f : res.aliases) {
    if (f.pc_a == a && f.pc_b == b) return &f;
  }
  return nullptr;
}

TEST(Golden, NaiveDaxpyFactsLicenseTheHoist) {
  const ProveResult res =
      prove_program(cms::naive_daxpy_program(32), 4096);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.access_count, 5u);
  EXPECT_EQ(res.proven_count, 5u);
  EXPECT_DOUBLE_EQ(res.proven_fraction, 1.0);
  EXPECT_DOUBLE_EQ(res.hot_coverage, 1.0);

  // The fact LICM's hoist of the a-reload rides on: the loop-invariant
  // load of mem[2n] never aliases the y-store — universally, across
  // iterations, not just within one block execution.
  const AliasFact* hoist = find_fact(res, 4, 11);
  ASSERT_NE(hoist, nullptr);
  EXPECT_EQ(hoist->result.verdict, AliasVerdict::kNoAlias);
  EXPECT_TRUE(hoist->result.universal);

  // y-load vs y-store: same cell within one iteration.
  const AliasFact* y = find_fact(res, 9, 11);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->result.verdict, AliasVerdict::kMustAlias);

  ASSERT_EQ(res.regions.size(), 2u);
  EXPECT_TRUE(res.regions[1].is_loop);
  EXPECT_EQ(res.regions[1].max_trips, 32);
  EXPECT_TRUE(res.regions[1].licensed);
}

TEST(Golden, StencilFactsLicenseTheMemoryDeadStore) {
  const ProveResult res =
      prove_program(cms::naive_stencil_program(32), 4096);
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.access_count, 6u);
  EXPECT_EQ(res.proven_count, 6u);

  // The zeroing store at 4 and the result store at 13 hit the same cell
  // in every iteration — the dead-memory-store license.
  const AliasFact* dead = find_fact(res, 4, 13);
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->result.verdict, AliasVerdict::kMustAlias);

  // Neither store touches the x loads (separate halves of memory).
  for (std::size_t load_pc : {5u, 6u, 8u, 10u}) {
    const AliasFact* f = find_fact(res, 4, load_pc);
    ASSERT_NE(f, nullptr) << "missing fact (4," << load_pc << ")";
    EXPECT_EQ(f->result.verdict, AliasVerdict::kNoAlias);
    EXPECT_TRUE(f->result.universal);
  }

  for (const AccessProof& a : res.accesses) {
    EXPECT_EQ(a.kind, ProofKind::kInterval) << "pc " << a.pc;
  }
}

TEST(Golden, StridedSumJsonReport) {
  const ProveResult res = prove_program(cms::strided_sum_program(64), 4096);
  const std::string json = to_json(res, "strided_sum_n64");
  EXPECT_NE(json.find("\"schema\":\"bladed-prove-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"program\":\"strided_sum_n64\""), std::string::npos);
  EXPECT_NE(json.find("\"proof\":\"trip-count\""), std::string::npos);
  EXPECT_NE(json.find("\"max_trips\":64"), std::string::npos);
  EXPECT_NE(json.find("\"licensed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"proven\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"licensed\":false"), std::string::npos);
}

TEST(Golden, InvalidProgramReportsNotThrows) {
  Program p = {cms::Instr{}};
  p[0].op = cms::Op::kFload;
  p[0].a = 99;  // bad register index
  const ProveResult res = prove_program(p, 4096);
  EXPECT_FALSE(res.valid);
  EXPECT_FALSE(res.error.empty());
  const std::string json = to_json(res, "bad");
  EXPECT_NE(json.find("\"valid\":false"), std::string::npos);
}

TEST(Golden, LicenseTranslationRangeQueries) {
  const Program p = cms::daxpy_program(32);
  std::string why;
  EXPECT_TRUE(license_translation(p, 0, p.size(), 4096, &why)) << why;
  EXPECT_TRUE(license_translation(p, 3, 10, 4096, &why)) << why;
  // Degenerate / out-of-range spans refuse rather than vacuously accept.
  EXPECT_FALSE(license_translation(p, 5, 5, 4096, &why));
  EXPECT_FALSE(license_translation(p, 0, p.size() + 1, 4096, &why));

  // A tiny machine makes the y-accesses unprovable: refusal names the pc.
  EXPECT_FALSE(license_translation(p, 0, p.size(), 8, &why));
  EXPECT_NE(why.find("unproven"), std::string::npos);
}

TEST(Golden, EngineProverCachesAndGates) {
  const cms::RegionProver prover = engine_prover();
  const Program good = cms::daxpy_program(32);
  std::string why;
  // Two queries against one program: the second hits the analysis cache
  // (observable only as "still correct", but exercises the path).
  EXPECT_TRUE(prover(good, 0, 3, 4096, &why)) << why;
  EXPECT_TRUE(prover(good, 3, 10, 4096, &why)) << why;

  Program bad = good;
  bad[3].imm_i = 100000;  // x-load lands far out of bounds
  EXPECT_FALSE(prover(bad, 3, 10, 4096, &why));
  EXPECT_NE(why.find("pc 3"), std::string::npos);
}

TEST(Golden, EngineDebugGateRunsTheProver) {
  // End to end: a debug-mode engine with the prover installed licenses the
  // whole corpus run; the same engine refuses a program whose hot block
  // carries an unprovable access. The refused program is *dynamically*
  // safe (r1 stays far in bounds) — only the license is missing, because
  // a kBne guard yields no trip bound — so the refusal provably comes
  // from the gate, not from an interpreter trap.
  cms::MorphingConfig cfg;
  cfg.verify_translations = true;
  cfg.prover = engine_prover();
  cms::MorphingEngine engine(cfg);
  cms::MachineState st(4096);
  const cms::MorphingStats stats =
      engine.run(cms::naive_stencil_program(32), st);
  EXPECT_GT(stats.total_cycles, 0u);

  const auto mk = [](cms::Op op, int a, int b, std::int64_t imm) {
    cms::Instr in;
    in.op = op;
    in.a = a;
    in.b = b;
    in.imm_i = imm;
    return in;
  };
  const Program bad = {
      mk(cms::Op::kMovi, 1, 0, 0),   mk(cms::Op::kMovi, 2, 0, 64),
      mk(cms::Op::kFload, 0, 1, 0),  mk(cms::Op::kAddi, 1, 1, 1),
      mk(cms::Op::kBne, 1, 2, 2),    mk(cms::Op::kHalt, 0, 0, 0),
  };
  cms::MachineState st2(4096);
  try {
    (void)engine.run(bad, st2);
    FAIL() << "engine accepted an unlicensed hot block";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("region license"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bladed::prove
