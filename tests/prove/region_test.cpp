/// Unit tests for the region former (prove/region.hpp): loop-seeded
/// regions, absorption of single-entry successors, license revocation on
/// unproven accesses, and the alias-pair tallies each license carries.

#include "prove/region.hpp"

#include <gtest/gtest.h>

#include "cms/programs.hpp"
#include "prove/bounds.hpp"
#include "prove/context.hpp"

namespace bladed::prove {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

std::vector<RegionLicense> regions_of(const Context& ctx) {
  const std::vector<LoopBound> bounds = compute_loop_bounds(ctx);
  return form_regions(ctx, bounds, prove_accesses(ctx, bounds));
}

TEST(Region, DaxpyFormsEntryAndLoopRegions) {
  const Program p = cms::daxpy_program(32);
  const Context ctx(p, 4096);
  const std::vector<RegionLicense> regions = regions_of(ctx);
  ASSERT_EQ(regions.size(), 2u);
  // Ordered by entry pc; the prologue first, then the loop region.
  EXPECT_EQ(regions[0].entry_pc, 0u);
  EXPECT_FALSE(regions[0].is_loop);
  EXPECT_TRUE(regions[0].licensed);
  EXPECT_EQ(regions[0].access_count, 0u);

  EXPECT_EQ(regions[1].entry_pc, 3u);
  EXPECT_TRUE(regions[1].is_loop);
  EXPECT_TRUE(regions[1].licensed);
  EXPECT_EQ(regions[1].max_trips, 32);
  EXPECT_EQ(regions[1].access_count, 3u);
  EXPECT_TRUE(regions[1].unproven_pcs.empty());
  // x-load vs y-load and x-load vs y-store are disjoint; the y load/store
  // pair is a same-cell must-alias.
  EXPECT_EQ(regions[1].no_alias_pairs, 2u);
  EXPECT_EQ(regions[1].must_alias_pairs, 1u);
  EXPECT_EQ(regions[1].may_alias_pairs, 0u);
}

TEST(Region, UnprovenAccessRevokesTheLicense) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),     // 0
      make(Op::kMovi, 2, 0, 0, 4097),  // 1: off by one
      make(Op::kFload, 1, 1, 0, 0),    // 2
      make(Op::kAddi, 1, 1, 0, 1),     // 3
      make(Op::kBlt, 1, 2, 0, 2),      // 4
      make(Op::kHalt),                 // 5
  };
  const Context ctx(p, 4096);
  const std::vector<RegionLicense> regions = regions_of(ctx);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_TRUE(regions[0].licensed);
  EXPECT_FALSE(regions[1].licensed);
  ASSERT_EQ(regions[1].unproven_pcs.size(), 1u);
  EXPECT_EQ(regions[1].unproven_pcs[0], 2u);
}

TEST(Region, ManyBlocksRoundRobinIsOneLicensedLoop) {
  const Program p = cms::many_blocks_program(8, 5);
  const Context ctx(p, 4096);
  const std::vector<RegionLicense> regions = regions_of(ctx);
  std::size_t accesses = 0;
  std::size_t loops = 0;
  for (const RegionLicense& r : regions) {
    EXPECT_TRUE(r.licensed);
    accesses += r.access_count;
    loops += r.is_loop ? 1 : 0;
  }
  EXPECT_EQ(accesses, 16u);  // 8 blocks x (load + store)
  EXPECT_EQ(loops, 1u);      // the round-robin is one natural loop
}

TEST(Region, RegionsArePcSortedAndDisjoint) {
  const Program p = cms::branchy_program(16);
  const Context ctx(p, 4096);
  const std::vector<RegionLicense> regions = regions_of(ctx);
  std::vector<bool> member(ctx.cfg().blocks().size(), false);
  std::size_t prev_entry = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(regions[i].entry_pc, prev_entry);
    }
    prev_entry = regions[i].entry_pc;
    for (std::size_t b : regions[i].blocks) {
      EXPECT_FALSE(member[b]) << "block " << b << " in two regions";
      member[b] = true;
    }
  }
}

}  // namespace
}  // namespace bladed::prove
