/// Unit tests for the symbolic addressing layer (prove/sym.hpp) and the
/// alias oracle (prove/alias.hpp): base+offset resolution through copy /
/// addi / sub / muli chains, the stable-origin rule and its universal
/// verdicts, the per-block-instance same-block rule, and the refusals —
/// multi-def joins, base clobbers, cyclic origins.

#include "prove/sym.hpp"

#include <gtest/gtest.h>

#include "prove/alias.hpp"
#include "prove/context.hpp"

namespace bladed::prove {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

// ------------------------------------------------------------ resolution

TEST(Sym, ConstantBaseFoldsThroughSccp) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kFload, 0, 1, 0, 2),
                     make(Op::kFstore, 0, 1, 0, 3), make(Op::kHalt)};
  const Context ctx(p, 4096);
  EXPECT_EQ(resolve_address(ctx, 1), SymAddr::constant(7));
  EXPECT_EQ(resolve_address(ctx, 2), SymAddr::constant(8));
}

/// A loop makes r1 genuinely varying; the in-loop increment is the single
/// def reaching the exit (the init is killed on every path out), so it
/// becomes the symbolic origin every displacement chain hangs off.
Program chain_program() {
  return {
      make(Op::kMovi, 1, 0, 0, 0),        // 0
      make(Op::kMovi, 2, 0, 0, 4),        // 1
      make(Op::kAddi, 1, 1, 0, 1),        // 2: loop body
      make(Op::kBlt, 1, 2, 0, 2),         // 3
      make(Op::kAddi, 6, 1, 0, 0),        // 4: origin def (r1 is 2-def)
      make(Op::kAddi, 7, 6, 0, 5),        // 5: r7 = r6 + 5
      make(Op::kMovi, 8, 0, 0, 3),        // 6
      make(Op::kSub, 9, 7, 8),            // 7: r9 = r7 - 3 = r6 + 2
      make(Op::kMuli, 10, 6, 0, 1),       // 8: r10 = r6
      make(Op::kFload, 0, 6, 0, 2),       // 9: [r6+2]
      make(Op::kFload, 1, 9, 0, 0),       // 10: [r9+0] == [r6+2]
      make(Op::kFstore, 0, 7, 0, 0),      // 11: [r7+0] == [r6+5]
      make(Op::kFload, 2, 10, 0, 2),      // 12: [r10+2] == [r6+2]
      make(Op::kHalt),                    // 13
  };
}

TEST(Sym, DisplacementChainsShareOneOrigin) {
  const Program p = chain_program();
  const Context ctx(p, 4096);
  // Only the in-loop increment (pc 2) reaches the loop exit; the copy,
  // addi, sub and muli chains all resolve back to that one origin.
  EXPECT_EQ(resolve_reg(ctx, 4, 1), SymAddr::at_def(2, 0));
  EXPECT_EQ(resolve_address(ctx, 9), SymAddr::at_def(2, 2));
  EXPECT_EQ(resolve_address(ctx, 10), SymAddr::at_def(2, 2));
  EXPECT_EQ(resolve_address(ctx, 11), SymAddr::at_def(2, 5));
  EXPECT_EQ(resolve_address(ctx, 12), SymAddr::at_def(2, 2));
}

// ------------------------------------------------------- alias verdicts

/// A diamond merging two different constants gives an origin whose value
/// is unknown but whose defining block is acyclic — the stable-origin
/// rule's home turf (intervals overlap, so nothing else could decide).
TEST(Alias, StableOriginGivesUniversalVerdicts) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),     // 0
      make(Op::kMovi, 2, 0, 0, 4),     // 1
      make(Op::kAddi, 1, 1, 0, 1),     // 2: loop (makes r1 SCCP-varying)
      make(Op::kBlt, 1, 2, 0, 2),      // 3
      make(Op::kBne, 1, 2, 0, 7),      // 4: genuinely two-way
      make(Op::kMovi, 6, 0, 0, 10),    // 5
      make(Op::kJmp, 0, 0, 0, 8),      // 6
      make(Op::kMovi, 6, 0, 0, 20),    // 7
      make(Op::kAddi, 7, 6, 0, 0),     // 8: origin (r6 has two defs)
      make(Op::kFload, 0, 7, 0, 2),    // 9: [r7+2], interval [12,22]
      make(Op::kFload, 1, 7, 0, 2),    // 10: same cell
      make(Op::kFstore, 0, 7, 0, 5),   // 11: [r7+5], interval [15,25]
      make(Op::kHalt),                 // 12
  };
  const Context ctx(p, 4096);
  EXPECT_EQ(resolve_address(ctx, 9), SymAddr::at_def(8, 2));

  const AliasResult must = alias_pair(ctx, 9, 10);
  EXPECT_EQ(must.verdict, AliasVerdict::kMustAlias);
  EXPECT_TRUE(must.universal);
  EXPECT_STREQ(must.reason, "stable-origin");

  const AliasResult no = alias_pair(ctx, 9, 11);
  EXPECT_EQ(no.verdict, AliasVerdict::kNoAlias);
  EXPECT_TRUE(no.universal);
  EXPECT_STREQ(no.reason, "stable-origin");
}

/// In chain_program the shared origin sits inside the loop, so the
/// verdicts may not claim universality via stable-origin — here the
/// post-loop intervals collapse to constants and decide instead.
TEST(Alias, CyclicOriginFallsBackToIntervals) {
  const Program p = chain_program();
  const Context ctx(p, 4096);

  const AliasResult must = alias_pair(ctx, 9, 10);
  EXPECT_EQ(must.verdict, AliasVerdict::kMustAlias);
  EXPECT_TRUE(must.universal);
  EXPECT_STREQ(must.reason, "interval-const");

  const AliasResult no = alias_pair(ctx, 9, 11);
  EXPECT_EQ(no.verdict, AliasVerdict::kNoAlias);
  EXPECT_TRUE(no.universal);

  const AliasResult through_muli = alias_pair(ctx, 10, 12);
  EXPECT_EQ(through_muli.verdict, AliasVerdict::kMustAlias);
  EXPECT_TRUE(through_muli.universal);
}

TEST(Alias, ConstantAddressesCompareUniversally) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 5),
                     make(Op::kFload, 0, 1, 0, 2),
                     make(Op::kFstore, 0, 1, 0, 3),
                     make(Op::kFload, 1, 1, 0, 2), make(Op::kHalt)};
  const Context ctx(p, 4096);
  const AliasResult no = alias_pair(ctx, 1, 2);
  EXPECT_EQ(no.verdict, AliasVerdict::kNoAlias);
  EXPECT_TRUE(no.universal);
  const AliasResult must = alias_pair(ctx, 1, 3);
  EXPECT_EQ(must.verdict, AliasVerdict::kMustAlias);
  EXPECT_TRUE(must.universal);
}

/// Inside a loop the base's def sits on a cycle, so the verdict must come
/// from the same-block rule — and be flagged per-instance, not universal.
TEST(Alias, SameBlockRuleIsPerInstance) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),      // 0
      make(Op::kMovi, 2, 0, 0, 8),      // 1
      make(Op::kAddi, 3, 1, 0, 0),      // 2: loop: r3 = i (def on cycle)
      make(Op::kFload, 0, 3, 0, 0),     // 3: [r3+0], interval [0,7]
      make(Op::kFstore, 0, 3, 0, 4),    // 4: [r3+4], interval [4,11]:
      make(Op::kFload, 1, 3, 0, 4),     // 5: overlapping, so only the
                                        //    same-block rule can decide
      make(Op::kAddi, 1, 1, 0, 1),      // 6
      make(Op::kBlt, 1, 2, 0, 2),       // 7
      make(Op::kHalt),                  // 8
  };
  const Context ctx(p, 4096);

  const AliasResult no = alias_pair(ctx, 3, 4);
  EXPECT_EQ(no.verdict, AliasVerdict::kNoAlias);
  EXPECT_FALSE(no.universal);

  const AliasResult must = alias_pair(ctx, 4, 5);
  EXPECT_EQ(must.verdict, AliasVerdict::kMustAlias);
  EXPECT_FALSE(must.universal);
}

TEST(Alias, BaseClobberBetweenDowngradesToMay) {
  const Program p = {
      make(Op::kMovi, 1, 0, 0, 0),    // 0
      make(Op::kMovi, 2, 0, 0, 8),    // 1
      make(Op::kFload, 0, 3, 0, 0),   // 2: loop: [r3+0]
      make(Op::kAdd, 3, 1, 1),        // 3: r3 = 2i (clobbers the base)
      make(Op::kFload, 1, 3, 0, 0),   // 4: [r3+0] — not the same cell
      make(Op::kAddi, 1, 1, 0, 1),    // 5
      make(Op::kBlt, 1, 2, 0, 2),     // 6
      make(Op::kHalt),                // 7
  };
  const Context ctx(p, 4096);
  const AliasResult r = alias_pair(ctx, 2, 4);
  EXPECT_EQ(r.verdict, AliasVerdict::kMayAlias);
}

TEST(Alias, AllFactsEnumeratesEveryPair) {
  const Program p = chain_program();
  const Context ctx(p, 4096);
  const std::vector<AliasFact> facts = all_alias_facts(ctx);
  // 4 memory ops -> C(4,2) pairs.
  EXPECT_EQ(facts.size(), 6u);
  for (const AliasFact& f : facts) {
    EXPECT_LT(f.pc_a, f.pc_b);
  }
}

}  // namespace
}  // namespace bladed::prove
