/// Chaos harness acceptance tests. The core claim: a saturated server under
/// a seeded chaos mix (garbage bytes, stalled requests, mid-send drops)
/// sheds and degrades deterministically — the same seed replays to the
/// identical shed/degrade/parse-error/timeout counts — and never crashes,
/// deadlocks, or leaks a worker slot.
///
/// Determinism is engineered, not hoped for: the pool is saturated FIRST
/// (two long jobs sequenced via /stats polling, so the worker provably holds
/// one and the queue the other), and only then does the chaos wave run, so
/// every well-formed wave request deterministically hits the kQueueFull
/// path. The wave's composition is a pure function of the seed (chaos_for),
/// which the test also uses to predict the exact expected counts.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "test_client.hpp"

namespace bladed::serve {
namespace {

using namespace bladed::serve::testing;
using Clock = std::chrono::steady_clock;

template <typename Cond>
[[nodiscard]] bool poll_until(Cond&& cond, double timeout_seconds = 30.0) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  while (!cond()) {
    if (Clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

/// The chaos mix used by the wave tests (the LoadOptions fields beyond the
/// probabilities are irrelevant to chaos_for).
[[nodiscard]] LoadOptions wave_mix(std::uint64_t seed) {
  LoadOptions lo;
  lo.seed = seed;
  lo.p_garbage = 0.25;
  lo.p_stall = 0.15;
  lo.p_drop = 0.15;
  return lo;
}

constexpr int kWaveArrivals = 24;

struct WaveOutcome {
  std::uint64_t shed = 0;
  std::uint64_t degraded_approx = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t dropped = 0;
  std::uint64_t internal_errors = 0;
  bool healthy_after = false;

  bool operator==(const WaveOutcome&) const = default;
};

/// Predict the outcome of a wave from the seed alone.
[[nodiscard]] WaveOutcome predict_wave(std::uint64_t seed) {
  const LoadOptions lo = wave_mix(seed);
  WaveOutcome w;
  for (int i = 0; i < kWaveArrivals; ++i) {
    switch (chaos_for(lo, static_cast<std::uint64_t>(i))) {
      case ChaosKind::kGarbage:
        ++w.parse_errors;
        break;
      case ChaosKind::kStall:
        ++w.read_timeouts;
        break;
      case ChaosKind::kDrop:
        ++w.dropped;
        break;
      case ChaosKind::kNone:
        // Alternating client policy: even arrivals accept degradation.
        ++(i % 2 == 0 ? w.degraded_approx : w.shed);
        break;
    }
  }
  w.healthy_after = true;
  return w;
}

/// Execute one full wave against a fresh saturated server.
[[nodiscard]] WaveOutcome run_wave(std::uint64_t seed) {
  ServerOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  so.read_timeout_seconds = 0.4;
  so.drain_timeout_seconds = 0.3;
  Server server(so);
  server.start();
  const std::uint16_t port = server.port();

  // Saturate. L1 must be ON the worker (not just admitted) before L2 goes
  // in, or L2's admission would race with the worker draining the queue.
  SimBody long_job;
  long_job.ranks = 8;
  long_job.particles = 20000;
  long_job.steps = 50;
  long_job.deadline_ms = 20000.0;
  long_job.seed = 9001;
  const int fd1 = dial(port);
  EXPECT_TRUE(send_all(fd1, post_simulate(long_job.str())));
  EXPECT_TRUE(poll_until([&] {
    const Json s = fetch_stats(port);
    return counter(s, "admitted") == 1u && gauge(s, "pool_active") == 1u;
  }));
  long_job.seed = 9002;
  const int fd2 = dial(port);
  EXPECT_TRUE(send_all(fd2, post_simulate(long_job.str())));
  EXPECT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "admitted") == 2u;
  }));

  // The wave. Every arrival's kind comes from the seeded chaos stream.
  const LoadOptions lo = wave_mix(seed);
  const std::string half_request =
      post_simulate(SimBody{}.str()).substr(0, 40);
  std::vector<int> stalled;
  for (int i = 0; i < kWaveArrivals; ++i) {
    switch (chaos_for(lo, static_cast<std::uint64_t>(i))) {
      case ChaosKind::kGarbage: {
        const Reply r = roundtrip(port, "<<chaos garbage>>\r\n\r\n");
        EXPECT_EQ(r.status, 400) << "arrival " << i;
        break;
      }
      case ChaosKind::kStall: {
        const int fd = dial(port);
        EXPECT_GE(fd, 0);
        EXPECT_TRUE(send_all(fd, half_request));
        stalled.push_back(fd);  // hold it open; the server must 408
        break;
      }
      case ChaosKind::kDrop: {
        const int fd = dial(port);
        EXPECT_GE(fd, 0);
        EXPECT_TRUE(send_all(fd, half_request));
        ::close(fd);  // vanish mid-request
        break;
      }
      case ChaosKind::kNone: {
        SimBody b;
        b.seed = 1000 + static_cast<std::uint64_t>(i);  // distinct configs
        b.allow_degraded = (i % 2 == 0);
        const Reply r = roundtrip(port, post_simulate(b.str()));
        if (b.allow_degraded) {
          EXPECT_EQ(r.status, 200) << "arrival " << i;
          if (r.status == 200) {
            const Json j = Json::parse(r.body);
            EXPECT_TRUE(j.get("degraded").as_bool()) << "arrival " << i;
            EXPECT_EQ(j.get("mode").as_string(), "approximate");
          }
        } else {
          EXPECT_EQ(r.status, 429) << "arrival " << i;
        }
        break;
      }
    }
  }

  // Stalled connections resolve as 408s within the read timeout.
  for (const int fd : stalled) {
    EXPECT_EQ(parse_reply(read_to_eof(fd)).status, 408);
    ::close(fd);
  }

  const WaveOutcome predicted = predict_wave(seed);
  EXPECT_TRUE(poll_until([&] {
    const Json s = fetch_stats(port);
    return counter(s, "read_timeouts") == predicted.read_timeouts &&
           counter(s, "connections_dropped") == predicted.dropped;
  }));

  WaveOutcome w;
  const Json s = fetch_stats(port);
  w.shed = counter(s, "shed");
  w.degraded_approx = counter(s, "degraded_approx");
  w.parse_errors = counter(s, "parse_errors");
  w.read_timeouts = counter(s, "read_timeouts");
  w.dropped = counter(s, "connections_dropped");
  w.internal_errors = counter(s, "internal_errors");
  w.healthy_after = roundtrip(port, get_request("/healthz")).status == 200;

  ::close(fd1);
  ::close(fd2);
  server.stop();
  return w;
}

TEST(ChaosFor, IsAPureFunctionOfSeedAndIndex) {
  const LoadOptions a = wave_mix(7);
  const LoadOptions b = wave_mix(7);
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(chaos_for(a, i), chaos_for(b, i)) << i;
  }
  // A different seed produces a different stream (somewhere in 256 draws).
  const LoadOptions c = wave_mix(8);
  bool differs = false;
  for (std::uint64_t i = 0; i < 256 && !differs; ++i) {
    differs = chaos_for(a, i) != chaos_for(c, i);
  }
  EXPECT_TRUE(differs);
  // Zero probabilities: no chaos, ever.
  LoadOptions none;
  none.seed = 7;
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(chaos_for(none, i), ChaosKind::kNone);
  }
}

TEST(ChaosWave, SaturatedServerDegradesDeterministicallyAndReplays) {
  const std::uint64_t seed = 77;
  const WaveOutcome predicted = predict_wave(seed);
  // The mix must actually exercise every path, or the wave proves nothing.
  ASSERT_GT(predicted.shed, 0u);
  ASSERT_GT(predicted.degraded_approx, 0u);
  ASSERT_GT(predicted.parse_errors, 0u);
  ASSERT_GT(predicted.read_timeouts, 0u);
  ASSERT_GT(predicted.dropped, 0u);

  const WaveOutcome first = run_wave(seed);
  EXPECT_EQ(first, predicted);
  EXPECT_EQ(first.internal_errors, 0u);
  EXPECT_TRUE(first.healthy_after);

  // Replay: a fresh server, the same seed, the identical outcome.
  const WaveOutcome replay = run_wave(seed);
  EXPECT_EQ(replay, first);
}

TEST(ChaosLoad, OpenLoopBurstWithChaosSurvivesAndAccountingAddsUp) {
  ServerOptions so;
  so.workers = 2;
  so.queue_capacity = 4;
  so.read_timeout_seconds = 0.3;
  so.drain_timeout_seconds = 0.5;
  Server server(so);
  server.start();

  LoadOptions lo;
  lo.port = server.port();
  lo.burst = 40;
  lo.seed = 5;
  lo.p_garbage = 0.2;
  lo.p_stall = 0.1;
  lo.p_drop = 0.1;
  lo.stall_seconds = 0.6;
  lo.client_timeout_seconds = 60.0;
  const LoadReport rep = run_load(lo);

  // The chaos composition is exactly what the seed dictates.
  std::uint64_t garbage = 0, stall = 0, drop = 0;
  for (int i = 0; i < lo.burst; ++i) {
    switch (chaos_for(lo, static_cast<std::uint64_t>(i))) {
      case ChaosKind::kGarbage: ++garbage; break;
      case ChaosKind::kStall: ++stall; break;
      case ChaosKind::kDrop: ++drop; break;
      case ChaosKind::kNone: break;
    }
  }
  EXPECT_EQ(rep.chaos_garbage, garbage);
  EXPECT_EQ(rep.chaos_stall, stall);
  EXPECT_EQ(rep.chaos_drop, drop);

  // Every completed exchange is classified exactly once.
  EXPECT_EQ(rep.completed,
            rep.ok + rep.shed + rep.timeouts + rep.errors_4xx + rep.errors_5xx);
  // Every well-formed request got an answer: the server shed or degraded
  // under the burst, but never reset a client or raised a 5xx.
  EXPECT_EQ(rep.sent, static_cast<std::uint64_t>(lo.burst) - garbage - stall -
                          drop);
  EXPECT_GT(rep.ok, 0u);
  EXPECT_EQ(rep.errors_5xx, 0u);
  EXPECT_EQ(rep.resets, 0u);
  EXPECT_EQ(rep.client_timeouts, 0u);

  // And the server is still fully alive.
  EXPECT_EQ(roundtrip(server.port(), get_request("/healthz")).status, 200);
  const Json stats = fetch_stats(server.port());
  EXPECT_EQ(counter(stats, "internal_errors"), 0u);
  EXPECT_EQ(gauge(stats, "pool_in_flight"), 0u);
  server.stop();
}

}  // namespace
}  // namespace bladed::serve
