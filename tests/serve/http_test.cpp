/// HttpParser hardening tests: byte-at-a-time feeding, pipelining, header
/// and body caps, and the malformed-input -> 4xx classification table.

#include <gtest/gtest.h>

#include <string>

#include "serve/http.hpp"

namespace bladed::serve {
namespace {

using State = HttpParser::State;

[[nodiscard]] HttpParser fed(std::string_view bytes, HttpLimits limits = {}) {
  HttpParser p(limits);
  (void)p.feed(bytes);
  return p;
}

TEST(HttpParser, ParsesASimpleGet) {
  HttpParser p = fed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(p.state(), State::kComplete);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/healthz");
  EXPECT_EQ(p.request().version_minor, 1);
  EXPECT_TRUE(p.request().keep_alive);
  EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParser, ByteAtATimeProducesTheSameRequest) {
  const std::string raw =
      "POST /v1/simulate HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\n"
      "{\"\"}";
  HttpParser p;
  for (const char ch : raw) {
    ASSERT_NE(p.state(), State::kError);
    (void)p.feed(std::string_view(&ch, 1));
  }
  ASSERT_EQ(p.state(), State::kComplete);
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "{\"\"}");
}

TEST(HttpParser, PipelinedRequestsConsumeExactly) {
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpParser p;
  const std::size_t used = p.feed(two);
  ASSERT_EQ(p.state(), State::kComplete);
  EXPECT_EQ(p.request().target, "/a");
  EXPECT_LT(used, two.size());  // second request untouched
  p.reset();
  (void)p.feed(std::string_view(two).substr(used));
  ASSERT_EQ(p.state(), State::kComplete);
  EXPECT_EQ(p.request().target, "/b");
  EXPECT_FALSE(p.request().keep_alive);
}

TEST(HttpParser, HeaderNamesLowercasedValuesTrimmed) {
  HttpParser p =
      fed("GET / HTTP/1.1\r\nX-ThInG:   padded value  \r\n\r\n");
  ASSERT_EQ(p.state(), State::kComplete);
  const std::string* v = p.request().header("x-thing");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "padded value");
}

TEST(HttpParser, ConnectionSemantics) {
  EXPECT_TRUE(fed("GET / HTTP/1.1\r\n\r\n").request().keep_alive);
  EXPECT_FALSE(fed("GET / HTTP/1.0\r\n\r\n").request().keep_alive);
  EXPECT_FALSE(
      fed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").request().keep_alive);
  EXPECT_TRUE(fed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                  .request()
                  .keep_alive);
}

TEST(HttpParser, MalformedRequestLinesAre400) {
  for (const char* bad :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "GET  / HTTP/1.1\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n", "G@T / HTTP/1.1\r\n\r\n",
        "GET noslash HTTP/1.1\r\n\r\n", "\r\n\r\n"}) {
    HttpParser p = fed(bad);
    EXPECT_EQ(p.state(), State::kError) << bad;
    EXPECT_EQ(p.error_status(), 400) << bad;
  }
}

TEST(HttpParser, UnsupportedVersionIs505) {
  HttpParser p = fed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(p.state(), State::kError);
  EXPECT_EQ(p.error_status(), 505);
}

TEST(HttpParser, MalformedHeadersAre400) {
  for (const char* bad :
       {"GET / HTTP/1.1\r\nNoColon\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
        "GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"}) {
    HttpParser p = fed(bad);
    EXPECT_EQ(p.state(), State::kError) << bad;
    EXPECT_EQ(p.error_status(), 400) << bad;
  }
}

TEST(HttpParser, HeaderCapIs431) {
  HttpLimits tight;
  tight.max_header_bytes = 64;
  std::string big = "GET / HTTP/1.1\r\nX-Pad: ";
  big += std::string(200, 'a');
  big += "\r\n\r\n";
  HttpParser p = fed(big, tight);
  ASSERT_EQ(p.state(), State::kError);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, BodyCapIs413) {
  HttpLimits tight;
  tight.max_body_bytes = 10;
  HttpParser p =
      fed("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n", tight);
  ASSERT_EQ(p.state(), State::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, MalformedContentLengthIs400) {
  for (const char* bad :
       {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n"}) {
    HttpParser p = fed(bad);
    EXPECT_EQ(p.state(), State::kError) << bad;
    EXPECT_EQ(p.error_status(), 400) << bad;
  }
}

TEST(HttpParser, TransferEncodingIsRefusedNotMisframed) {
  HttpParser p =
      fed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(p.state(), State::kError);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParser, ResetAllowsReuseAfterError) {
  HttpParser p = fed("garbage\r\n\r\n");
  ASSERT_EQ(p.state(), State::kError);
  p.reset();
  (void)p.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(p.state(), State::kComplete);
}

TEST(HttpResponse, FormatsStatusLineHeadersAndBody) {
  const std::string r =
      http_response(429, "application/json", "{}", false, {"Retry-After: 2"});
  EXPECT_NE(r.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close"), std::string::npos);
  EXPECT_NE(r.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 6), "\r\n\r\n{}");
}

TEST(HttpResponse, HeadOnlyKeepsContentLengthDropsBody) {
  const std::string r = http_response(200, "application/json", "{\"a\":1}",
                                      true, {}, /*head_only=*/true);
  EXPECT_NE(r.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 4), "\r\n\r\n");  // ends at the blank line
}

}  // namespace
}  // namespace bladed::serve
