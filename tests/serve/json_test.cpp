/// Strict-JSON tests: everything bladed-serve turns into a 400 must throw
/// JsonError here (with a sane byte offset), and everything it serializes
/// must round-trip bit-for-bit.

#include <gtest/gtest.h>

#include <string>

#include "serve/json.hpp"

namespace bladed::serve {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("3.5e2").as_number(), 350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  42  ").as_number(), 42.0);  // outer whitespace ok
}

TEST(Json, ParsesContainers) {
  const Json v = Json::parse(R"({"a":[1,2,3],"b":{"c":"d"},"e":null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("a").as_array()[2].as_number(), 3.0);
  EXPECT_EQ(v.get("b").get("c").as_string(), "d");
  EXPECT_TRUE(v.get("e").is_null());
  EXPECT_TRUE(v.has("e"));        // present but null
  EXPECT_FALSE(v.has("absent"));  // absent reads as null, has() = false
  EXPECT_TRUE(v.get("absent").is_null());
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW((void)Json::parse("{} x"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("true,"), JsonError);
}

TEST(Json, RejectsMalformedSyntax) {
  for (const char* bad :
       {"", "   ", "{", "[", "\"unterminated", "{\"a\"}", "{\"a\":}",
        "{\"a\":1,}", "[1,]", "[1 2]", "{'a':1}", "nul", "tru", "+1", ".5",
        "01", "1.", "1e", "--1", "NaN", "Infinity", "{\"a\" 1}",
        "[\"\\q\"]"}) {
    EXPECT_THROW((void)Json::parse(bad), JsonError) << "input: " << bad;
  }
}

TEST(Json, ErrorCarriesAByteOffset) {
  try {
    (void)Json::parse("{\"ok\": bogus}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset, 7u);
    EXPECT_NE(std::string(e.what()).find("byte 7"), std::string::npos);
  }
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), JsonError);       // default cap 64
  EXPECT_NO_THROW((void)Json::parse(deep, 256));          // raised cap fits
  std::string shallow = "[[[[1]]]]";
  EXPECT_NO_THROW((void)Json::parse(shallow));
}

TEST(Json, ControlCharactersInStringsAreRejected) {
  EXPECT_THROW((void)Json::parse("\"a\nb\""), JsonError);
  EXPECT_THROW((void)Json::parse(std::string("\"a\0b\"", 5)), JsonError);
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string(), "a\nb");  // escaped is fine
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Lone high surrogate is malformed.
  EXPECT_THROW((void)Json::parse("\"\\ud83d\""), JsonError);
  EXPECT_THROW((void)Json::parse("\"\\uZZZZ\""), JsonError);
}

TEST(Json, DumpRoundTrips) {
  const char* src =
      R"({"a":1,"b":[true,false,null],"c":"x\"y","d":2.5,"big":9007199254740992})";
  const Json v = Json::parse(src);
  const std::string out = v.dump();
  const Json again = Json::parse(out);
  EXPECT_EQ(again.dump(), out);  // fixpoint
  EXPECT_DOUBLE_EQ(again.get("d").as_number(), 2.5);
  EXPECT_EQ(again.get("c").as_string(), "x\"y");
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  Json v = Json::object();
  v.set("n", std::uint64_t{12345}).set("f", 0.5);
  EXPECT_EQ(v.dump(), R"({"n":12345,"f":0.5})");
}

TEST(Json, SetOverwritesAndPreservesInsertionOrder) {
  Json v = Json::object();
  v.set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(v.dump(), R"({"z":3,"a":2})");
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object());
  EXPECT_EQ(arr.dump(), R"([1,"two",{}])");
}

TEST(Json, EscapesControlAndQuoteOnDump) {
  Json v = Json(std::string("tab\there\nquote\"back\\slash"));
  EXPECT_EQ(v.dump(), R"("tab\there\nquote\"back\\slash")");
}

TEST(Json, DuplicateKeysLastOneWinsOnGet) {
  // Parser preserves both members; get() answers the first match, which is
  // the documented lookup rule — pin it so it cannot drift silently.
  const Json v = Json::parse(R"({"k":1,"k":2})");
  EXPECT_EQ(v.as_object().size(), 2u);
  EXPECT_DOUBLE_EQ(v.get("k").as_number(), 1.0);
}

}  // namespace
}  // namespace bladed::serve
