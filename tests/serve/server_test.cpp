/// Live-server integration tests: a real Server on an ephemeral loopback
/// port, exercised by the deliberately-dumb blocking client in
/// test_client.hpp. Covers the robustness contract end to end: routing,
/// keep-alive/pipelining, strict-input 4xx, caching, deadline -> 504 with a
/// promptly freed worker slot, saturation -> degraded/429, coalescing,
/// disconnect-triggered cancellation, slow-client timeouts, and drain.
///
/// Determinism note: JobPool admission races with worker pickup (the queue
/// frees as a worker pops), so saturation tests sequence submissions by
/// polling /stats (`admitted`, `gauges.pool_active`) instead of sleeping.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "test_client.hpp"

namespace bladed::serve {
namespace {

using namespace bladed::serve::testing;
using Clock = std::chrono::steady_clock;

constexpr double kLongDeadlineMs = 20000.0;

/// A simulation that runs for many seconds unless cancelled.
[[nodiscard]] SimBody long_job(std::uint64_t seed,
                               double deadline_ms = kLongDeadlineMs) {
  SimBody b;
  b.seed = seed;
  b.ranks = 8;
  b.particles = 20000;
  b.steps = 50;
  b.deadline_ms = deadline_ms;
  return b;
}

/// Open a connection, fire the request, and return the fd WITHOUT reading
/// the response (the caller is parking a long-running job on the server).
[[nodiscard]] int submit_async(std::uint16_t port, const SimBody& body) {
  const int fd = dial(port);
  EXPECT_GE(fd, 0);
  EXPECT_TRUE(send_all(fd, post_simulate(body.str())));
  return fd;
}

template <typename Cond>
[[nodiscard]] bool poll_until(Cond&& cond, double timeout_seconds = 30.0) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  while (!cond()) {
    if (Clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

[[nodiscard]] ServerOptions small_pool() {
  ServerOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  so.drain_timeout_seconds = 0.5;
  return so;
}

TEST(ServeEndpoints, HealthReadyStatsAndRouting) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  Reply r = roundtrip(port, get_request("/healthz"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(Json::parse(r.body).get("status").as_string(), "ok");

  r = roundtrip(port, get_request("/readyz"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(Json::parse(r.body).get("status").as_string(), "ready");

  const Json stats = fetch_stats(port);
  EXPECT_TRUE(stats.has("admitted"));
  EXPECT_TRUE(stats.has("shed"));
  EXPECT_EQ(gauge(stats, "pool_threads"), 1u);
  EXPECT_EQ(gauge(stats, "pool_queue_capacity"), 1u);
  EXPECT_FALSE(stats.get("gauges").get("draining").as_bool());

  EXPECT_EQ(roundtrip(port, get_request("/nope")).status, 404);
  r = roundtrip(port, get_request("/v1/simulate"));
  EXPECT_EQ(r.status, 405);
  EXPECT_TRUE(r.has_header("Allow: POST"));
  EXPECT_EQ(roundtrip(port,
                      "DELETE /healthz HTTP/1.1\r\nHost: t\r\n"
                      "Connection: close\r\n\r\n")
                .status,
            405);

  // HEAD: full headers (Content-Length of the would-be body), empty body.
  r = roundtrip(port,
                "HEAD /healthz HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n\r\n");
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(r.has_header("Content-Length: 15"));  // {"status":"ok"}
  EXPECT_TRUE(r.body.empty());

  server.stop();
}

TEST(ServeEndpoints, KeepAliveServesSequentialAndPipelinedRequests) {
  Server server(small_pool());
  server.start();
  const int fd = dial(server.port());
  ASSERT_GE(fd, 0);

  // Two sequential exchanges on one connection.
  ASSERT_TRUE(send_all(fd, get_request("/healthz", /*keep_alive=*/true)));
  EXPECT_EQ(read_one_response(fd).status, 200);
  ASSERT_TRUE(send_all(fd, get_request("/stats", /*keep_alive=*/true)));
  EXPECT_EQ(read_one_response(fd).status, 200);

  // Two pipelined requests in a single write; both must be answered, in
  // order, and the trailing Connection: close must end the connection.
  const std::string pipelined =
      get_request("/healthz", true) + get_request("/readyz", false);
  ASSERT_TRUE(send_all(fd, pipelined));
  EXPECT_EQ(read_one_response(fd).status, 200);
  EXPECT_EQ(read_one_response(fd).status, 200);
  char ch;
  EXPECT_EQ(::recv(fd, &ch, 1, 0), 0);  // EOF after close
  ::close(fd);
  server.stop();
}

TEST(ServeRequests, MalformedInputsAre4xxNeverCrashes) {
  ServerOptions so = small_pool();
  so.http.max_body_bytes = 128;
  Server server(so);
  server.start();
  const std::uint16_t port = server.port();

  // Not HTTP at all -> 400 at the parser.
  EXPECT_EQ(roundtrip(port, "<<<definitely not http>>>\r\n\r\n").status, 400);
  // HTTP/2 preface lookalike -> 505.
  EXPECT_EQ(roundtrip(port, "GET / HTTP/2.0\r\n\r\n").status, 505);
  // Valid HTTP, invalid JSON -> 400 with a reason.
  Reply r = roundtrip(port, post_simulate("{\"ranks\": }"));
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(Json::parse(r.body).get("error").as_string().find("invalid JSON"),
            std::string::npos);
  // Valid JSON, unknown field -> 400 (typos fail loudly, not silently).
  EXPECT_EQ(roundtrip(port, post_simulate("{\"rankz\":4}")).status, 400);
  // Out-of-range value -> 400.
  EXPECT_EQ(roundtrip(port, post_simulate("{\"ranks\":-3}")).status, 400);
  // Body over the cap -> 413.
  std::string big = "{\"pad\":\"" + std::string(200, 'x') + "\"}";
  EXPECT_EQ(roundtrip(port, post_simulate(big)).status, 413);

  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "parse_errors"), 3u);  // garbage, 505, 413
  EXPECT_EQ(counter(stats, "bad_requests"), 3u);  // JSON, schema, range
  server.stop();
}

TEST(ServeSimulate, FreshThenCachedThenForcedRerun) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();
  SimBody body;
  body.seed = 11;

  Reply first = roundtrip(port, post_simulate(body.str()));
  ASSERT_EQ(first.status, 200);
  Json j1 = Json::parse(first.body);
  EXPECT_EQ(j1.get("mode").as_string(), "fresh");
  EXPECT_FALSE(j1.get("cached").as_bool());
  EXPECT_FALSE(j1.get("degraded").as_bool());
  EXPECT_GT(j1.get("result").get("interactions").as_number(), 0.0);

  Reply second = roundtrip(port, post_simulate(body.str()));
  ASSERT_EQ(second.status, 200);
  Json j2 = Json::parse(second.body);
  EXPECT_EQ(j2.get("mode").as_string(), "cache");
  EXPECT_TRUE(j2.get("cached").as_bool());
  EXPECT_FALSE(j2.get("degraded").as_bool());
  // Same config hash, bit-identical result.
  EXPECT_EQ(j2.get("config").as_string(), j1.get("config").as_string());
  EXPECT_EQ(j2.get("result").dump(), j1.get("result").dump());

  body.force = true;
  Reply third = roundtrip(port, post_simulate(body.str()));
  ASSERT_EQ(third.status, 200);
  EXPECT_EQ(Json::parse(third.body).get("mode").as_string(), "fresh");
  // The rerun is deterministic: same virtual cluster, same result.
  EXPECT_EQ(Json::parse(third.body).get("result").dump(),
            j1.get("result").dump());

  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "admitted"), 2u);
  EXPECT_EQ(counter(stats, "completed"), 2u);
  EXPECT_EQ(counter(stats, "cache_hits"), 1u);
  server.stop();
}

TEST(ServeSimulate, TcoWorkloadIsAnsweredInlineWithoutAdmission) {
  Server server(small_pool());
  server.start();
  const Reply r = roundtrip(
      server.port(),
      post_simulate(R"({"workload":"tco","arch":"TM5600","years":4})"));
  ASSERT_EQ(r.status, 200);
  const Json j = Json::parse(r.body);
  EXPECT_EQ(j.get("mode").as_string(), "fresh");
  EXPECT_TRUE(j.get("result").get("tco").is_object());
  const Json stats = fetch_stats(server.port());
  EXPECT_EQ(counter(stats, "inline_served"), 1u);
  EXPECT_EQ(counter(stats, "admitted"), 0u);
  server.stop();
}

TEST(ServeDeadlines, ShortDeadlineReturns504AndFreesTheWorkerSlot) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  // A multi-second simulation with a 150 ms deadline: the watchdog cancels
  // the token, the engine unwinds with CancelledError, and the waiter gets
  // a prompt 504 instead of holding the connection for the full run.
  const Clock::time_point t0 = Clock::now();
  const Reply r =
      roundtrip(port, post_simulate(long_job(7, /*deadline_ms=*/150).str()));
  const double took =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_EQ(r.status, 504);
  EXPECT_LT(took, 30.0);  // an uncancelled run would blow well past this

  // No zombie compute: the slot must come free and accept new work.
  EXPECT_TRUE(poll_until([&] {
    return gauge(fetch_stats(port), "pool_in_flight") == 0u;
  }));
  SimBody small;
  small.seed = 8;
  EXPECT_EQ(roundtrip(port, post_simulate(small.str())).status, 200);

  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "deadline_timeouts"), 1u);
  EXPECT_EQ(counter(stats, "completed"), 1u);
  server.stop();
}

TEST(ServeOverload, SaturationShedsOrDegradesByClientPolicy) {
  ServerOptions so = small_pool();
  so.cache_fresh_seconds = 0.0;  // every cached row is instantly stale
  Server server(so);
  server.start();
  const std::uint16_t port = server.port();

  // Populate a (stale-only) session for seed 42 while the pool is empty.
  SimBody seeded;
  seeded.seed = 42;
  ASSERT_EQ(roundtrip(port, post_simulate(seeded.str())).status, 200);
  ASSERT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "completed") == 1u;
  }));

  // Saturate: L1 onto the worker (wait for pickup so the queue is provably
  // empty), then L2 into the only queue slot.
  const int fd1 = submit_async(port, long_job(101));
  ASSERT_TRUE(poll_until([&] {
    const Json s = fetch_stats(port);
    return counter(s, "admitted") == 2u && gauge(s, "pool_active") == 1u;
  }));
  const int fd2 = submit_async(port, long_job(102));
  ASSERT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "admitted") == 3u;
  }));

  // Worker busy + queue full: every further distinct config is refused by
  // admission, deterministically.
  SimBody strict;
  strict.seed = 103;
  strict.allow_degraded = false;
  Reply r = roundtrip(port, post_simulate(strict.str()));
  EXPECT_EQ(r.status, 429);
  EXPECT_TRUE(r.has_header("Retry-After: 1"));

  SimBody lenient;
  lenient.seed = 104;
  r = roundtrip(port, post_simulate(lenient.str()));
  ASSERT_EQ(r.status, 200);
  Json j = Json::parse(r.body);
  EXPECT_TRUE(j.get("degraded").as_bool());
  EXPECT_EQ(j.get("mode").as_string(), "approximate");
  EXPECT_FALSE(j.get("cached").as_bool());
  EXPECT_GT(j.get("result").get("interactions").as_number(), 0.0);

  // Seed 42 has a stale session: the ladder prefers it to the estimate.
  r = roundtrip(port, post_simulate(seeded.str()));
  ASSERT_EQ(r.status, 200);
  j = Json::parse(r.body);
  EXPECT_TRUE(j.get("degraded").as_bool());
  EXPECT_TRUE(j.get("cached").as_bool());
  EXPECT_EQ(j.get("mode").as_string(), "stale-cache");

  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "shed"), 1u);
  EXPECT_EQ(counter(stats, "degraded_approx"), 1u);
  EXPECT_EQ(counter(stats, "degraded_cached"), 1u);
  ::close(fd1);  // abandon the long jobs; disconnect-cancel reclaims them
  ::close(fd2);
  server.stop();
}

TEST(ServeCoalesce, IdenticalInFlightConfigsShareOneJob) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  const SimBody job = long_job(201, /*deadline_ms=*/1000);
  const int fd1 = submit_async(port, job);
  ASSERT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "admitted") == 1u;
  }));
  const int fd2 = submit_async(port, job);  // identical config: rides along
  ASSERT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "coalesced") == 1u;
  }));

  // One job, one deadline, both waiters answered (here: both 504).
  const Reply r1 = parse_reply(read_to_eof(fd1));
  const Reply r2 = parse_reply(read_to_eof(fd2));
  ::close(fd1);
  ::close(fd2);
  EXPECT_EQ(r1.status, 504);
  EXPECT_EQ(r2.status, 504);
  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "admitted"), 1u);
  EXPECT_EQ(counter(stats, "coalesced"), 1u);
  EXPECT_EQ(counter(stats, "deadline_timeouts"), 1u);  // per job, not waiter
  server.stop();
}

TEST(ServeDisconnect, AbandonedJobIsCancelledAndTheSlotReclaimed) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  const int fd = submit_async(port, long_job(301));
  ASSERT_TRUE(poll_until([&] {
    const Json s = fetch_stats(port);
    return counter(s, "admitted") == 1u && gauge(s, "pool_active") == 1u;
  }));
  ::close(fd);  // client vanishes mid-computation

  // Nobody wants the answer: the job's token is cancelled and the worker
  // slot comes back without waiting out the 20 s deadline.
  EXPECT_TRUE(poll_until([&] {
    const Json s = fetch_stats(port);
    return counter(s, "disconnect_cancels") == 1u &&
           gauge(s, "pool_in_flight") == 0u;
  }));
  SimBody small;
  small.seed = 302;
  EXPECT_EQ(roundtrip(port, post_simulate(small.str())).status, 200);
  server.stop();
}

TEST(ServeTimeouts, SlowClientsGet408IdleClientsGetClosed) {
  ServerOptions so = small_pool();
  so.read_timeout_seconds = 0.3;
  so.idle_timeout_seconds = 0.4;
  Server server(so);
  server.start();

  // Half a request, then silence: 408 after the read timeout, then close.
  const int slow = dial(server.port());
  ASSERT_GE(slow, 0);
  ASSERT_TRUE(send_all(slow, "GET /heal"));
  const Reply r = parse_reply(read_to_eof(slow));
  ::close(slow);
  EXPECT_EQ(r.status, 408);

  // A connection that never sends anything is closed without a response.
  const int idle = dial(server.port());
  ASSERT_GE(idle, 0);
  EXPECT_TRUE(read_to_eof(idle).empty());
  ::close(idle);

  const Json stats = fetch_stats(server.port());
  EXPECT_EQ(counter(stats, "read_timeouts"), 1u);
  server.stop();
}

TEST(ServeDrain, GracefulDrainAnswersInFlightAndRefusesNewConnections) {
  Server server(small_pool());  // drain_timeout 0.5 s
  server.start();
  const std::uint16_t port = server.port();

  const int fd = submit_async(port, long_job(401));
  ASSERT_TRUE(poll_until([&] {
    return counter(fetch_stats(port), "admitted") == 1u;
  }));

  server.request_drain();  // what the SIGTERM handler calls

  // The in-flight request is still answered: the drain deadline cancels the
  // job and the waiting client gets a 504 (not a dropped connection).
  const Reply r = parse_reply(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(r.status, 504);

  // The listener is closed: new connections are refused.
  EXPECT_TRUE(poll_until([&] { return dial(port, 1.0) < 0; }, 10.0));

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.deadline_timeouts, 1u);
  EXPECT_EQ(stats.internal_errors, 0u);
}

/// cms workload body; `deadline_ms = 0` means the server default.
[[nodiscard]] std::string cms_body(const std::string& program, int steps,
                                   double deadline_ms = 0.0) {
  Json b = Json::object();
  b.set("workload", "cms").set("program", program).set("steps", steps);
  if (deadline_ms > 0.0) b.set("deadline_ms", deadline_ms);
  return b.dump();
}

TEST(ServeCms, CmsRunReportsCyclesWithinTheCertifiedBounds) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  const Reply r =
      roundtrip(port, post_simulate(cms_body("naive_daxpy_n256", 2)));
  ASSERT_EQ(r.status, 200);
  const Json body = Json::parse(r.body);
  EXPECT_EQ(body.get("status").as_string(), "ok");
  const Json& res = body.get("result");
  EXPECT_EQ(res.get("program").as_string(), "naive_daxpy_n256");
  const double cycles = res.get("total_cycles").as_number();
  EXPECT_GT(cycles, 0.0);
  EXPECT_GE(cycles, res.get("certified_lower_cycles").as_number());
  EXPECT_LE(cycles, res.get("certified_upper_cycles").as_number());
  EXPECT_GT(res.get("elapsed_seconds").as_number(), 0.0);

  server.stop();
  EXPECT_EQ(server.stats().internal_errors, 0u);
  EXPECT_EQ(server.stats().rejected_over_deadline, 0u);
}

TEST(ServeCms, UnknownProgramIsA400) {
  Server server(small_pool());
  server.start();
  const Reply r = roundtrip(server.port(),
                            post_simulate(cms_body("no_such_kernel", 1)));
  EXPECT_EQ(r.status, 400);
  server.stop();
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST(ServeCms, ProvablyOverDeadlineIs422BeforeAnyPoolSubmission) {
  Server server(small_pool());
  server.start();
  const std::uint16_t port = server.port();

  // 200 certified runs against a 1 microsecond deadline: the static upper
  // bound alone proves the request can never finish in time. The refusal
  // must happen at admission — nothing may reach the JobPool.
  const Reply r = roundtrip(
      port, post_simulate(cms_body("naive_daxpy_n256", 200, 0.001)));
  EXPECT_EQ(r.status, 422);
  const Json body = Json::parse(r.body);
  EXPECT_EQ(body.get("status").as_string(), "error");
  EXPECT_NE(body.get("error").as_string().find("certified"),
            std::string::npos);

  const Json stats = fetch_stats(port);
  EXPECT_EQ(counter(stats, "rejected_over_deadline"), 1u);
  EXPECT_EQ(counter(stats, "admitted"), 0u);
  EXPECT_EQ(gauge(stats, "pool_active"), 0u);
  EXPECT_EQ(gauge(stats, "pool_in_flight"), 0u);

  // The same config with a sane deadline is served normally — the gate
  // keys on the request's own budget, not the config.
  const Reply ok =
      roundtrip(port, post_simulate(cms_body("naive_daxpy_n256", 200)));
  EXPECT_EQ(ok.status, 200);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.rejected_over_deadline, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.internal_errors, 0u);
}

}  // namespace
}  // namespace bladed::serve
