#pragma once

/// Minimal blocking HTTP test client for the serve tests: deliberately the
/// dumbest possible counterparty (one fd, blocking reads, no retries) so a
/// test failure implicates the server, never the harness. Every helper
/// carries a receive timeout so a server-side hang fails the assertion
/// instead of wedging ctest.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "serve/json.hpp"

namespace bladed::serve::testing {

/// Blocking loopback connect with a receive timeout (seconds).
inline int dial(std::uint16_t port, double recv_timeout_seconds = 30.0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = static_cast<long>(recv_timeout_seconds);
  tv.tv_usec = static_cast<long>((recv_timeout_seconds - tv.tv_sec) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

inline bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read until the peer closes (Connection: close exchanges).
inline std::string read_to_eof(int fd) {
  std::string out;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // EOF, error, or SO_RCVTIMEO expiry
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

struct Reply {
  int status = -1;       ///< -1: no status line arrived (reset / timeout)
  std::string head;      ///< status line + headers
  std::string body;
  [[nodiscard]] bool has_header(std::string_view line) const {
    return head.find(line) != std::string::npos;
  }
};

inline Reply parse_reply(const std::string& raw) {
  Reply r;
  if (raw.size() >= 12 && raw.compare(0, 9, "HTTP/1.1 ") == 0) {
    r.status = std::atoi(raw.c_str() + 9);
  }
  const std::size_t sep = raw.find("\r\n\r\n");
  if (sep == std::string::npos) {
    r.head = raw;
  } else {
    r.head = raw.substr(0, sep);
    r.body = raw.substr(sep + 4);
  }
  return r;
}

/// One full Connection: close exchange on a fresh connection.
inline Reply roundtrip(std::uint16_t port, std::string_view request,
                       double recv_timeout_seconds = 30.0) {
  const int fd = dial(port, recv_timeout_seconds);
  if (fd < 0) return {};
  Reply r;
  if (send_all(fd, request)) r = parse_reply(read_to_eof(fd));
  ::close(fd);
  return r;
}

/// Read exactly one response off a keep-alive connection (headers, then
/// Content-Length body bytes).
inline Reply read_one_response(int fd) {
  std::string raw;
  char ch;
  while (raw.find("\r\n\r\n") == std::string::npos) {
    if (::recv(fd, &ch, 1, 0) != 1) return parse_reply(raw);
    raw.push_back(ch);
  }
  std::size_t need = 0;
  const std::size_t cl = raw.find("Content-Length: ");
  if (cl != std::string::npos) {
    need = static_cast<std::size_t>(std::atol(raw.c_str() + cl + 16));
  }
  while (need-- > 0) {
    if (::recv(fd, &ch, 1, 0) != 1) break;
    raw.push_back(ch);
  }
  return parse_reply(raw);
}

inline std::string get_request(std::string_view target,
                               bool keep_alive = false) {
  std::string r = "GET ";
  r += target;
  r += " HTTP/1.1\r\nHost: t\r\n";
  if (!keep_alive) r += "Connection: close\r\n";
  r += "\r\n";
  return r;
}

inline std::string post_simulate(std::string_view json_body,
                                 bool keep_alive = false) {
  std::string r = "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n";
  if (!keep_alive) r += "Connection: close\r\n";
  r += "Content-Length: " + std::to_string(json_body.size()) + "\r\n\r\n";
  r += json_body;
  return r;
}

/// Canonical treecode request body. `particles`/`steps` pick the runtime
/// class (small = milliseconds, 20000x50 = many seconds); `seed` makes
/// configs distinct so they do not coalesce or hit each other's cache rows.
struct SimBody {
  std::uint64_t seed = 1;
  std::int64_t particles = 200;
  int steps = 1;
  int ranks = 2;
  double deadline_ms = 0.0;
  bool allow_degraded = true;
  bool force = false;

  [[nodiscard]] std::string str() const {
    Json b = Json::object();
    b.set("workload", "treecode")
        .set("ranks", ranks)
        .set("particles", particles)
        .set("steps", steps)
        .set("seed", seed)
        .set("allow_degraded", allow_degraded);
    if (deadline_ms > 0.0) b.set("deadline_ms", deadline_ms);
    if (force) b.set("force", true);
    return b.dump();
  }
};

/// GET /stats as parsed JSON (throws on malformed — itself a server bug).
inline Json fetch_stats(std::uint16_t port) {
  return Json::parse(roundtrip(port, get_request("/stats")).body);
}

inline std::uint64_t counter(const Json& stats, const char* name) {
  return static_cast<std::uint64_t>(stats.get(name).as_number());
}

inline std::uint64_t gauge(const Json& stats, const char* name) {
  return static_cast<std::uint64_t>(stats.get("gauges").get(name).as_number());
}

}  // namespace bladed::serve::testing
