#include "simnet/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "simnet/comm.hpp"

namespace bladed::simnet {
namespace {

Cluster::Config cfg(int ranks) {
  Cluster::Config c;
  c.ranks = ranks;
  return c;
}

TEST(Cluster, SingleRankComputeAdvancesClock) {
  Cluster cluster(cfg(1));
  cluster.run([](Comm& comm) {
    comm.compute(1.5);
    comm.compute(0.5);
    EXPECT_DOUBLE_EQ(comm.now(), 2.0);
  });
  EXPECT_DOUBLE_EQ(cluster.elapsed_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(cluster.stats(0).compute_seconds, 2.0);
}

TEST(Cluster, PingPongDeliversPayloadIntact) {
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    std::vector<int> data(100);
    std::iota(data.begin(), data.end(), 0);
    if (comm.rank() == 0) {
      comm.send(1, 7, data);
      const auto back = comm.recv<int>(1, 8);
      EXPECT_EQ(back, data);
    } else {
      const auto got = comm.recv<int>(0, 7);
      EXPECT_EQ(got, data);
      comm.send(0, 8, got);
    }
  });
  EXPECT_EQ(cluster.total_messages(), 2u);
  EXPECT_GT(cluster.elapsed_seconds(), 0.0);
}

TEST(Cluster, MessageTimeMatchesNetworkModel) {
  Cluster cluster(cfg(2));
  const NetworkModel& net = cluster.network();
  constexpr std::size_t kBytes = 100000;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<char>(kBytes));
    } else {
      (void)comm.recv<char>(0, 0);
      EXPECT_NEAR(comm.now(),
                  net.uncontended(kBytes) + net.recv_overhead, 1e-9);
    }
  });
}

TEST(Cluster, RecvBlocksUntilSenderCatchesUp) {
  // Receiver's clock must jump to the message availability time even though
  // the receiver posted the recv at t=0.
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(1.0);  // sender is busy for 1 virtual second
      comm.send_value(1, 0, 42);
    } else {
      const int v = comm.recv_value<int>(0, 0);
      EXPECT_EQ(v, 42);
      EXPECT_GT(comm.now(), 1.0);
    }
  });
}

TEST(Cluster, AnySourceReceivesFromBoth) {
  Cluster cluster(cfg(3));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int sum = 0;
      sum += comm.recv_value<int>(kAnySource, 5);
      sum += comm.recv_value<int>(kAnySource, 5);
      EXPECT_EQ(sum, 1 + 2);
    } else {
      comm.send_value(0, 5, comm.rank());
    }
  });
}

TEST(Cluster, TagsKeepStreamsApart) {
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 111);
      comm.send_value(1, 2, 222);
    } else {
      // Receive in the opposite order of sending: tag matching must pick the
      // right message, not the first one.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(Cluster, FifoPerSourceAndTag) {
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Cluster, DeadlockIsDetected) {
  Cluster cluster(cfg(2));
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 // Both ranks receive first: classic deadlock.
                 (void)comm.recv_value<int>(1 - comm.rank(), 0);
               }),
               SimulationError);
}

TEST(Cluster, UserExceptionPropagates) {
  Cluster cluster(cfg(4));
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 if (comm.rank() == 2) throw std::runtime_error("boom");
                 comm.barrier();
               }),
               std::runtime_error);
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto experiment = [] {
    Cluster cluster(cfg(8));
    cluster.run([](Comm& comm) {
      // Irregular pattern: everyone sends a variable-size block to rank 0.
      comm.compute(0.001 * comm.rank());
      if (comm.rank() == 0) {
        for (int i = 1; i < comm.size(); ++i)
          (void)comm.recv_bytes(kAnySource, 9);
      } else {
        comm.send_bytes(0, 9,
                        std::vector<std::byte>(100 * comm.rank()));
      }
    });
    return cluster.elapsed_seconds();
  };
  const double t1 = experiment();
  const double t2 = experiment();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Cluster, ClusterIsReusableAndResets) {
  Cluster cluster(cfg(2));
  auto program = [](Comm& comm) {
    if (comm.rank() == 0)
      comm.send_bytes(1, 0, std::vector<std::byte>(1000));
    else
      (void)comm.recv_bytes(0, 0);
  };
  cluster.run(program);
  const double t1 = cluster.elapsed_seconds();
  const auto bytes1 = cluster.total_bytes();
  cluster.run(program);
  EXPECT_DOUBLE_EQ(cluster.elapsed_seconds(), t1);
  EXPECT_EQ(cluster.total_bytes(), bytes1);
}

TEST(Cluster, BarrierSynchronizesClocks) {
  Cluster cluster(cfg(4));
  cluster.run([](Comm& comm) {
    comm.compute(comm.rank() == 3 ? 2.0 : 0.1);
    comm.barrier();
    EXPECT_GE(comm.now(), 2.0);  // everyone waits for the straggler
  });
  // All ranks end at the same time.
  const double t0 = cluster.stats(0).finish_time;
  for (int r = 1; r < 4; ++r)
    EXPECT_DOUBLE_EQ(cluster.stats(r).finish_time, t0);
}

TEST(Cluster, StatsAccountComputeAndComm) {
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    comm.compute(0.5);
    if (comm.rank() == 0)
      comm.send_bytes(1, 0, std::vector<std::byte>(1 << 16));
    else
      (void)comm.recv_bytes(0, 0);
  });
  EXPECT_DOUBLE_EQ(cluster.stats(0).compute_seconds, 0.5);
  EXPECT_GT(cluster.stats(1).comm_seconds, 0.0);
  EXPECT_EQ(cluster.stats(0).bytes_sent, std::uint64_t{1} << 16);
  EXPECT_EQ(cluster.stats(0).messages_sent, 1u);
}

TEST(Cluster, IncastContentionSlowsDelivery) {
  // 7 ranks send 64 KB each to rank 0 simultaneously; the last delivery must
  // take at least 7x the single-message ingress serialization time.
  Cluster cluster(cfg(8));
  const NetworkModel& net = cluster.network();
  constexpr std::size_t kBytes = 64 * 1024;
  double finish = 0.0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < 8; ++i) (void)comm.recv_bytes(i, 0);
      finish = comm.now();
    } else {
      comm.send_bytes(0, 0, std::vector<std::byte>(kBytes));
    }
  });
  EXPECT_GT(finish, 7.0 * net.wire_time(kBytes));
}

TEST(Cluster, RecvSizeMismatchErrorNamesEndpointsAndSizes) {
  // The typed-receive validation must say which link and tag carried the
  // bad payload and what the size mismatch was, not just that one happened.
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_bytes(1, 3, std::vector<std::byte>(10));  // not 4-divisible
    } else {
      try {
        (void)comm.recv<int>(0, 3);
        FAIL() << "expected PreconditionError";
      } catch (const PreconditionError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("src=0"), std::string::npos);
        EXPECT_NE(msg.find("dst=1"), std::string::npos);
        EXPECT_NE(msg.find("tag=3"), std::string::npos);
        EXPECT_NE(msg.find("10 bytes"), std::string::npos);
        EXPECT_NE(msg.find("element size 4"), std::string::npos);
      }
    }
  });
}

TEST(Cluster, RecvValueSizeMismatchReportsBothSizes) {
  Cluster cluster(cfg(2));
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, std::int16_t{5});
    } else {
      try {
        (void)comm.recv_value<std::int64_t>(0, 0);
        FAIL() << "expected PreconditionError";
      } catch (const PreconditionError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("got 2 bytes, expected 8"), std::string::npos);
        EXPECT_NE(msg.find("src=0"), std::string::npos);
      }
    }
  });
}

TEST(Cluster, SendToOutOfRangeRankNamesTheBounds) {
  Cluster cluster(cfg(2));
  try {
    cluster.run([](Comm& comm) { comm.send_value(5, 0, 1); });
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("destination rank 5 out of range"),
              std::string::npos);
  }
}

TEST(Cluster, RejectsZeroRanks) {
  EXPECT_THROW(Cluster(cfg(0)), PreconditionError);
}

TEST(Cluster, SelfSendLoopback) {
  Cluster cluster(cfg(1));
  cluster.run([](Comm& comm) {
    comm.send_value(0, 1, 3.25);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 1), 3.25);
  });
  EXPECT_EQ(cluster.total_messages(), 0u);  // loopback avoids the network
}

}  // namespace
}  // namespace bladed::simnet
