#include <gtest/gtest.h>

#include <numeric>

#include "simnet/comm.hpp"

namespace bladed::simnet {
namespace {

Cluster::Config cfg(int ranks) {
  Cluster::Config c;
  c.ranks = ranks;
  return c;
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BcastFromRankZero) {
  Cluster cluster(cfg(GetParam()));
  cluster.run([](Comm& comm) {
    std::vector<double> v;
    if (comm.rank() == 0) v = {1.0, 2.0, 3.0};
    v = comm.bcast(std::move(v), 0);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
  });
}

TEST_P(CollectivesTest, BcastFromNonzeroRoot) {
  const int n = GetParam();
  const int root = n - 1;
  Cluster cluster(cfg(n));
  cluster.run([root](Comm& comm) {
    std::vector<int> v;
    if (comm.rank() == root) v = {7, 8, 9, 10};
    v = comm.bcast(std::move(v), root);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[3], 10);
  });
}

TEST_P(CollectivesTest, ReduceSumToEachRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; root += std::max(1, n / 3)) {
    Cluster cluster(cfg(n));
    cluster.run([root, n](Comm& comm) {
      const int total =
          comm.reduce(comm.rank() + 1, std::plus<int>{}, root);
      if (comm.rank() == root) EXPECT_EQ(total, n * (n + 1) / 2);
    });
  }
}

TEST_P(CollectivesTest, AllreduceSumAndMax) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    const int sum = comm.allreduce(comm.rank(), std::plus<int>{});
    EXPECT_EQ(sum, n * (n - 1) / 2);
    const int mx = comm.allreduce(
        comm.rank() * 3, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, 3 * (n - 1));
  });
}

TEST_P(CollectivesTest, AllreduceVecElementwise) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    std::vector<double> v = {1.0, static_cast<double>(comm.rank())};
    v = comm.allreduce_vec(std::move(v), std::plus<double>{});
    EXPECT_DOUBLE_EQ(v[0], n);
    EXPECT_DOUBLE_EQ(v[1], n * (n - 1) / 2.0);
  });
}

TEST_P(CollectivesTest, AllgatherPreservesRankOrderAndSizes) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    // Rank r contributes r+1 copies of the value r.
    std::vector<int> mine(comm.rank() + 1, comm.rank());
    const auto all = comm.allgather(mine);
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r + 1));
      for (int x : all[r]) EXPECT_EQ(x, r);
    }
  });
}

TEST_P(CollectivesTest, GatherAtRoot) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    const auto all = comm.gather(std::vector<int>{comm.rank() * 2}, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(all.size()), n);
      for (int r = 0; r < n; ++r) EXPECT_EQ(all[r].at(0), 2 * r);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, AlltoallTransposesBlocks) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    // blocks[i] = { 100*rank + i }: after alltoall, out[s] = {100*s + rank}.
    std::vector<std::vector<int>> blocks(n);
    for (int i = 0; i < n; ++i) blocks[i] = {100 * comm.rank() + i};
    const auto out = comm.alltoall(blocks);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(out[s].size(), 1u);
      EXPECT_EQ(out[s][0], 100 * s + comm.rank());
    }
  });
}

TEST_P(CollectivesTest, ConsecutiveCollectivesDoNotInterfere) {
  const int n = GetParam();
  Cluster cluster(cfg(n));
  cluster.run([n](Comm& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      const int s = comm.allreduce(iter + comm.rank(), std::plus<int>{});
      EXPECT_EQ(s, n * iter + n * (n - 1) / 2);
      comm.barrier();
    }
  });
}

TEST_P(CollectivesTest, BcastCostGrowsLogarithmically) {
  // A binomial broadcast of B bytes should cost far less than rank-0 sending
  // n-1 serial messages (its egress link would serialize them).
  const int n = GetParam();
  if (n < 8) GTEST_SKIP() << "needs enough ranks to see the tree win";
  constexpr std::size_t kBytes = 256 * 1024;

  Cluster tree(cfg(n));
  tree.run([](Comm& comm) {
    std::vector<char> v;
    if (comm.rank() == 0) v.assign(kBytes, 'x');
    v = comm.bcast(std::move(v), 0);
  });

  Cluster star(cfg(n));
  star.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < comm.size(); ++i)
        comm.send_bytes(i, 0, std::vector<std::byte>(kBytes));
    } else {
      (void)comm.recv_bytes(0, 0);
    }
  });

  EXPECT_LT(tree.elapsed_seconds(), 0.8 * star.elapsed_seconds());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 24),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace bladed::simnet
