#include "simnet/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bladed::simnet {
namespace {

TEST(NetworkModel, WireTimeIncludesHeaders) {
  NetworkModel n;
  n.bandwidth = 1e6;
  n.header_bytes = 100;
  EXPECT_DOUBLE_EQ(n.wire_time(900), 1e-3);
}

TEST(NetworkModel, UncontendedLatencyDominatesSmallMessages) {
  const NetworkModel n = NetworkModel::fast_ethernet();
  const double t8 = n.uncontended(8);
  EXPECT_GT(t8, n.latency);
  EXPECT_LT(t8, 3.0 * (n.latency + n.send_overhead) + 1e-3);
}

TEST(NetworkModel, BandwidthDominatesLargeMessages) {
  const NetworkModel n = NetworkModel::fast_ethernet();
  const double mb = 1 << 20;
  // A 1-MB transfer at ~11 MB/s takes ~0.1 s per link crossing.
  EXPECT_NEAR(n.uncontended(1 << 20), 2.0 * mb / n.bandwidth, 0.02);
}

TEST(NetworkModel, GigabitFasterThanFastEthernet) {
  const NetworkModel fe = NetworkModel::fast_ethernet();
  const NetworkModel ge = NetworkModel::gigabit();
  EXPECT_LT(ge.uncontended(1 << 16), fe.uncontended(1 << 16));
}

TEST(LinkTimeline, UncontendedDelivery) {
  NetworkModel n;
  n.latency = 1e-4;
  n.bandwidth = 1e7;
  n.header_bytes = 0;
  LinkTimeline links(4, n);
  // depart at t=0; 10000 bytes -> 1 ms per link crossing, 0.1 ms latency.
  const double at = links.schedule(0, 1, 10000, 0.0);
  EXPECT_NEAR(at, 1e-3 + 1e-4 + 1e-3, 1e-12);
}

TEST(LinkTimeline, SenderLinkSerializesBackToBackSends) {
  NetworkModel n;
  n.latency = 0.0;
  n.bandwidth = 1e6;
  n.header_bytes = 0;
  LinkTimeline links(4, n);
  const double a1 = links.schedule(0, 1, 1000, 0.0);  // 1 ms out + 1 ms in
  const double a2 = links.schedule(0, 2, 1000, 0.0);  // queues on 0's egress
  EXPECT_NEAR(a1, 2e-3, 1e-12);
  EXPECT_NEAR(a2, 3e-3, 1e-12);  // out 1..2 ms, in 2..3 ms
}

TEST(LinkTimeline, ReceiverLinkIsTheIncastBottleneck) {
  NetworkModel n;
  n.latency = 0.0;
  n.bandwidth = 1e6;
  n.header_bytes = 0;
  LinkTimeline links(4, n);
  // Three senders to node 3 at t=0: ingress serializes them.
  const double a = links.schedule(0, 3, 1000, 0.0);
  const double b = links.schedule(1, 3, 1000, 0.0);
  const double c = links.schedule(2, 3, 1000, 0.0);
  EXPECT_NEAR(a, 2e-3, 1e-12);
  EXPECT_NEAR(b, 3e-3, 1e-12);
  EXPECT_NEAR(c, 4e-3, 1e-12);
}

TEST(LinkTimeline, CountsTraffic) {
  NetworkModel n;
  n.header_bytes = 58;
  LinkTimeline links(2, n);
  links.schedule(0, 1, 1000, 0.0);
  links.schedule(1, 0, 500, 0.0);
  EXPECT_EQ(links.messages_carried(), 2u);
  EXPECT_EQ(links.bytes_carried(), 1000u + 500u + 2u * 58u);
}

TEST(LinkTimeline, ResetClearsState) {
  LinkTimeline links(2, NetworkModel::fast_ethernet());
  links.schedule(0, 1, 1 << 20, 0.0);
  links.reset();
  EXPECT_EQ(links.messages_carried(), 0u);
  const double at = links.schedule(0, 1, 0, 0.0);
  EXPECT_LT(at, 1e-3);  // no residual occupancy
}

TEST(LinkTimeline, RejectsLoopbackAndBadNodes) {
  LinkTimeline links(2, NetworkModel::fast_ethernet());
  EXPECT_THROW(links.schedule(0, 0, 1, 0.0), PreconditionError);
  EXPECT_THROW(links.schedule(0, 5, 1, 0.0), PreconditionError);
}

}  // namespace
}  // namespace bladed::simnet
