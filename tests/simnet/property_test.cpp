/// Property tests for the virtual cluster: message conservation, causality,
/// and determinism under randomized traffic patterns; the bonded-NIC model.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "simnet/comm.hpp"

namespace bladed::simnet {
namespace {

struct Plan {
  struct Msg {
    int src, dst, tag;
    std::size_t bytes;
  };
  std::vector<Msg> msgs;
};

Plan random_plan(std::uint64_t seed, int ranks, int count) {
  Rng rng(seed);
  Plan plan;
  for (int i = 0; i < count; ++i) {
    Plan::Msg m;
    m.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
    do {
      m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
    } while (m.dst == m.src);
    m.tag = static_cast<int>(i);  // unique tag per message
    m.bytes = 1 + rng.below(4096);
    plan.msgs.push_back(m);
  }
  return plan;
}

/// Execute a plan: every rank sends its outgoing messages (in plan order)
/// then receives its incoming ones (in plan order). Returns elapsed time.
double run_plan(const Plan& plan, int ranks, std::uint64_t* bytes_out,
                std::uint64_t* msgs_out) {
  Cluster cluster({.ranks = ranks, .network = NetworkModel::fast_ethernet()});
  cluster.run([&](Comm& comm) {
    for (const auto& m : plan.msgs) {
      if (m.src == comm.rank()) {
        comm.send_bytes(m.dst, m.tag, std::vector<std::byte>(m.bytes));
      }
    }
    for (const auto& m : plan.msgs) {
      if (m.dst == comm.rank()) {
        const auto payload = comm.recv_bytes(m.src, m.tag);
        EXPECT_EQ(payload.size(), m.bytes);
      }
    }
  });
  if (bytes_out) *bytes_out = cluster.total_bytes();
  if (msgs_out) *msgs_out = cluster.total_messages();
  return cluster.elapsed_seconds();
}

class TrafficFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TrafficFuzz, EveryMessageDeliveredExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Plan plan = random_plan(seed, 6, 60);
  std::uint64_t msgs = 0;
  run_plan(plan, 6, nullptr, &msgs);
  EXPECT_EQ(msgs, plan.msgs.size());
}

TEST_P(TrafficFuzz, DeterministicElapsedTime) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Plan plan = random_plan(seed ^ 0xabcd, 5, 40);
  const double t1 = run_plan(plan, 5, nullptr, nullptr);
  const double t2 = run_plan(plan, 5, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST_P(TrafficFuzz, AccountedBytesMatchThePlan) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Plan plan = random_plan(seed ^ 0x1234, 4, 30);
  std::uint64_t bytes = 0;
  run_plan(plan, 4, &bytes, nullptr);
  std::uint64_t expected = 0;
  const NetworkModel net = NetworkModel::fast_ethernet();
  for (const auto& m : plan.msgs) expected += m.bytes + net.header_bytes;
  EXPECT_EQ(bytes, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficFuzz, ::testing::Range(0, 8));

TEST(Trace, RecordsEveryMessageWithCausalTimes) {
  const Plan plan = random_plan(77, 5, 40);
  Cluster cluster({.ranks = 5, .network = NetworkModel::fast_ethernet(), .record_trace = true});
  cluster.run([&](Comm& comm) {
    for (const auto& m : plan.msgs) {
      if (m.src == comm.rank()) {
        comm.send_bytes(m.dst, m.tag, std::vector<std::byte>(m.bytes));
      }
    }
    for (const auto& m : plan.msgs) {
      if (m.dst == comm.rank()) (void)comm.recv_bytes(m.src, m.tag);
    }
  });
  const auto& trace = cluster.trace();
  ASSERT_EQ(trace.size(), plan.msgs.size());
  const NetworkModel net = NetworkModel::fast_ethernet();
  std::uint64_t traced_bytes = 0;
  for (const TraceRecord& rec : trace) {
    EXPECT_NE(rec.src, rec.dst);
    EXPECT_GE(rec.deliver_time,
              rec.send_time + net.wire_time(rec.bytes) - 1e-15);
    traced_bytes += rec.bytes;
  }
  std::uint64_t plan_bytes = 0;
  for (const auto& m : plan.msgs) plan_bytes += m.bytes;
  EXPECT_EQ(traced_bytes, plan_bytes);
}

TEST(Trace, EmptyWhenDisabledAndClearedBetweenRuns) {
  Cluster off({.ranks = 2, .network = NetworkModel::fast_ethernet()});
  off.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send_value(1, 0, 1);
    else (void)comm.recv_value<int>(0, 0);
  });
  EXPECT_TRUE(off.trace().empty());

  Cluster on({.ranks = 2, .network = NetworkModel::fast_ethernet(), .record_trace = true});
  auto program = [](Comm& comm) {
    if (comm.rank() == 0) comm.send_value(1, 0, 1);
    else (void)comm.recv_value<int>(0, 0);
  };
  on.run(program);
  EXPECT_EQ(on.trace().size(), 1u);
  on.run(program);
  EXPECT_EQ(on.trace().size(), 1u);  // cleared, not accumulated
}

TEST(Causality, DeliveryNeverPrecedesSend) {
  // Receivers' clocks after recv must be at least the sender's send time
  // plus the uncontended transfer time.
  Cluster cluster({.ranks = 4, .network = NetworkModel::fast_ethernet()});
  const NetworkModel& net = cluster.network();
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(0.5);
      comm.send_bytes(3, 1, std::vector<std::byte>(10000));
    } else if (comm.rank() == 3) {
      (void)comm.recv_bytes(0, 1);
      EXPECT_GE(comm.now(), 0.5 + net.uncontended(10000) - 1e-12);
    }
  });
}

TEST(BondedNic, BandwidthScalesWithChannels) {
  const NetworkModel one = NetworkModel::fast_ethernet_bonded(1);
  const NetworkModel three = NetworkModel::fast_ethernet_bonded(3);
  EXPECT_DOUBLE_EQ(three.bandwidth, 3.0 * one.bandwidth);
  EXPECT_DOUBLE_EQ(three.latency, one.latency);  // latency does not bond
  EXPECT_THROW(NetworkModel::fast_ethernet_bonded(0), PreconditionError);
  EXPECT_THROW(NetworkModel::fast_ethernet_bonded(4), PreconditionError);
}

TEST(BondedNic, LargeTransfersSpeedUpSmallOnesBarely) {
  auto transfer_time = [](const NetworkModel& net, std::size_t bytes) {
    Cluster cluster({.ranks = 2, .network = net});
    cluster.run([&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send_bytes(1, 0, std::vector<std::byte>(bytes));
      } else {
        (void)comm.recv_bytes(0, 0);
      }
    });
    return cluster.elapsed_seconds();
  };
  const NetworkModel one = NetworkModel::fast_ethernet_bonded(1);
  const NetworkModel three = NetworkModel::fast_ethernet_bonded(3);
  // 1 MB: ~3x faster. 16 bytes: latency-dominated, nearly unchanged.
  EXPECT_GT(transfer_time(one, 1 << 20) / transfer_time(three, 1 << 20),
            2.3);
  EXPECT_LT(transfer_time(one, 16) / transfer_time(three, 16), 1.2);
}

TEST(SharedHub, ConcurrentPairsSerializeOnOneMedium) {
  // Four disjoint sender/receiver pairs: on a switch they proceed in
  // parallel (cost: one store-and-forward transfer); on a hub all four
  // transfers queue on the single collision domain.
  auto run_pairs = [](const NetworkModel& net) {
    Cluster cluster({.ranks = 8, .network = net});
    cluster.run([](Comm& comm) {
      constexpr std::size_t kBytes = 256 * 1024;
      const int r = comm.rank();
      if (r % 2 == 0) {
        comm.send_bytes(r + 1, 0, std::vector<std::byte>(kBytes));
      } else {
        (void)comm.recv_bytes(r - 1, 0);
      }
    });
    return cluster.elapsed_seconds();
  };
  const double switched = run_pairs(NetworkModel::fast_ethernet());
  const double hub = run_pairs(NetworkModel::fast_ethernet_hub());
  // 4 serialized transfers vs 2 pipelined link crossings: ~2x.
  EXPECT_GT(hub, 1.6 * switched);
}

TEST(SharedHub, SingleTransferCostsTheSame) {
  // With no contention the hub and switch differ only by the second
  // store-and-forward serialization the switch adds.
  auto one = [](const NetworkModel& net) {
    Cluster cluster({.ranks = 2, .network = net});
    cluster.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send_bytes(1, 0, std::vector<std::byte>(100000));
      } else {
        (void)comm.recv_bytes(0, 0);
      }
    });
    return cluster.elapsed_seconds();
  };
  const double hub = one(NetworkModel::fast_ethernet_hub());
  const double switched = one(NetworkModel::fast_ethernet());
  EXPECT_LT(hub, switched);          // hub skips the second serialization
  EXPECT_GT(hub, 0.4 * switched);    // but is the same wire
}

TEST(SharedHub, ResetClearsTheMedium) {
  LinkTimeline links(3, NetworkModel::fast_ethernet_hub());
  links.schedule(0, 1, 1 << 20, 0.0);
  links.reset();
  const double at = links.schedule(0, 1, 0, 0.0);
  EXPECT_LT(at, 1e-3);
}

TEST(Comm, MixedComputeCommunicationOrderIsStable) {
  // A ring where each rank computes a rank-dependent amount then forwards a
  // token: final time equals the sum of all compute plus transfer times,
  // independent of scheduling details.
  const int n = 6;
  Cluster cluster({.ranks = n, .network = NetworkModel::fast_ethernet()});
  cluster.run([n](Comm& comm) {
    const int r = comm.rank();
    if (r == 0) {
      comm.compute(0.01);
      comm.send_value(1, 0, 42);
      const int token = comm.recv_value<int>(n - 1, 0);
      EXPECT_EQ(token, 42);
    } else {
      const int token = comm.recv_value<int>(r - 1, 0);
      comm.compute(0.01);
      comm.send_value((r + 1) % n, 0, token);
    }
  });
  const double expected_compute = 0.01 * n;
  EXPECT_GT(cluster.elapsed_seconds(), expected_compute);
  EXPECT_LT(cluster.elapsed_seconds(), expected_compute + 0.01);
}

}  // namespace
}  // namespace bladed::simnet
