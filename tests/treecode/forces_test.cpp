#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "treecode/direct.hpp"
#include "treecode/ic.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {
namespace {

TEST(DirectForces, TwoBodyAnalytic) {
  // Two unit masses 2 apart, negligible softening: |a| = Gm/r^2 = 1/4.
  ParticleSet p;
  p.add(-1.0, 0.0, 0.0, 1.0);
  p.add(1.0, 0.0, 0.0, 1.0);
  GravityParams g;
  g.softening = 1e-9;
  compute_forces_direct(p, g);
  EXPECT_NEAR(p.ax[0], 0.25, 1e-9);
  EXPECT_NEAR(p.ax[1], -0.25, 1e-9);
  EXPECT_NEAR(p.ay[0], 0.0, 1e-12);
  // Potential of each: -Gm/r = -0.5.
  EXPECT_NEAR(p.pot[0], -0.5, 1e-9);
  // Total potential energy: 0.5 * sum m phi = -0.5.
  EXPECT_NEAR(p.potential_energy(), -0.5, 1e-9);
}

TEST(DirectForces, NewtonsThirdLawMomentumConservation) {
  ParticleSet p = plummer_sphere(300, 61);
  GravityParams g;
  compute_forces_direct(p, g);
  double fx = 0, fy = 0, fz = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    fx += p.m[i] * p.ax[i];
    fy += p.m[i] * p.ay[i];
    fz += p.m[i] * p.az[i];
  }
  EXPECT_NEAR(fx, 0.0, 1e-10);
  EXPECT_NEAR(fy, 0.0, 1e-10);
  EXPECT_NEAR(fz, 0.0, 1e-10);
}

TEST(DirectForces, SymmetricKernelMatchesFullSummation) {
  // The i<j kernel reassociates each target's sum, so demand agreement to
  // 1e-12 relative, not bit equality.
  ParticleSet p = plummer_sphere(700, 63);
  GravityParams g;
  compute_forces_direct(p, g);
  ParticleSet q = plummer_sphere(700, 63);
  compute_forces_direct_symmetric(q, g);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double scale = std::sqrt(p.ax[i] * p.ax[i] + p.ay[i] * p.ay[i] +
                                   p.az[i] * p.az[i]);
    EXPECT_NEAR(p.ax[i], q.ax[i], 1e-12 * scale) << i;
    EXPECT_NEAR(p.ay[i], q.ay[i], 1e-12 * scale) << i;
    EXPECT_NEAR(p.az[i], q.az[i], 1e-12 * scale) << i;
    EXPECT_NEAR(p.pot[i], q.pot[i], 1e-12 * std::abs(p.pot[i])) << i;
  }
}

TEST(DirectForces, SymmetricKernelHalvesPairAccounting) {
  // n(n-1)/2 evaluated pairs, each charged symmetric_interaction_ops()
  // exactly; the shared sqrt/divide work is counted once per pair, so the
  // expensive-op totals are exactly half the full kernel's.
  ParticleSet p = plummer_sphere(257, 5);
  GravityParams g;
  const OpCounter full = compute_forces_direct(p, g);
  const OpCounter half = compute_forces_direct_symmetric(p, g);
  const std::uint64_t n = 257;
  EXPECT_EQ(half, symmetric_interaction_ops() * (n * (n - 1) / 2));
  EXPECT_EQ(full, interaction_ops(RsqrtImpl::kLibm) * (n * (n - 1)));
  EXPECT_EQ(half.fsqrt * 2, full.fsqrt);
  EXPECT_EQ(half.fdiv * 2, full.fdiv);
}

TEST(DirectForces, SymmetricKernelTinySystems) {
  GravityParams g;
  ParticleSet empty;
  EXPECT_EQ(compute_forces_direct_symmetric(empty, g).flops(), 0U);
  ParticleSet one;
  one.add(0.0, 0.0, 0.0, 1.0);
  EXPECT_EQ(compute_forces_direct_symmetric(one, g).flops(), 0U);
  EXPECT_EQ(one.ax[0], 0.0);
}

TEST(TreeForces, MatchDirectWithinThetaBound) {
  ParticleSet p = plummer_sphere(3000, 67);
  Octree tree = Octree::build(p);
  GravityParams g;
  g.theta = 0.7;
  p.zero_accelerations();
  compute_forces(p, tree, g);
  ParticleSet ref = p;
  ref.zero_accelerations();
  compute_forces_direct(ref, g);
  EXPECT_LT(rms_force_error(p, ref), 0.01);  // ~1% at theta=0.7, monopole
}

TEST(TreeForces, ThetaZeroPointOneIsNearlyExact) {
  ParticleSet p = plummer_sphere(800, 71);
  Octree tree = Octree::build(p);
  GravityParams g;
  g.theta = 0.1;
  p.zero_accelerations();
  compute_forces(p, tree, g);
  ParticleSet ref = p;
  ref.zero_accelerations();
  compute_forces_direct(ref, g);
  EXPECT_LT(rms_force_error(p, ref), 2e-4);
}

class ThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweep, ErrorGrowsMonotonicallyWithThetaButStaysBounded) {
  const double theta = GetParam();
  ParticleSet p = plummer_sphere(1500, 73);
  Octree tree = Octree::build(p);
  GravityParams g;
  g.theta = theta;
  p.zero_accelerations();
  const TraversalStats st = compute_forces(p, tree, g);
  ParticleSet ref = p;
  ref.zero_accelerations();
  compute_forces_direct(ref, g);
  const double err = rms_force_error(p, ref);
  // Generous O(theta^2..3) envelope for monopole BH.
  EXPECT_LT(err, 0.04 * theta * theta + 1e-4) << theta;
  EXPECT_GT(st.interactions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

TEST(TreeForces, LargerThetaMeansFewerInteractions) {
  ParticleSet p = plummer_sphere(4000, 79);
  Octree tree = Octree::build(p);
  GravityParams tight;
  tight.theta = 0.3;
  GravityParams loose;
  loose.theta = 1.0;
  ParticleSet a = p, b = p;
  a.zero_accelerations();
  b.zero_accelerations();
  const auto st_tight = compute_forces(a, tree, tight);
  const auto st_loose = compute_forces(b, tree, loose);
  EXPECT_GT(st_tight.interactions(), 2 * st_loose.interactions());
}

TEST(TreeForces, KarpAndLibmKernelsAgree) {
  ParticleSet p = plummer_sphere(1000, 83);
  Octree tree = Octree::build(p);
  GravityParams karp;
  karp.rsqrt = RsqrtImpl::kKarp;
  GravityParams libm;
  libm.rsqrt = RsqrtImpl::kLibm;
  ParticleSet a = p, b = p;
  a.zero_accelerations();
  b.zero_accelerations();
  compute_forces(a, tree, karp);
  compute_forces(b, tree, libm);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(a.ax[i], b.ax[i],
                1e-12 * std::max(1.0, std::fabs(b.ax[i])))
        << i;
  }
  EXPECT_LT(rms_force_error(a, b), 1e-13);
}

TEST(TreeForces, OpCountsMatchEventCounts) {
  ParticleSet p = plummer_sphere(2000, 89);
  Octree tree = Octree::build(p);
  GravityParams g;
  p.zero_accelerations();
  const TraversalStats st = compute_forces(p, tree, g);
  const OpCounter expected =
      interaction_ops(g.rsqrt) * st.interactions() +
      mac_test_ops() * st.mac_tests;
  // Traversal adds per-visit bookkeeping on top of the kernel ops.
  EXPECT_GE(st.ops.iop, expected.iop);
  EXPECT_EQ(st.ops.fsqrt, expected.fsqrt);
  EXPECT_EQ(st.ops.fdiv, expected.fdiv);
  EXPECT_EQ(st.ops.fmul, expected.fmul);
  EXPECT_EQ(st.ops.fadd, expected.fadd);
}

TEST(TreeForces, PartialRangeMatchesFullEvaluation) {
  ParticleSet p = plummer_sphere(600, 97);
  Octree tree = Octree::build(p);
  GravityParams g;
  ParticleSet full = p;
  full.zero_accelerations();
  compute_forces(full, tree, g);
  ParticleSet halves = p;
  halves.zero_accelerations();
  compute_forces(halves, tree, g, 0, 300);
  compute_forces(halves, tree, g, 300, 600);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_DOUBLE_EQ(halves.ax[i], full.ax[i]);
    ASSERT_DOUBLE_EQ(halves.pot[i], full.pot[i]);
  }
}

TEST(TreeForces, SofteningBoundsCloseEncounters) {
  ParticleSet p;
  p.add(0.0, 0.0, 0.0, 1.0);
  p.add(1e-9, 0.0, 0.0, 1.0);  // nearly coincident
  GravityParams g;
  g.softening = 0.01;
  Octree tree = Octree::build(p);
  p.zero_accelerations();
  compute_forces(p, tree, g);
  // Softened force stays finite: |a| <= Gm * r / eps^3.
  EXPECT_LT(std::fabs(p.ax[0]), 1e-9 / std::pow(0.01, 3) + 1.0);
  EXPECT_TRUE(std::isfinite(p.pot[0]));
}

TEST(TreeForces, RejectsBadArguments) {
  ParticleSet p = uniform_cube(50, 1);
  Octree tree = Octree::build(p);
  GravityParams g;
  EXPECT_THROW(compute_forces(p, tree, g, 10, 5), PreconditionError);
  g.theta = 0.0;
  EXPECT_THROW(compute_forces(p, tree, g), PreconditionError);
  ParticleSet other = uniform_cube(20, 2);
  GravityParams ok;
  EXPECT_THROW(compute_forces(other, tree, ok), PreconditionError);
}

}  // namespace
}  // namespace bladed::treecode
