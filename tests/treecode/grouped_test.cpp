#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "treecode/direct.hpp"
#include "treecode/ic.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {
namespace {

TEST(GroupedTraversal, AtLeastAsAccurateAsPerParticle) {
  // The group MAC is evaluated at the cell's closest approach, so it is
  // strictly more conservative: the grouped error can only match or beat
  // the per-particle error at equal theta.
  ParticleSet base = plummer_sphere(4000, 301);
  Octree tree = Octree::build(base);
  GravityParams g;
  g.theta = 0.8;
  ParticleSet per = base, grp = base, exact = base;
  for (ParticleSet* s : {&per, &grp, &exact}) s->zero_accelerations();
  compute_forces(per, tree, g);
  compute_forces_grouped(grp, tree, g);
  compute_forces_direct(exact, g);
  EXPECT_LE(rms_force_error(grp, exact),
            rms_force_error(per, exact) * 1.05);
  EXPECT_LT(rms_force_error(grp, exact), 0.01);
}

TEST(GroupedTraversal, AmortizesMacTestsAcrossTheGroup) {
  ParticleSet base = plummer_sphere(8000, 307);
  TreeParams params;
  params.leaf_capacity = 32;
  Octree tree = Octree::build(base, params);
  GravityParams g;
  ParticleSet per = base, grp = base;
  per.zero_accelerations();
  grp.zero_accelerations();
  const TraversalStats sp = compute_forces(per, tree, g);
  const TraversalStats sg = compute_forces_grouped(grp, tree, g);
  // Far fewer MAC tests / node visits...
  EXPECT_LT(sg.mac_tests * 4, sp.mac_tests);
  EXPECT_LT(sg.visited * 4, sp.visited);
  // ...at the cost of a somewhat longer interaction list.
  EXPECT_GE(sg.interactions(), sp.interactions());
  EXPECT_LT(sg.interactions(), 3 * sp.interactions());
}

TEST(GroupedTraversal, TinyThetaDegeneratesToDirectSummation) {
  ParticleSet base = uniform_cube(300, 311);
  Octree tree = Octree::build(base);
  GravityParams g;
  g.theta = 1e-3;
  ParticleSet grp = base, exact = base;
  grp.zero_accelerations();
  exact.zero_accelerations();
  compute_forces_grouped(grp, tree, g);
  compute_forces_direct(exact, g);
  EXPECT_LT(rms_force_error(grp, exact), 1e-12);
}

TEST(GroupedTraversal, QuadrupoleSupported) {
  ParticleSet base = plummer_sphere(3000, 313);
  Octree tree = Octree::build(base);
  GravityParams mono;
  mono.theta = 0.9;
  GravityParams quad = mono;
  quad.quadrupole = true;
  ParticleSet a = base, b = base, exact = base;
  for (ParticleSet* s : {&a, &b, &exact}) s->zero_accelerations();
  compute_forces_grouped(a, tree, mono);
  const TraversalStats sq = compute_forces_grouped(b, tree, quad);
  compute_forces_direct(exact, mono);
  EXPECT_GT(sq.pn_quad, 0u);
  EXPECT_LT(rms_force_error(b, exact), rms_force_error(a, exact));
}

TEST(GroupedTraversal, LargerGroupsFewerWalks) {
  ParticleSet base = plummer_sphere(6000, 317);
  GravityParams g;
  std::uint64_t prev_macs = ~0ULL;
  for (int cap : {8, 32, 128}) {
    ParticleSet p = base;
    TreeParams params;
    params.leaf_capacity = cap;
    Octree tree = Octree::build(p, params);
    p.zero_accelerations();
    const TraversalStats st = compute_forces_grouped(p, tree, g);
    EXPECT_LT(st.mac_tests, prev_macs) << cap;
    prev_macs = st.mac_tests;
  }
}

TEST(GroupedTraversal, KarpAndLibmAgree) {
  ParticleSet base = plummer_sphere(1000, 331);
  Octree tree = Octree::build(base);
  GravityParams karp;
  GravityParams libm;
  libm.rsqrt = RsqrtImpl::kLibm;
  ParticleSet a = base, b = base;
  a.zero_accelerations();
  b.zero_accelerations();
  compute_forces_grouped(a, tree, karp);
  compute_forces_grouped(b, tree, libm);
  EXPECT_LT(rms_force_error(a, b), 1e-13);
}

TEST(GroupedTraversal, OpsAccounted) {
  ParticleSet base = plummer_sphere(2000, 337);
  Octree tree = Octree::build(base);
  base.zero_accelerations();
  const TraversalStats st =
      compute_forces_grouped(base, tree, GravityParams{});
  EXPECT_EQ(st.ops.fmul,
            (interaction_ops(RsqrtImpl::kKarp) * st.interactions() +
             mac_test_ops() * st.mac_tests)
                .fmul);
}

TEST(GroupedTraversal, RejectsMismatchedTree) {
  ParticleSet p = uniform_cube(100, 1);
  Octree tree = Octree::build(p);
  ParticleSet other = uniform_cube(50, 2);
  EXPECT_THROW(compute_forces_grouped(other, tree, GravityParams{}),
               PreconditionError);
}

}  // namespace
}  // namespace bladed::treecode
