#include "treecode/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "treecode/direct.hpp"
#include "treecode/ic.hpp"

namespace bladed::treecode {
namespace {

TEST(Plummer, VirialEquilibriumApproximately) {
  // A relaxed Plummer model satisfies 2K + W ~ 0.
  ParticleSet p = plummer_sphere(8000, 101);
  GravityParams g;
  g.softening = 1e-3;
  compute_forces_direct(p, g);
  const double K = p.kinetic_energy();
  const double W = p.potential_energy();
  EXPECT_NEAR(2.0 * K / std::fabs(W), 1.0, 0.12);
}

TEST(Plummer, CenteredAndAtRest) {
  const ParticleSet p = plummer_sphere(5000, 103);
  const auto com = p.center_of_mass();
  EXPECT_NEAR(com.x, 0.0, 1e-12);
  EXPECT_NEAR(com.vx, 0.0, 1e-12);
  EXPECT_NEAR(p.total_mass(), 1.0, 1e-12);
}

TEST(Leapfrog, TwoBodyCircularOrbitClosesOnItself) {
  // Equal masses m=0.5 on a circular orbit of radius 1 about the origin:
  // v^2 = G m_other / (2 r) with separation 2r -> a = G*0.5/4 = v^2/r.
  ParticleSet p;
  p.add(-1.0, 0.0, 0.0, 0.5);
  p.add(1.0, 0.0, 0.0, 0.5);
  const double v = std::sqrt(0.5 / 4.0);  // 0.3536
  p.vy[0] = -v;
  p.vy[1] = v;
  GravityParams g;
  g.softening = 1e-9;
  g.theta = 0.1;
  const double r = 1.0;
  const double period = 2.0 * M_PI * r / v;
  const int steps = 2000;
  LeapfrogIntegrator integ(g, TreeParams{}, period / steps);
  for (int i = 0; i < steps; ++i) integ.step(p);
  // After one period the bodies return to their initial positions (the
  // Morton sort may have swapped their indices; compare as a set).
  EXPECT_NEAR(std::min(p.x[0], p.x[1]), -1.0, 0.01);
  EXPECT_NEAR(std::max(p.x[0], p.x[1]), 1.0, 0.01);
  EXPECT_NEAR(p.y[0], 0.0, 0.01);
  EXPECT_NEAR(p.y[1], 0.0, 0.01);
}

TEST(Leapfrog, EnergyConservedOverManySteps) {
  ParticleSet p = plummer_sphere(1500, 107);
  GravityParams g;
  g.softening = 5e-3;
  g.theta = 0.5;
  LeapfrogIntegrator integ(g, TreeParams{}, 1e-3);
  const StepStats first = integ.step(p);
  const double e0 = first.total_energy();
  StepStats last = first;
  for (int i = 0; i < 40; ++i) last = integ.step(p);
  EXPECT_LT(std::fabs(last.total_energy() - e0) / std::fabs(e0), 5e-3);
}

TEST(Leapfrog, MomentumConservedByTimeIntegration) {
  ParticleSet p = plummer_sphere(800, 109);
  GravityParams g;
  LeapfrogIntegrator integ(g, TreeParams{}, 1e-3);
  for (int i = 0; i < 10; ++i) integ.step(p);
  const auto com = p.center_of_mass();
  // Tree-approximate forces do not exactly cancel, but drift stays tiny.
  EXPECT_NEAR(com.vx, 0.0, 1e-4);
  EXPECT_NEAR(com.vy, 0.0, 1e-4);
  EXPECT_NEAR(com.vz, 0.0, 1e-4);
}

TEST(Leapfrog, TimeReversalRecoversInitialState) {
  // Integrate forward 20 steps, negate velocities, integrate 20 more:
  // leapfrog is time-reversible up to floating-point noise.
  ParticleSet p = plummer_sphere(300, 113);
  const ParticleSet initial = p;
  GravityParams g;
  g.theta = 0.4;
  LeapfrogIntegrator fwd(g, TreeParams{}, 5e-4);
  for (int i = 0; i < 20; ++i) fwd.step(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.vx[i] = -p.vx[i];
    p.vy[i] = -p.vy[i];
    p.vz[i] = -p.vz[i];
  }
  LeapfrogIntegrator bwd(g, TreeParams{}, 5e-4);
  for (int i = 0; i < 20; ++i) bwd.step(p);
  // Compare positions to the start (order changed by Morton sorting, so
  // compare sorted coordinate multisets).
  auto sorted = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto xs = sorted(p.x);
  const auto xs0 = sorted(initial.x);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i], xs0[i], 1e-6);
  }
}

TEST(Leapfrog, RunAccumulatesStats) {
  ParticleSet p = plummer_sphere(500, 127);
  GravityParams g;
  LeapfrogIntegrator integ(g, TreeParams{}, 1e-3);
  const StepStats s = integ.run(p, 3);
  EXPECT_GT(s.traversal.interactions(), 0u);
  EXPECT_GT(s.build_ops.flops(), 0u);
  EXPECT_LT(s.potential, 0.0);
  EXPECT_GT(s.kinetic, 0.0);
}

TEST(Leapfrog, RejectsBadConfiguration) {
  GravityParams g;
  EXPECT_THROW(LeapfrogIntegrator(g, TreeParams{}, 0.0), PreconditionError);
  LeapfrogIntegrator integ(g, TreeParams{}, 1e-3);
  ParticleSet p = uniform_cube(10, 1);
  EXPECT_THROW(integ.run(p, 0), PreconditionError);
}

TEST(CollidingPair, StartsSeparatedAndApproaching) {
  const ParticleSet p = colliding_pair(2000, 131, 6.0, 0.3);
  // Mean x of the left half is negative, right half positive.
  double left = 0, right = 0;
  for (std::size_t i = 0; i < 1000; ++i) left += p.x[i];
  for (std::size_t i = 1000; i < 2000; ++i) right += p.x[i];
  EXPECT_LT(left / 1000, -2.0);
  EXPECT_GT(right / 1000, 2.0);
  // Closing velocity.
  double vleft = 0;
  for (std::size_t i = 0; i < 1000; ++i) vleft += p.vx[i];
  EXPECT_GT(vleft / 1000, 0.1);
}

}  // namespace
}  // namespace bladed::treecode
