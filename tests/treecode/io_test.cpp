#include "treecode/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "treecode/ic.hpp"

namespace bladed::treecode {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotIo, BinaryRoundTripIsExact) {
  ParticleSet p = plummer_sphere(1234, 31);
  const std::string path = temp_path("roundtrip.bin");
  save_snapshot(p, path);
  const ParticleSet q = load_snapshot(path);
  ASSERT_EQ(q.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_EQ(q.x[i], p.x[i]);
    ASSERT_EQ(q.vy[i], p.vy[i]);
    ASSERT_EQ(q.m[i], p.m[i]);
  }
  // Derived state is reset.
  for (double a : q.ax) ASSERT_EQ(a, 0.0);
  std::remove(path.c_str());
}

TEST(SnapshotIo, DetectsCorruption) {
  ParticleSet p = uniform_cube(100, 37);
  const std::string path = temp_path("corrupt.bin");
  save_snapshot(p, path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    const char junk = 'X';
    f.write(&junk, 1);
  }
  EXPECT_THROW((void)load_snapshot(path), SimulationError);
  std::remove(path.c_str());
}

TEST(SnapshotIo, RejectsForeignFiles) {
  const std::string path = temp_path("notasnapshot.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a snapshot at all, not even close";
  }
  EXPECT_THROW((void)load_snapshot(path), SimulationError);
  std::remove(path.c_str());
}

TEST(SnapshotIo, MissingFileThrows) {
  EXPECT_THROW((void)load_snapshot(temp_path("does_not_exist.bin")),
               SimulationError);
}

TEST(CsvIo, WritesHeaderAndAllRows) {
  ParticleSet p = uniform_cube(50, 41);
  const std::string path = temp_path("all.csv");
  write_csv(p, path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y,z,m");
  int rows = 0;
  while (std::getline(f, line)) ++rows;
  EXPECT_EQ(rows, 50);
  std::remove(path.c_str());
}

TEST(CsvIo, ThinningBoundsRowCount) {
  ParticleSet p = uniform_cube(1000, 43);
  const std::string path = temp_path("thin.csv");
  write_csv(p, path, 100);
  std::ifstream f(path);
  std::string line;
  int rows = -1;  // minus the header
  while (std::getline(f, line)) ++rows;
  EXPECT_GE(rows, 100);
  EXPECT_LE(rows, 200);  // stride rounding
  std::remove(path.c_str());
}

TEST(CsvIo, UnwritablePathThrows) {
  const ParticleSet p = uniform_cube(5, 47);
  EXPECT_THROW(write_csv(p, "/nonexistent_dir_xyz/out.csv"),
               SimulationError);
}

}  // namespace
}  // namespace bladed::treecode
