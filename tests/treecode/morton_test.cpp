#include "treecode/morton.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "treecode/ic.hpp"

namespace bladed::treecode {
namespace {

TEST(Morton, InterleaveKnownValues) {
  EXPECT_EQ(morton_interleave(0, 0, 0), 0u);
  EXPECT_EQ(morton_interleave(1, 0, 0), 1u);
  EXPECT_EQ(morton_interleave(0, 1, 0), 2u);
  EXPECT_EQ(morton_interleave(0, 0, 1), 4u);
  EXPECT_EQ(morton_interleave(1, 1, 1), 7u);
  // x=0b10, y=0, z=0 -> bit 3.
  EXPECT_EQ(morton_interleave(2, 0, 0), 8u);
  EXPECT_EQ(morton_interleave(3, 3, 3), 63u);
}

TEST(Morton, InterleaveUsesAll63Bits) {
  const std::uint32_t maxc = (1u << 21) - 1;
  EXPECT_EQ(morton_interleave(maxc, maxc, maxc), (1ULL << 63) - 1);
}

TEST(Morton, KeyOrderRespectsOctants) {
  BoundingBox box;
  box.lo[0] = box.lo[1] = box.lo[2] = 0.0;
  box.extent = 1.0;
  // Lower octant keys < upper octant keys on the leading dimension (z).
  const auto low = morton_key(0.9, 0.9, 0.1, box);
  const auto high = morton_key(0.1, 0.1, 0.6, box);
  EXPECT_LT(low, high);
}

TEST(Morton, KeysClampOutOfBoxPositions) {
  BoundingBox box;
  box.extent = 1.0;
  const auto inside = morton_key(0.999999, 0.5, 0.5, box);
  const auto outside = morton_key(5.0, 0.5, 0.5, box);
  EXPECT_EQ(inside >> 60, outside >> 60);  // clamped to the same region
}

TEST(Morton, OctantExtraction) {
  // Key with x=1 at the top level only: top octant bit 0 set.
  BoundingBox box;
  box.extent = 1.0;
  const auto key = morton_key(0.75, 0.25, 0.25, box);
  EXPECT_EQ(morton_octant(key, 0) & 1, 1);
  EXPECT_THROW(morton_octant(key, kMortonBitsPerDim), PreconditionError);
  EXPECT_THROW(morton_octant(key, -1), PreconditionError);
}

TEST(BoundingBoxTest, ContainsAllParticlesAndIsCubic) {
  const ParticleSet p = plummer_sphere(500, 7);
  const BoundingBox box = BoundingBox::containing(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_TRUE(box.contains(p.x[i], p.y[i], p.z[i])) << i;
  }
  EXPECT_GT(box.extent, 0.0);
}

TEST(BoundingBoxTest, DegenerateSetGetsUnitBox) {
  ParticleSet p;
  p.add(1.0, 2.0, 3.0, 1.0);
  p.add(1.0, 2.0, 3.0, 1.0);
  const BoundingBox box = BoundingBox::containing(p);
  EXPECT_GT(box.extent, 0.5);
  EXPECT_TRUE(box.contains(1.0, 2.0, 3.0));
}

TEST(BoundingBoxTest, EmptySetRejected) {
  ParticleSet p;
  EXPECT_THROW(BoundingBox::containing(p), PreconditionError);
}

TEST(BoundingBoxTest, Dist2ToCell) {
  const double c[3] = {0.0, 0.0, 0.0};
  // Inside.
  EXPECT_DOUBLE_EQ(BoundingBox::dist2_to_cell(0.5, 0.0, 0.0, c, 1.0), 0.0);
  // One axis out by 1.
  EXPECT_DOUBLE_EQ(BoundingBox::dist2_to_cell(2.0, 0.0, 0.0, c, 1.0), 1.0);
  // Corner: out by (1,1,1).
  EXPECT_DOUBLE_EQ(BoundingBox::dist2_to_cell(2.0, 2.0, 2.0, c, 1.0), 3.0);
}

TEST(Morton, SortPermutationSortsKeys) {
  const ParticleSet p = uniform_cube(1000, 3);
  const BoundingBox box = BoundingBox::containing(p);
  const auto keys = morton_keys(p, box);
  const auto perm = sort_permutation(keys);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

TEST(Morton, SpatiallyClosePointsShareKeyPrefixes) {
  BoundingBox box;
  box.extent = 1.0;
  const auto a = morton_key(0.500001, 0.500001, 0.500001, box);
  const auto b = morton_key(0.500002, 0.500002, 0.500002, box);
  const auto far = morton_key(0.9, 0.1, 0.2, box);
  // a and b agree in many leading octants; a and far differ at the top.
  int shared_ab = 0, shared_af = 0;
  for (int level = 0; level < kMortonBitsPerDim; ++level) {
    if (morton_octant(a, level) == morton_octant(b, level)) {
      ++shared_ab;
    } else {
      break;
    }
  }
  for (int level = 0; level < kMortonBitsPerDim; ++level) {
    if (morton_octant(a, level) == morton_octant(far, level)) {
      ++shared_af;
    } else {
      break;
    }
  }
  EXPECT_GT(shared_ab, 10);
  EXPECT_EQ(shared_af, 0);
}

}  // namespace
}  // namespace bladed::treecode
