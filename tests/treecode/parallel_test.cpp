#include "treecode/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "treecode/direct.hpp"
#include "treecode/ic.hpp"
#include "treecode/perf.hpp"

namespace bladed::treecode {
namespace {

ParallelConfig base_config(int ranks, std::size_t n) {
  ParallelConfig cfg;
  cfg.ranks = ranks;
  cfg.particles = n;
  cfg.steps = 1;
  cfg.cpu = &arch::tm5600_633();
  cfg.seed = 7;
  return cfg;
}

TEST(CollectLet, DistantBoxGetsFewElements) {
  ParticleSet p = plummer_sphere(4000, 137);
  const Octree tree = Octree::build(p);
  BoundingBox far;
  far.lo[0] = 100.0;
  far.lo[1] = 100.0;
  far.lo[2] = 100.0;
  far.extent = 1.0;
  const auto let = collect_let(tree, p, far, 0.7);
  // From far away the whole cluster collapses to a handful of cells.
  EXPECT_LT(let.size(), 64u);
  EXPECT_GE(let.size(), 1u);
  // Mass is conserved by the export.
  double mass = 0.0;
  for (const auto& e : let) mass += e.m;
  EXPECT_NEAR(mass, p.total_mass(), 1e-9);
}

TEST(CollectLet, OverlappingBoxGetsEverythingAsParticles) {
  ParticleSet p = uniform_cube(500, 139);
  const Octree tree = Octree::build(p);
  const BoundingBox self_box = tree.box();
  const auto let = collect_let(tree, p, self_box, 0.7);
  // An observer box covering the source must receive (at least) every
  // particle individually — no cell can satisfy the MAC at distance 0.
  EXPECT_EQ(let.size(), p.size());
}

TEST(CollectLet, CloserBoxesNeedMoreDetail) {
  ParticleSet p = plummer_sphere(4000, 149);
  const Octree tree = Octree::build(p);
  auto count_at = [&](double d) {
    BoundingBox b;
    b.lo[0] = d;
    b.lo[1] = 0.0;
    b.lo[2] = 0.0;
    b.extent = 1.0;
    return collect_let(tree, p, b, 0.7).size();
  };
  EXPECT_GT(count_at(3.0), count_at(10.0));
  EXPECT_GT(count_at(10.0), count_at(100.0));
}

TEST(CollectLet, MassConservedAtAnyDistance) {
  ParticleSet p = plummer_sphere(2000, 151);
  const Octree tree = Octree::build(p);
  for (double d : {2.0, 5.0, 20.0, 200.0}) {
    BoundingBox b;
    b.lo[0] = d;
    b.lo[1] = -0.5;
    b.lo[2] = -0.5;
    b.extent = 1.0;
    const auto let = collect_let(tree, p, b, 0.7);
    double mass = 0.0;
    for (const auto& e : let) mass += e.m;
    EXPECT_NEAR(mass, p.total_mass(), 1e-9) << d;
  }
}

TEST(ParallelNbody, SingleRankMatchesSerialPhysics) {
  ParallelConfig cfg = base_config(1, 2000);
  const ParallelResult res = run_parallel_nbody(cfg);
  EXPECT_EQ(res.particles_out.size(), 2000u);
  EXPECT_GT(res.kinetic, 0.0);
  EXPECT_LT(res.potential, 0.0);
  EXPECT_EQ(res.messages, 0u);  // no network traffic on one rank
  EXPECT_GT(res.sustained_gflops, 0.0);
}

TEST(ParallelNbody, ForcesAgreeWithDirectSummation) {
  // Run 4 ranks for one tiny step, then compare the final accelerations
  // against direct summation on the same positions.
  ParallelConfig cfg = base_config(4, 3000);
  cfg.dt = 1e-9;  // effectively freeze positions
  const ParallelResult res = run_parallel_nbody(cfg);
  ParticleSet tree_result = res.particles_out;
  ParticleSet ref = tree_result;
  ref.zero_accelerations();
  compute_forces_direct(ref, cfg.gravity);
  EXPECT_LT(rms_force_error(tree_result, ref), 0.02);
}

TEST(ParallelNbody, EnergyAgreesAcrossRankCounts) {
  // The physics must not depend on the decomposition: total energies for
  // 1, 2 and 6 ranks agree to the tree-approximation level.
  double e1 = 0.0;
  for (int ranks : {1, 2, 6}) {
    ParallelConfig cfg = base_config(ranks, 1800);
    cfg.dt = 1e-4;
    const ParallelResult res = run_parallel_nbody(cfg);
    const double e = res.kinetic + res.potential;
    if (ranks == 1) {
      e1 = e;
    } else {
      EXPECT_NEAR(e, e1, 0.02 * std::fabs(e1)) << ranks;
    }
  }
}

TEST(ParallelNbody, MassConserved) {
  ParallelConfig cfg = base_config(5, 2500);
  const ParallelResult res = run_parallel_nbody(cfg);
  EXPECT_NEAR(res.particles_out.total_mass(), 1.0, 1e-9);
}

TEST(ParallelNbody, DeterministicAcrossRuns) {
  ParallelConfig cfg = base_config(3, 1200);
  const ParallelResult a = run_parallel_nbody(cfg);
  const ParallelResult b = run_parallel_nbody(cfg);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.total_flops, b.total_flops);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.kinetic, b.kinetic);
}

TEST(ParallelNbody, MoreRanksShorterSimulatedTime) {
  const std::size_t n = 12000;
  ParallelConfig c1 = base_config(1, n);
  ParallelConfig c8 = base_config(8, n);
  const double t1 = run_parallel_nbody(c1).elapsed_seconds;
  const double t8 = run_parallel_nbody(c8).elapsed_seconds;
  EXPECT_LT(t8, t1);
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 3.0);   // real speedup...
  EXPECT_LT(speedup, 8.01);  // ...but not superlinear
}

TEST(ParallelNbody, CommunicationGrowsWithRanks) {
  const std::size_t n = 6000;
  ParallelConfig c2 = base_config(2, n);
  ParallelConfig c8 = base_config(8, n);
  const auto r2 = run_parallel_nbody(c2);
  const auto r8 = run_parallel_nbody(c8);
  EXPECT_GT(r8.messages, r2.messages);
  EXPECT_GT(r8.bytes, r2.bytes);
}

TEST(ParallelNbody, FasterNetworkImprovesElapsedTime) {
  ParallelConfig slow = base_config(8, 6000);
  ParallelConfig fast = slow;
  fast.network = simnet::NetworkModel::gigabit();
  EXPECT_LT(run_parallel_nbody(fast).elapsed_seconds,
            run_parallel_nbody(slow).elapsed_seconds);
}

TEST(ParallelNbody, FasterCpuShiftsBottleneckToNetwork) {
  ParallelConfig tm = base_config(8, 4000);
  ParallelConfig athlon = tm;
  athlon.cpu = &arch::athlon_mp_1200();
  const auto rtm = run_parallel_nbody(tm);
  const auto rath = run_parallel_nbody(athlon);
  EXPECT_LT(rath.elapsed_seconds, rtm.elapsed_seconds);
  // Same communication either way.
  EXPECT_EQ(rath.bytes, rtm.bytes);
}

TEST(ParallelNbody, RejectsBadConfig) {
  ParallelConfig cfg = base_config(4, 2);  // fewer particles than ranks
  EXPECT_THROW(run_parallel_nbody(cfg), PreconditionError);
  cfg = base_config(4, 100);
  cfg.cpu = nullptr;
  EXPECT_THROW(run_parallel_nbody(cfg), PreconditionError);
  cfg = base_config(4, 100);
  cfg.ic_kind = 99;
  EXPECT_THROW(run_parallel_nbody(cfg), PreconditionError);
}

TEST(Perf, SingleProcRatesMatchPaperStory) {
  // Treecode single-processor rates: the TM5600 runs the treecode at ~20%
  // of its 633-Mflops peak, about 1.3x a Pentium III and ~3x a Pentium Pro
  // 200, consistent with Table 4's per-processor column once parallel
  // efficiency is applied.
  const double tm = single_proc_treecode_mflops(arch::tm5600_633());
  EXPECT_GT(tm, 100.0);
  EXPECT_LT(tm, 160.0);
  const double tm2 = single_proc_treecode_mflops(arch::tm5800_800());
  EXPECT_NEAR(tm2 / tm, 3.3 / 2.1, 0.12);  // MetaBlade2 / MetaBlade ratio
  const double ppro = single_proc_treecode_mflops(arch::pentium_pro_200());
  EXPECT_GT(tm / ppro, 2.0);
  const double ev = single_proc_treecode_mflops(arch::alpha_ev56_533());
  EXPECT_NEAR(tm / ev, 1.15, 0.35);  // "about the same as" the 533 Alpha
}

}  // namespace
}  // namespace bladed::treecode
