#include <gtest/gtest.h>

#include <cmath>

#include "treecode/direct.hpp"
#include "treecode/ic.hpp"
#include "treecode/traverse.hpp"

namespace bladed::treecode {
namespace {

TEST(Quadrupole, TensorIsTraceless) {
  ParticleSet p = plummer_sphere(3000, 211);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    if (n.mass == 0.0) continue;
    EXPECT_NEAR(n.quad[0] + n.quad[3] + n.quad[5], 0.0,
                1e-9 * std::max(1.0, std::fabs(n.quad[0])));
  }
}

TEST(Quadrupole, SingleParticleCellHasZeroQuadrupole) {
  ParticleSet p;
  p.add(0.3, -0.2, 0.7, 2.0);
  p.add(10.0, 10.0, 10.0, 1.0);  // force a split
  TreeParams params;
  params.leaf_capacity = 1;
  const Octree t = Octree::build(p, params);
  for (const Node& n : t.nodes()) {
    if (n.count != 1) continue;
    for (double q : n.quad) EXPECT_NEAR(q, 0.0, 1e-12);
  }
}

TEST(Quadrupole, MatchesAnalyticTwoMassSystem) {
  // Two m/2 masses at x = +-a: Qxx = 2 a^2 m, Qyy = Qzz = -a^2 m. The
  // far-field axial potential is -Gm/r - Gm a^2/r^3 + O(r^-5).
  const double a = 0.5, m = 2.0;
  ParticleSet p;
  p.add(-a, 0.0, 0.0, m / 2);
  p.add(a, 0.0, 0.0, m / 2);
  const Octree t = Octree::build(p);
  const Node& root = t.root();
  EXPECT_NEAR(root.quad[0], 2.0 * a * a * m, 1e-12);
  EXPECT_NEAR(root.quad[3], -a * a * m, 1e-12);
  EXPECT_NEAR(root.quad[5], -a * a * m, 1e-12);
  EXPECT_NEAR(root.quad[1], 0.0, 1e-12);

  // Evaluate the multipole at a distant axial point via the traversal: add
  // a massless probe... instead compute via compute_forces_on.
  ParticleSet probe;
  probe.add(10.0, 0.0, 0.0, 1.0);
  GravityParams g;
  g.theta = 10.0;  // force acceptance of the root cell
  g.softening = 1e-12;
  g.quadrupole = true;
  probe.zero_accelerations();
  compute_forces_on(probe, p, t, g);
  const double r = 10.0;
  const double exact_pot =
      -(m / 2) / (r - a) - (m / 2) / (r + a);
  const double mono_pot = -m / r;
  // With the quadrupole term the potential error must shrink by ~(a/r)^2
  // relative to monopole-only.
  EXPECT_LT(std::fabs(probe.pot[0] - exact_pot),
            0.05 * std::fabs(mono_pot - exact_pot));
  // And the axial force likewise.
  const double exact_ax =
      -(m / 2) / ((r - a) * (r - a)) - (m / 2) / ((r + a) * (r + a));
  ParticleSet probe_mono;
  probe_mono.add(10.0, 0.0, 0.0, 1.0);
  GravityParams gm = g;
  gm.quadrupole = false;
  probe_mono.zero_accelerations();
  compute_forces_on(probe_mono, p, t, gm);
  EXPECT_LT(std::fabs(probe.ax[0] - exact_ax),
            0.1 * std::fabs(probe_mono.ax[0] - exact_ax));
}

TEST(Quadrupole, CutsRmsErrorSeveralFoldAtEqualTheta) {
  ParticleSet p = plummer_sphere(3000, 223);
  const Octree tree = Octree::build(p);
  GravityParams mono;
  mono.theta = 0.8;
  GravityParams quad = mono;
  quad.quadrupole = true;

  ParticleSet a = p, b = p, exact = p;
  a.zero_accelerations();
  b.zero_accelerations();
  exact.zero_accelerations();
  compute_forces(a, tree, mono);
  const TraversalStats qs = compute_forces(b, tree, quad);
  compute_forces_direct(exact, mono);

  const double err_mono = rms_force_error(a, exact);
  const double err_quad = rms_force_error(b, exact);
  // The next neglected term (octupole) is one power of h/d (~theta/2)
  // smaller, so expect roughly a 2x improvement at theta = 0.8.
  EXPECT_LT(err_quad, err_mono / 1.8);
  EXPECT_GT(qs.pn_quad, 0u);
}

TEST(Quadrupole, CostedInOpCounts) {
  ParticleSet p = plummer_sphere(1000, 227);
  const Octree tree = Octree::build(p);
  GravityParams mono;
  GravityParams quad = mono;
  quad.quadrupole = true;
  ParticleSet a = p, b = p;
  a.zero_accelerations();
  b.zero_accelerations();
  const TraversalStats sm = compute_forces(a, tree, mono);
  const TraversalStats sq = compute_forces(b, tree, quad);
  EXPECT_EQ(sm.interactions(), sq.interactions());  // same traversal
  EXPECT_GT(sq.ops.fmul, sm.ops.fmul);              // but more work
  EXPECT_EQ(sm.pn_quad, 0u);
}

TEST(Quadrupole, LibmAndKarpPathsAgree) {
  ParticleSet p = plummer_sphere(800, 229);
  const Octree tree = Octree::build(p);
  GravityParams karp;
  karp.quadrupole = true;
  GravityParams libm = karp;
  libm.rsqrt = RsqrtImpl::kLibm;
  ParticleSet a = p, b = p;
  a.zero_accelerations();
  b.zero_accelerations();
  compute_forces(a, tree, karp);
  compute_forces(b, tree, libm);
  EXPECT_LT(rms_force_error(a, b), 1e-13);
}

TEST(Quadrupole, PerParticlePotentialErrorImproves) {
  // Per-particle potential errors must shrink with the quadrupole term
  // (summed energies are too cancellation-prone to compare).
  ParticleSet p = plummer_sphere(2000, 233);
  const Octree tree = Octree::build(p);
  GravityParams mono;
  mono.theta = 0.9;
  GravityParams quad = mono;
  quad.quadrupole = true;
  ParticleSet a = p, b = p, exact = p;
  for (ParticleSet* s : {&a, &b, &exact}) s->zero_accelerations();
  compute_forces(a, tree, mono);
  compute_forces(b, tree, quad);
  compute_forces_direct(exact, mono);
  auto rms_pot_err = [&](const ParticleSet& s) {
    double e2 = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      e2 += (s.pot[i] - exact.pot[i]) * (s.pot[i] - exact.pot[i]);
    }
    return std::sqrt(e2 / static_cast<double>(s.size()));
  };
  EXPECT_LT(rms_pot_err(b), 0.7 * rms_pot_err(a));
}

}  // namespace
}  // namespace bladed::treecode
