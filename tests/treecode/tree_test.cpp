#include "treecode/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "treecode/ic.hpp"

namespace bladed::treecode {
namespace {

TEST(Octree, RootCoversAllParticlesWithTotalMass) {
  ParticleSet p = plummer_sphere(2000, 11);
  const double mass = p.total_mass();
  const Octree t = Octree::build(p);
  EXPECT_EQ(t.root().count, 2000u);
  EXPECT_NEAR(t.root().mass, mass, 1e-12 * mass);
  EXPECT_EQ(t.particle_count(), 2000u);
}

TEST(Octree, LeafCapacityIsRespected) {
  ParticleSet p = uniform_cube(5000, 13);
  TreeParams params;
  params.leaf_capacity = 8;
  const Octree t = Octree::build(p, params);
  for (const Node& n : t.nodes()) {
    if (n.leaf) {
      EXPECT_TRUE(n.count <= 8 ||
                  n.level == static_cast<std::uint8_t>(params.max_depth))
          << "leaf with " << n.count;
    }
  }
}

TEST(Octree, ChildrenPartitionParents) {
  ParticleSet p = plummer_sphere(3000, 17);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    if (n.leaf) continue;
    std::uint32_t total = 0;
    double mass = 0.0;
    for (std::uint8_t c = 0; c < n.child_count; ++c) {
      const Node& ch = t.nodes()[n.child[c]];
      total += ch.count;
      mass += ch.mass;
      EXPECT_EQ(ch.level, n.level + 1);
      EXPECT_NEAR(ch.half, 0.5 * n.half, 1e-12);
    }
    EXPECT_EQ(total, n.count);
    EXPECT_NEAR(mass, n.mass, 1e-9 * std::max(1.0, n.mass));
  }
}

TEST(Octree, ChildRangesAreContiguousAndOrdered) {
  ParticleSet p = uniform_cube(2000, 19);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    if (n.leaf) continue;
    std::uint32_t cursor = n.first;
    for (std::uint8_t c = 0; c < n.child_count; ++c) {
      const Node& ch = t.nodes()[n.child[c]];
      EXPECT_EQ(ch.first, cursor);
      cursor += ch.count;
    }
    EXPECT_EQ(cursor, n.first + n.count);
  }
}

TEST(Octree, ParticlesLieInsideTheirLeafCells) {
  ParticleSet p = plummer_sphere(1500, 23);
  const Octree t = Octree::build(p);
  const double slack = 1e-9;
  for (const Node& n : t.nodes()) {
    if (!n.leaf) continue;
    for (std::uint32_t i = n.first; i < n.first + n.count; ++i) {
      EXPECT_LE(std::fabs(p.x[i] - n.center[0]), n.half * (1 + slack) + slack);
      EXPECT_LE(std::fabs(p.y[i] - n.center[1]), n.half * (1 + slack) + slack);
      EXPECT_LE(std::fabs(p.z[i] - n.center[2]), n.half * (1 + slack) + slack);
    }
  }
}

TEST(Octree, ComIsInsideCellAndMassWeighted) {
  ParticleSet p = uniform_cube(4000, 29);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    if (n.mass == 0.0) continue;
    // COM of the range computed independently.
    double m = 0, cx = 0, cy = 0, cz = 0;
    for (std::uint32_t i = n.first; i < n.first + n.count; ++i) {
      m += p.m[i];
      cx += p.m[i] * p.x[i];
      cy += p.m[i] * p.y[i];
      cz += p.m[i] * p.z[i];
    }
    EXPECT_NEAR(n.com[0], cx / m, 1e-9);
    EXPECT_NEAR(n.com[1], cy / m, 1e-9);
    EXPECT_NEAR(n.com[2], cz / m, 1e-9);
  }
}

TEST(Octree, HashedLookupFindsEveryNode) {
  // The Warren-Salmon property: every cell is reachable by path key in O(1).
  ParticleSet p = plummer_sphere(2500, 31);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    const Node* found = t.find(n.path_key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->first, n.first);
    EXPECT_EQ(found->count, n.count);
  }
  EXPECT_EQ(t.find(0xdeadbeefULL << 30), nullptr);
}

TEST(Octree, PathKeysEncodeParentChildRelation) {
  ParticleSet p = uniform_cube(1000, 37);
  const Octree t = Octree::build(p);
  for (const Node& n : t.nodes()) {
    for (std::uint8_t c = 0; c < n.child_count; ++c) {
      const Node& ch = t.nodes()[n.child[c]];
      EXPECT_EQ(ch.path_key >> 3, n.path_key);
    }
  }
  EXPECT_EQ(t.root().path_key, 1u);
}

TEST(Octree, SingleParticleTree) {
  ParticleSet p;
  p.add(0.5, -0.25, 0.125, 2.0);
  const Octree t = Octree::build(p);
  EXPECT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.root().leaf);
  EXPECT_DOUBLE_EQ(t.root().mass, 2.0);
  EXPECT_EQ(t.leaf_count(), 1u);
}

TEST(Octree, CoincidentParticlesStopAtMaxDepth) {
  ParticleSet p;
  for (int i = 0; i < 40; ++i) p.add(0.1, 0.2, 0.3, 1.0);
  TreeParams params;
  params.leaf_capacity = 4;
  params.max_depth = 6;
  const Octree t = Octree::build(p, params);
  EXPECT_LE(t.depth(), 6);
  EXPECT_DOUBLE_EQ(t.root().mass, 40.0);
}

TEST(Octree, DepthGrowsLogarithmically) {
  ParticleSet small = uniform_cube(100, 41);
  ParticleSet large = uniform_cube(20000, 41);
  const int d_small = Octree::build(small).depth();
  const int d_large = Octree::build(large).depth();
  EXPECT_GT(d_large, d_small);
  EXPECT_LE(d_large, d_small + 6);  // 200x more particles ~ log8(200) ~ 2.6
}

TEST(Octree, BuildOpsAreCounted) {
  ParticleSet p = uniform_cube(1000, 43);
  const Octree t = Octree::build(p);
  EXPECT_GT(t.build_ops().flops(), 0u);
  EXPECT_GT(t.build_ops().iop, 0u);
}

TEST(Octree, BuildSortedRejectsUnsortedInput) {
  ParticleSet p = uniform_cube(100, 47);  // not Morton sorted
  const BoundingBox box = BoundingBox::containing(p);
  EXPECT_THROW(Octree::build_sorted(p, box), PreconditionError);
}

TEST(Octree, RejectsEmptyAndBadParams) {
  ParticleSet empty;
  EXPECT_THROW(Octree::build(empty), PreconditionError);
  ParticleSet p = uniform_cube(10, 1);
  TreeParams bad;
  bad.leaf_capacity = 0;
  EXPECT_THROW(Octree::build(p, bad), PreconditionError);
  bad = TreeParams{};
  bad.max_depth = 99;
  EXPECT_THROW(Octree::build(p, bad), PreconditionError);
}

class LeafCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(LeafCapacitySweep, InvariantsHoldAcrossCapacities) {
  ParticleSet p = plummer_sphere(3000, 53);
  TreeParams params;
  params.leaf_capacity = GetParam();
  const Octree t = Octree::build(p, params);
  EXPECT_EQ(t.root().count, 3000u);
  std::uint64_t leaf_particles = 0;
  for (const Node& n : t.nodes()) {
    if (n.leaf) leaf_particles += n.count;
  }
  EXPECT_EQ(leaf_particles, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LeafCapacitySweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256));

}  // namespace
}  // namespace bladed::treecode
