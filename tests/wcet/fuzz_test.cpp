/// Soundness fuzzing for bladed::wcet: 1000 seeded random programs — every
/// loop in canonical licensed form, every memory access trap-free — are
/// certified and then run on the real engine at opt levels {0, 2} and all
/// three tiers (interpret-only, tier-2, tier-3). The certificate's claim is
/// checked literally: lower <= total_cycles <= upper, every time. A
/// threaded pass pushes the same checks through a hostperf::JobPool at 1
/// and 8 worker threads — certification is pure and must not care who runs
/// the engine.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

#include "cms/engine.hpp"
#include "common/rng.hpp"
#include "hostperf/jobs.hpp"
#include "jit/jit.hpp"
#include "opt/opt.hpp"
#include "wcet/wcet.hpp"

namespace bladed::wcet {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

constexpr std::size_t kMemDoubles = 256;

std::uint64_t pick(Rng& rng, std::uint64_t n) { return rng.next_u64() % n; }

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

int fp_reg(Rng& rng) { return static_cast<int>(pick(rng, 8)); }

/// Trap-free op mix: constant-offset loads/stores off the zero register
/// (always in [0, kMemDoubles)), fp arithmetic, and integer arithmetic on
/// scratch registers that no address ever uses — the soundness contract
/// requires a natural halt, so the generator must not be able to trap.
Instr random_op(Rng& rng) {
  switch (pick(rng, 10)) {
    case 0:
    case 1:
      return make(Op::kFload, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles)));
    case 2:
    case 3:
      return make(Op::kFstore, fp_reg(rng), 0, 0,
                  static_cast<std::int64_t>(pick(rng, kMemDoubles)));
    case 4:
      return make(Op::kAddi, 3 + static_cast<int>(pick(rng, 4)),
                  3 + static_cast<int>(pick(rng, 4)), 0,
                  static_cast<std::int64_t>(pick(rng, 9)) - 4);
    case 5:
      return make(Op::kAdd, 3 + static_cast<int>(pick(rng, 4)), 1,
                  3 + static_cast<int>(pick(rng, 4)));
    case 6: {
      Instr in = make(Op::kFmovi, fp_reg(rng));
      in.imm_f = rng.uniform(-2.0, 2.0);
      return in;
    }
    case 7:
    case 8:
      return make(Op::kFadd, fp_reg(rng), fp_reg(rng), fp_reg(rng));
    default:
      return make(Op::kFmul, fp_reg(rng), fp_reg(rng), fp_reg(rng));
  }
}

/// Counted outer loop in the canonical licensed shape (r1 stepped by addi,
/// kBlt latch against the invariant r2), wrapping a few chunks of straight-
/// line code behind optional *forward* branches. Every program is bounded
/// by construction and runs long enough to cross the translation (and with
/// small thresholds the JIT promotion) boundary.
Program random_program(Rng& rng) {
  Program p;
  const std::int64_t rounds = 24 + static_cast<std::int64_t>(pick(rng, 40));
  p.push_back(make(Op::kMovi, 1, 0, 0, 0));
  p.push_back(make(Op::kMovi, 2, 0, 0, rounds));
  for (int r = 3; r <= 6; ++r) {
    p.push_back(make(Op::kMovi, r, 0, 0,
                     static_cast<std::int64_t>(pick(rng, 32))));
  }
  const std::int64_t loop = static_cast<std::int64_t>(p.size());

  const std::size_t chunks = 1 + pick(rng, 3);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (pick(rng, 2) == 0) {
      const std::size_t skip = 1 + pick(rng, 3);
      const Op op = pick(rng, 2) == 0 ? Op::kBlt : Op::kBne;
      p.push_back(make(op, 3 + static_cast<int>(pick(rng, 4)),
                       3 + static_cast<int>(pick(rng, 4)), 0,
                       static_cast<std::int64_t>(p.size() + 1 + skip)));
      for (std::size_t i = 0; i < skip; ++i) p.push_back(random_op(rng));
    }
    const std::size_t len = 2 + pick(rng, 5);
    for (std::size_t i = 0; i < len; ++i) p.push_back(random_op(rng));
  }

  p.push_back(make(Op::kAddi, 1, 1, 0, 1));
  p.push_back(make(Op::kBlt, 1, 2, 0, loop));
  p.push_back(make(Op::kHalt));
  return p;
}

std::uint64_t run_cycles(const cms::MorphingConfig& cfg, const Program& prog,
                         const cms::MachineState& initial) {
  cms::MorphingEngine engine{cfg};
  cms::MachineState st = initial;
  return engine.run(prog, st).total_cycles;
}

/// One full soundness check of one generated program: certify the program
/// the engine will actually execute (opt level 0 = source, 2 = pipeline
/// output) and bracket every tier's measured cycles.
void check_program(const Program& source, const cms::MachineState& initial,
                   int opt_level, int seed, int trial) {
  const Program executed =
      opt_level > 0
          ? [&] {
              opt::OptOptions opts;
              opts.level = opt_level;
              opts.mem_doubles = kMemDoubles;
              return opt::optimize(source, opts).program;
            }()
          : source;

  cms::MorphingConfig cfg = cms::cms_43x();
  const Certificate cert = certify(executed, kMemDoubles,
                                   CostParams::from(cfg));
  ASSERT_TRUE(cert.valid) << "seed " << seed << " trial " << trial << ": "
                          << cert.error;
  ASSERT_TRUE(cert.bounded) << "seed " << seed << " trial " << trial << ": "
                            << cert.to_string();

  // Tier-2: the config the certificate was priced against.
  const std::uint64_t t2 = run_cycles(cfg, executed, initial);
  EXPECT_GE(t2, cert.tier2.lower) << "seed " << seed << " trial " << trial;
  EXPECT_LE(t2, cert.tier2.upper) << "seed " << seed << " trial " << trial;

  // Interpret-only: hot_threshold out of reach, nothing ever translates.
  cms::MorphingConfig interp = cfg;
  interp.hot_threshold = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t ti = run_cycles(interp, executed, initial);
  EXPECT_GE(ti, cert.interpret.lower)
      << "seed " << seed << " trial " << trial;
  EXPECT_LE(ti, cert.interpret.upper)
      << "seed " << seed << " trial " << trial;

  // Tier-3: aggressive promotion; bit-identity makes tier2 bounds apply.
  cms::MorphingConfig t3cfg = cfg;
  jit::attach_jit(t3cfg);
  t3cfg.optimizer = nullptr;  // `executed` is already the final program
  t3cfg.prover = nullptr;
  t3cfg.jit_threshold = 2;
  const std::uint64_t t3 = run_cycles(t3cfg, executed, initial);
  EXPECT_GE(t3, cert.tier3.lower) << "seed " << seed << " trial " << trial;
  EXPECT_LE(t3, cert.tier3.upper) << "seed " << seed << " trial " << trial;
}

class WcetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WcetFuzz, BoundsBracketEveryTierAndOptLevel) {
  Rng rng(0x3c37 + static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    const Program prog = random_program(rng);
    cms::MachineState initial(kMemDoubles);
    for (double& cell : initial.mem) cell = rng.uniform(-1.0, 1.0);
    check_program(prog, initial, /*opt_level=*/0, GetParam(), trial);
    check_program(prog, initial, /*opt_level=*/2, GetParam(), trial);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WcetFuzz, ::testing::Range(0, 100));

/// The same soundness property under a worker pool: certification and the
/// engine runs happen on pool threads, at both ends of the host_threads
/// range the serving layer uses.
TEST(WcetFuzzThreaded, BoundsHoldUnderJobPool) {
  for (const int threads : {1, 8}) {
    hostperf::JobPool pool({.threads = threads, .queue_capacity = 8});
    std::atomic<int> done{0};
    const int jobs = 24;
    for (int j = 0; j < jobs; ++j) {
      Rng rng(0x9e1d + static_cast<std::uint64_t>(j) * 104729 +
              static_cast<std::uint64_t>(threads));
      const Program prog = random_program(rng);
      cms::MachineState initial(kMemDoubles);
      for (double& cell : initial.mem) cell = rng.uniform(-1.0, 1.0);
      auto fn = [prog, initial, j, &done] {
        check_program(prog, initial, /*opt_level=*/0, -1, j);
        check_program(prog, initial, /*opt_level=*/2, -1, j);
        done.fetch_add(1, std::memory_order_relaxed);
      };
      // The pool sheds when saturated; retry until admitted (backpressure
      // is the feature under test in serve, not here).
      while (pool.try_submit(fn) != hostperf::JobPool::Submit::kAccepted) {
        pool.wait_idle();
      }
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), jobs) << "threads " << threads;
  }
}

}  // namespace
}  // namespace bladed::wcet
