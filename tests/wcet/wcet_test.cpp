/// bladed::wcet certificate tests: corpus-wide boundedness, golden
/// precision ratios against the real engine, unbounded verdicts at the
/// right program points, the opt pipeline's cost gate, and the certified
/// JIT promotion budgets (which must never change engine cycle counts).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "cms/engine.hpp"
#include "cms/programs.hpp"
#include "common/rng.hpp"
#include "jit/jit.hpp"
#include "opt/opt.hpp"
#include "wcet/wcet.hpp"

namespace bladed::wcet {
namespace {

using cms::Instr;
using cms::Op;
using cms::Program;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

const cms::NamedProgram& corpus_entry(const std::string& name) {
  static const std::vector<cms::NamedProgram> corpus = cms::prove_corpus();
  for (const cms::NamedProgram& np : corpus) {
    if (np.name == name) return np;
  }
  ADD_FAILURE() << "no corpus program named " << name;
  static const cms::NamedProgram empty{};
  return empty;
}

cms::MorphingStats run_fresh(const cms::MorphingConfig& cfg,
                             const Program& prog, std::size_t mem) {
  cms::MorphingEngine engine{cfg};
  cms::MachineState st(mem);
  return engine.run(prog, st);
}

TEST(WcetCertify, EveryCorpusProgramIsBounded) {
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const Certificate cert = certify(entry.program, entry.mem_doubles);
    EXPECT_TRUE(cert.valid) << entry.name << ": " << cert.error;
    EXPECT_TRUE(cert.bounded) << entry.name << ": " << cert.to_string();
    EXPECT_FALSE(cert.entries.empty()) << entry.name;
    EXPECT_LE(cert.interpret.lower, cert.interpret.upper) << entry.name;
    EXPECT_LE(cert.tier2.lower, cert.tier2.upper) << entry.name;
    // tier-2 can only be cheaper than pure interpretation on the low side.
    EXPECT_LE(cert.tier2.lower, cert.interpret.lower) << entry.name;
    EXPECT_EQ(cert.tier3.lower, cert.tier2.lower) << entry.name;
    EXPECT_EQ(cert.tier3.upper, cert.tier2.upper) << entry.name;
  }
}

TEST(WcetCertify, CorpusBoundsHoldAgainstTheRealEngine) {
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    cms::MorphingConfig cfg = cms::cms_42x();
    const Certificate cert =
        certify(entry.program, entry.mem_doubles, CostParams::from(cfg));
    ASSERT_TRUE(cert.bounded) << entry.name;

    const cms::MorphingStats t2 =
        run_fresh(cfg, entry.program, entry.mem_doubles);
    EXPECT_GE(t2.total_cycles, cert.tier2.lower) << entry.name;
    EXPECT_LE(t2.total_cycles, cert.tier2.upper) << entry.name;

    cms::MorphingConfig interp = cfg;
    interp.hot_threshold = std::numeric_limits<std::uint64_t>::max();
    const cms::MorphingStats ti =
        run_fresh(interp, entry.program, entry.mem_doubles);
    EXPECT_EQ(ti.translations, 0u) << entry.name;
    EXPECT_GE(ti.total_cycles, cert.interpret.lower) << entry.name;
    EXPECT_LE(ti.total_cycles, cert.interpret.upper) << entry.name;
  }
}

/// Golden precision gate: the two reference kernels must certify within
/// 2.0x of the cycles the engine actually charges (EXPERIMENTS.md tracks
/// the measured ratios).
TEST(WcetCertify, GoldenKernelPrecision) {
  for (const char* name : {"naive_daxpy_n256", "naive_mg_stencil_n256"}) {
    const cms::NamedProgram& entry = corpus_entry(name);
    cms::MorphingConfig cfg = cms::cms_42x();
    const Certificate cert =
        certify(entry.program, entry.mem_doubles, CostParams::from(cfg));
    ASSERT_TRUE(cert.bounded) << name;
    const cms::MorphingStats st =
        run_fresh(cfg, entry.program, entry.mem_doubles);
    ASSERT_GT(st.total_cycles, 0u) << name;
    const double ratio = static_cast<double>(cert.tier2.upper) /
                         static_cast<double>(st.total_cycles);
    EXPECT_GE(ratio, 1.0) << name;
    EXPECT_LE(ratio, 2.0) << name << ": certified upper " << cert.tier2.upper
                          << " vs actual " << st.total_cycles;
  }
}

TEST(WcetCertify, UnlicensedLatchGetsUnboundedVerdictAtHeader) {
  // kBne latch: prove/bounds only licenses canonical kBlt latches.
  const Program p = {make(Op::kMovi, 1, 0, 0, 0),
                     make(Op::kMovi, 2, 0, 0, 16),
                     make(Op::kAddi, 1, 1, 0, 1),
                     make(Op::kBne, 1, 2, 0, 2), make(Op::kHalt)};
  const Certificate cert = certify(p, 4096);
  ASSERT_TRUE(cert.valid);
  EXPECT_FALSE(cert.bounded);
  ASSERT_EQ(cert.unbounded.size(), 1u);
  EXPECT_EQ(cert.unbounded[0].pc, 2u);
  EXPECT_TRUE(cert.entries.empty());
}

TEST(WcetCertify, SelfLoopWithoutInductionIsUnbounded) {
  const Program p = {make(Op::kMovi, 1, 0, 0, 0),
                     make(Op::kJmp, 0, 0, 0, 1), make(Op::kHalt)};
  const Certificate cert = certify(p, 4096);
  ASSERT_TRUE(cert.valid);
  EXPECT_FALSE(cert.bounded);
  ASSERT_EQ(cert.unbounded.size(), 1u);
  EXPECT_EQ(cert.unbounded[0].pc, 1u);
}

TEST(WcetCertify, StraightLineProgramHasExactInterpretBound) {
  // No branches: one entry at pc 0, executed exactly once — the interpret
  // interval collapses to a point and the engine must land on it.
  const Program p = {make(Op::kMovi, 1, 0, 0, 3),
                     make(Op::kAddi, 2, 1, 0, 4),
                     make(Op::kFmovi, 0), make(Op::kHalt)};
  cms::MorphingConfig cfg;
  const Certificate cert = certify(p, 64, CostParams::from(cfg));
  ASSERT_TRUE(cert.bounded);
  EXPECT_EQ(cert.interpret.lower, cert.interpret.upper);
  const cms::MorphingStats st = run_fresh(cfg, p, 64);
  EXPECT_EQ(st.total_cycles, cert.interpret.upper);
}

TEST(WcetCertify, InvalidProgramReportsErrorNotCrash) {
  const Program p = {make(Op::kJmp, 0, 0, 0, 99), make(Op::kHalt)};
  const Certificate cert = certify(p, 64);
  EXPECT_FALSE(cert.valid);
  EXPECT_FALSE(cert.error.empty());
  EXPECT_FALSE(cert.bounded);
}

TEST(WcetCertify, JsonMentionsSchemaFields) {
  const cms::NamedProgram& entry = corpus_entry("naive_daxpy_n256");
  const Certificate cert = certify(entry.program, entry.mem_doubles);
  const std::string json = cert.to_json();
  EXPECT_NE(json.find("\"bounded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tiers\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"interpret\""), std::string::npos) << json;
}

/// The opt cost gate: a pass that increases the certified upper bound is
/// rolled back, and the per-pass report carries both bounds.
TEST(WcetOptGate, DeltasCarryCertifiedBounds) {
  const cms::NamedProgram& entry = corpus_entry("naive_daxpy_n256");
  opt::OptOptions opts;
  opts.level = 2;
  opts.mem_doubles = entry.mem_doubles;
  const opt::OptResult res = opt::optimize(entry.program, opts);
  bool saw_applied = false;
  for (const opt::PassDelta& d : res.deltas) {
    if (!d.applied && !d.rejected && !d.cost_rolled_back) continue;
    saw_applied |= d.applied;
    EXPECT_GT(d.certified_before, 0u) << d.pass;
    EXPECT_GT(d.certified_after, 0u) << d.pass;
    if (d.applied) {
      // The gate admitted it: the bound must not have gone up.
      EXPECT_LE(d.certified_after, d.certified_before) << d.pass;
    } else {
      // Rejected or priced out: the rollback kept the old bound, and a
      // cost rollback is never reported as a proof rejection.
      EXPECT_FALSE(d.cost_rolled_back && d.rejected) << d.pass;
      EXPECT_EQ(d.certified_after, d.certified_before) << d.pass;
    }
  }
  EXPECT_TRUE(saw_applied) << "expected at least one applied pass";
}

TEST(WcetOptGate, GateOffSkipsCertification) {
  const cms::NamedProgram& entry = corpus_entry("naive_daxpy_n256");
  opt::OptOptions opts;
  opts.level = 2;
  opts.mem_doubles = entry.mem_doubles;
  opts.cost_gate = false;
  const opt::OptResult res = opt::optimize(entry.program, opts);
  for (const opt::PassDelta& d : res.deltas) {
    EXPECT_EQ(d.certified_before, 0u) << d.pass;
    EXPECT_EQ(d.certified_after, 0u) << d.pass;
  }
}

TEST(WcetOptGate, GatedPipelineOutputNeverCostsMore) {
  // End-to-end property across the whole corpus: the optimized program's
  // certified bound never exceeds the source program's.
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    opt::OptOptions opts;
    opts.level = 2;
    opts.mem_doubles = entry.mem_doubles;
    const opt::OptResult res = opt::optimize(entry.program, opts);
    const Certificate before = certify(entry.program, entry.mem_doubles);
    const Certificate after = certify(res.program, entry.mem_doubles);
    ASSERT_TRUE(before.bounded && after.bounded) << entry.name;
    EXPECT_LE(after.tier2.upper, before.tier2.upper) << entry.name;
  }
}

/// Certified JIT budgets: cycle accounting must be bit-identical to
/// counting-based promotion (the tier-3 contract), and certified-cold
/// entries must never be compiled.
TEST(WcetJitBudgets, CyclesBitIdenticalToCountingPromotion) {
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    cms::MorphingConfig counting = cms::cms_43x();
    jit::attach_jit(counting);
    counting.optimizer = nullptr;
    counting.prover = nullptr;
    counting.jit_threshold = 2;

    cms::MorphingConfig certified = counting;
    jit::attach_certified_budgets(certified);

    cms::MachineState initial(entry.mem_doubles);
    Rng rng(0xb1ade);
    for (double& cell : initial.mem) cell = rng.uniform(-1.0, 1.0);

    cms::MachineState s0 = initial;
    cms::MachineState s1 = initial;
    cms::MorphingEngine e0{counting};
    cms::MorphingEngine e1{certified};
    const cms::MorphingStats st0 = e0.run(entry.program, s0);
    const cms::MorphingStats st1 = e1.run(entry.program, s1);

    EXPECT_EQ(st0.total_cycles, st1.total_cycles) << entry.name;
    EXPECT_EQ(st0.interpret_cycles, st1.interpret_cycles) << entry.name;
    EXPECT_EQ(st0.translate_cycles, st1.translate_cycles) << entry.name;
    EXPECT_EQ(st0.native_cycles, st1.native_cycles) << entry.name;
    EXPECT_EQ(std::memcmp(s0.r, s1.r, sizeof(s0.r)), 0) << entry.name;
    EXPECT_EQ(std::memcmp(s0.f, s1.f, sizeof(s0.f)), 0) << entry.name;
    ASSERT_EQ(s0.mem.size(), s1.mem.size()) << entry.name;
    EXPECT_EQ(std::memcmp(s0.mem.data(), s1.mem.data(),
                          s0.mem.size() * sizeof(double)),
              0)
        << entry.name;
  }
}

TEST(WcetJitBudgets, CertifiedHotEntryCompilesOnFirstNativeExecution) {
  // A long counted loop certifies as hot; with certified budgets the region
  // compiles at its first native execution instead of after jit_threshold
  // warm-up laps — visible as at least as many jit block executions.
  const cms::NamedProgram& entry = corpus_entry("naive_daxpy_n256");

  cms::MorphingConfig counting = cms::cms_42x();
  jit::attach_jit(counting);
  counting.optimizer = nullptr;
  counting.prover = nullptr;
  counting.jit_threshold = 64;

  cms::MorphingConfig certified = counting;
  jit::attach_certified_budgets(certified);

  const cms::MorphingStats st0 =
      run_fresh(counting, entry.program, entry.mem_doubles);
  const cms::MorphingStats st1 =
      run_fresh(certified, entry.program, entry.mem_doubles);
  EXPECT_EQ(st0.total_cycles, st1.total_cycles);
  EXPECT_GE(st1.jit_block_executions, st0.jit_block_executions);
  EXPECT_GT(st1.jit_regions, 0u);
}

TEST(WcetJitBudgets, UnboundedProgramFallsBackToCounting) {
  // kBne latch: no certificate, so the budget hook must defer to the
  // jit_threshold counter (and the engine still runs correctly).
  const Program p = {make(Op::kMovi, 1, 0, 0, 0),
                     make(Op::kMovi, 2, 0, 0, 64),
                     make(Op::kFmovi, 0),
                     make(Op::kAddi, 1, 1, 0, 1),
                     make(Op::kBne, 1, 2, 0, 2), make(Op::kHalt)};
  ASSERT_FALSE(certify(p, 256).bounded);

  cms::MorphingConfig counting = cms::cms_43x();
  jit::attach_jit(counting);
  counting.optimizer = nullptr;
  counting.prover = nullptr;
  counting.jit_threshold = 2;
  cms::MorphingConfig certified = counting;
  jit::attach_certified_budgets(certified);

  const cms::MorphingStats st0 = run_fresh(counting, p, 256);
  const cms::MorphingStats st1 = run_fresh(certified, p, 256);
  EXPECT_EQ(st0.total_cycles, st1.total_cycles);
  EXPECT_EQ(st0.jit_block_executions, st1.jit_block_executions);
}

}  // namespace
}  // namespace bladed::wcet
