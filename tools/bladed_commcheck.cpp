/// bladed-commcheck: communication-protocol verification driver for the
/// simnet/Comm layer.
///
/// `--driver <name>` runs a shipped parallel driver (treecode, npb-ep,
/// npb-is, npb-stencil) with the commcheck event recorder attached and
/// analyzes the recorded trace for deadlock cycles, unmatched sends and
/// receives, schedule-dependent wildcard matches and collective-consistency
/// violations. A clean verdict exits 0; any finding prints the report and
/// exits 1 — ctest runs every shipped driver through this gate.
///
/// `--selftest` replays the seeded protocol-bug fixtures (head-to-head recv
/// deadlock, orphaned send, wildcard race, mismatched bcast root, typed size
/// mismatch, clean control) and verifies the analyzer flags exactly the
/// seeded defect — the checker checking itself.
///
/// `--static` proves match-completeness of the fixed-topology exchange plans
/// the drivers are built from (treecode ring / pairwise exchange, NPB
/// binomial trees) without executing them, and verifies the plan checker
/// itself rejects seeded broken plans.
///
/// `--overhead` measures the recorder's wall-clock cost on a driver
/// (recorded vs. unrecorded run) for the EXPERIMENTS.md budget (<= 5%).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "cli.hpp"
#include "commcheck/analyze.hpp"
#include "commcheck/fixtures.hpp"
#include "commcheck/recorder.hpp"
#include "commcheck/static_check.hpp"
#include "npb/parallel.hpp"
#include "treecode/parallel.hpp"

namespace {

using namespace bladed;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Run one shipped driver, optionally recording. Sized so the whole gate
/// stays cheap under ctest while still exercising every collective the
/// driver uses.
void run_driver(const std::string& name, int ranks, int host_threads,
                commcheck::Recorder* recorder) {
  if (name == "treecode") {
    treecode::ParallelConfig cfg;
    cfg.ranks = ranks;
    cfg.particles = 2000;
    cfg.steps = 2;
    cfg.cpu = &arch::tm5600_633();
    cfg.recorder = recorder;
    cfg.host_threads = host_threads;
    (void)treecode::run_parallel_nbody(cfg);
    return;
  }
  npb::ParallelNpbConfig cfg;
  cfg.ranks = ranks;
  cfg.cpu = &arch::tm5600_633();
  cfg.recorder = recorder;
  cfg.host_threads = host_threads;
  if (name == "npb-ep") {
    (void)npb::run_parallel_ep(cfg, /*m=*/18);
  } else if (name == "npb-is") {
    (void)npb::run_parallel_is(cfg, /*n_log2=*/14, /*bmax_log2=*/10,
                               /*iterations=*/3);
  } else if (name == "npb-stencil") {
    (void)npb::run_parallel_stencil(cfg, /*n=*/32, /*iterations=*/4);
  } else {
    throw std::runtime_error("unknown driver '" + name + "'");
  }
}

int verify_driver(const std::string& name, int ranks, int host_threads,
                  bool json) {
  commcheck::Recorder recorder(ranks);
  run_driver(name, ranks, host_threads, &recorder);
  const commcheck::Verdict verdict = analyze(recorder.trace());
  if (json) {
    std::cout << verdict.to_json() << "\n";
  } else {
    std::cout << "bladed-commcheck --driver " << name << " --ranks " << ranks
              << ": " << recorder.trace().total_events() << " events\n"
              << verdict.to_string();
  }
  return verdict.clean() ? 0 : 1;
}

/// The same drivers at the workload sizes bench/npb_parallel uses (EP class
/// W, IS 2^20 keys, the 64^3 stencil) — overhead must be measured where the
/// per-op compute is realistic, not on the quick ctest configs.
void run_driver_bench_scale(const std::string& name, int ranks,
                            int host_threads,
                            commcheck::Recorder* recorder) {
  if (name == "treecode") {
    treecode::ParallelConfig cfg;
    cfg.ranks = ranks;
    cfg.particles = 10000;
    cfg.steps = 2;
    cfg.cpu = &arch::tm5600_633();
    cfg.recorder = recorder;
    cfg.host_threads = host_threads;
    (void)treecode::run_parallel_nbody(cfg);
    return;
  }
  npb::ParallelNpbConfig cfg;
  cfg.ranks = ranks;
  cfg.cpu = &arch::tm5600_633();
  cfg.recorder = recorder;
  cfg.host_threads = host_threads;
  if (name == "npb-ep") {
    (void)npb::run_parallel_ep(cfg, npb::kEpClassW);
  } else if (name == "npb-is") {
    (void)npb::run_parallel_is(cfg, /*n_log2=*/20, /*bmax_log2=*/16,
                               /*iterations=*/10);
  } else if (name == "npb-stencil") {
    (void)npb::run_parallel_stencil(cfg, /*n=*/64, /*iterations=*/20);
  } else {
    throw std::runtime_error("unknown driver '" + name + "'");
  }
}

int measure_overhead(const std::string& name, int ranks, int host_threads) {
  // Warm up (page cache, lazy allocations), then interleave measurements.
  run_driver_bench_scale(name, ranks, host_threads, nullptr);
  double off = 0.0;
  double on = 0.0;
  std::size_t events = 0;
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i) {
    off += wall_seconds(
        [&] { run_driver_bench_scale(name, ranks, host_threads, nullptr); });
    commcheck::Recorder recorder(ranks);
    on += wall_seconds(
        [&] { run_driver_bench_scale(name, ranks, host_threads, &recorder); });
    events = recorder.trace().total_events();
  }
  std::printf(
      "bladed-commcheck overhead on %s (%d ranks, %d reps, %zu events/run, "
      "bench/npb_parallel workload sizes):\n"
      "  recorder off: %.3f s\n  recorder on:  %.3f s\n  overhead: %+.2f%%\n",
      name.c_str(), ranks, kReps, events, off, on, (on / off - 1.0) * 100.0);
  return 0;
}

/// One selftest case: `analyze` must (only) flag the seeded defect.
struct TraceCase {
  std::string name;
  commcheck::Trace trace;
  std::string code;  ///< expected finding code; empty = must be clean
};

int run_selftest(bool verbose) {
  std::vector<TraceCase> cases;
  cases.push_back({"recv-cycle-deadlock", commcheck::deadlock_trace(),
                   "deadlock-cycle"});
  cases.push_back({"orphaned-send", commcheck::orphan_send_trace(),
                   "orphan-send"});
  cases.push_back({"wildcard-race", commcheck::wildcard_race_trace(),
                   "wildcard-race"});
  cases.push_back({"bcast-root-mismatch",
                   commcheck::bcast_root_mismatch_trace(),
                   "collective-root"});
  cases.push_back({"typed-size-mismatch", commcheck::size_mismatch_trace(),
                   "size-mismatch"});
  cases.push_back({"clean-control", commcheck::clean_trace(), ""});

  int failures = 0;
  for (const TraceCase& c : cases) {
    const commcheck::Verdict v = analyze(c.trace);
    const bool pass = c.code.empty() ? v.clean() : v.has(c.code);
    if (pass) {
      std::cout << "PASS " << c.name << " ("
                << (c.code.empty() ? "clean" : c.code) << ")\n";
      if (verbose && !v.clean()) std::cout << v.to_string();
    } else {
      ++failures;
      std::cout << "FAIL " << c.name << ": expected "
                << (c.code.empty() ? std::string("clean") : c.code)
                << ", got:\n"
                << v.to_string();
    }
  }
  std::cout << "bladed-commcheck selftest: " << (cases.size() - failures)
            << "/" << cases.size() << " fixtures behaved as expected\n";
  return failures == 0 ? 0 : 1;
}

int run_static(bool verbose) {
  int failures = 0;
  const auto expect_clean = [&](const commcheck::ExchangePlan& plan) {
    const commcheck::Verdict v = verify_plan(plan);
    if (v.clean()) {
      if (verbose) std::cout << "PASS " << plan.name << " (clean)\n";
    } else {
      ++failures;
      std::cout << "FAIL " << plan.name << ":\n" << v.to_string();
    }
  };
  const auto expect_code = [&](commcheck::ExchangePlan plan,
                               const std::string& code) {
    const commcheck::Verdict v = verify_plan(plan);
    if (v.has(code)) {
      std::cout << "PASS " << plan.name << " (" << code << ")\n";
    } else {
      ++failures;
      std::cout << "FAIL " << plan.name << ": expected " << code
                << ", got:\n"
                << v.to_string();
    }
  };

  // Every shipped topology must verify clean at the rank counts the paper's
  // cluster and the tests use (including non-powers of two).
  for (int n : {1, 2, 3, 4, 7, 8, 16, 24}) {
    expect_clean(commcheck::ring_allgather_plan(n));
    expect_clean(commcheck::pairwise_alltoall_plan(n));
    for (int root : {0, n - 1}) {
      expect_clean(commcheck::binomial_bcast_plan(n, root));
      expect_clean(commcheck::binomial_reduce_plan(n, root));
    }
    expect_clean(commcheck::halo_exchange_plan(n));
    expect_clean(commcheck::treecode_step_plan(n));
    expect_clean(commcheck::npb_step_plan(n));
  }
  std::cout << "bladed-commcheck --static: shipped plans verified\n";

  // Seeded broken plans: the checker must reject each one.
  {
    commcheck::ExchangePlan p{"seeded-recv-cycle", {{}, {}}};
    p.ops[0] = {commcheck::PlanOp::recv(1, 7), commcheck::PlanOp::send(1, 9)};
    p.ops[1] = {commcheck::PlanOp::recv(0, 9), commcheck::PlanOp::send(0, 7)};
    expect_code(p, "deadlock-cycle");
  }
  {
    commcheck::ExchangePlan p{"seeded-orphan-send", {{}, {}}};
    p.ops[0] = {commcheck::PlanOp::send(1, 1), commcheck::PlanOp::send(1, 2)};
    p.ops[1] = {commcheck::PlanOp::recv(0, 1)};
    expect_code(p, "orphan-send");
  }
  {
    commcheck::ExchangePlan p{"seeded-tag-mismatch", {{}, {}}};
    p.ops[0] = {commcheck::PlanOp::send(1, 1)};
    p.ops[1] = {commcheck::PlanOp::recv(0, 2)};
    expect_code(p, "tag-mismatch");
  }
  {
    commcheck::ExchangePlan p{"seeded-skipped-barrier", {{}, {}, {}}};
    p.ops[0] = {commcheck::PlanOp::barrier()};
    p.ops[1] = {commcheck::PlanOp::barrier()};
    p.ops[2] = {};
    expect_code(p, "collective-mismatch");
  }
  {
    commcheck::ExchangePlan p{"seeded-orphan-recv", {{}, {}}};
    p.ops[0] = {};
    p.ops[1] = {commcheck::PlanOp::recv(0, 3)};
    expect_code(p, "orphan-recv");
  }
  std::cout << "bladed-commcheck --static: " << (failures == 0 ? "ok" : "FAIL")
            << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  bool static_mode = false;
  bool overhead = false;
  bool json = false;
  bool verbose = false;
  std::string driver;
  int ranks = 8;
  int host_threads = 1;
  bladed::cli::Parser p("bladed-commcheck",
                        "usage: bladed-commcheck [--selftest] [--static] "
                        "[--driver treecode|npb-ep|npb-is|npb-stencil] "
                        "[--ranks N] [--host-threads N] [--overhead] "
                        "[--json] [--verbose]\n");
  p.flag("--selftest", &selftest)
      .flag("--static", &static_mode)
      .flag("--overhead", &overhead)
      .flag("--json", &json)
      .flag("--verbose", &verbose)
      .string_value("--driver", &driver)
      .int_value("--ranks", &ranks, 1, 64)
      .int_value("--host-threads", &host_threads, 0, 256);
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;
  try {
    if (selftest) return run_selftest(verbose);
    if (static_mode) return run_static(verbose);
    if (!driver.empty()) {
      return overhead ? measure_overhead(driver, ranks, host_threads)
                      : verify_driver(driver, ranks, host_threads, json);
    }
  } catch (const std::exception& e) {
    std::cerr << "bladed-commcheck: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "bladed-commcheck: nothing to do (try --selftest)\n";
  return 2;
}
