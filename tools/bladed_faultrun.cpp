/// bladed-faultrun: run the parallel treecode under a seeded fault schedule
/// and print the executed-fault recovery report — the command-line front end
/// of the bladed::fault layer. `--selftest` replays the same seed twice and
/// fails unless the recovery trace and final particle state are
/// bit-identical (the determinism contract, wired into ctest).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/registry.hpp"
#include "cli.hpp"
#include "fault/injector.hpp"
#include "treecode/checkpoint.hpp"

namespace {

struct Options {
  std::uint64_t seed = 2002;
  int ranks = 8;
  std::size_t particles = 400;
  int steps = 4;
  double ambient_c = 25.0;
  double acceleration = 0.0;  // 0 = pick one that lands ~4 events in-run
  double crash_at = 0.6;      // fraction of the fault-free run; <0 = none
  bool degrade = false;
  bool trace = false;
  bool selftest = false;
  int host_threads = 1;
};

constexpr const char* kUsage =
    ("usage: bladed-faultrun [options]\n"
      "  --seed N        fault + schedule seed (default 2002)\n"
      "  --ranks N       simulated nodes (default 8)\n"
      "  --particles N   N-body size (default 400)\n"
      "  --steps N       integration steps (default 4)\n"
      "  --ambient C     room temperature for the Arrhenius schedule\n"
      "  --accel X       accelerated-life factor (default: auto)\n"
      "  --crash-at F    crash one node at fraction F of the run; -1 = off\n"
      "  --degrade       finish on the survivors instead of replacing\n"
      "  --trace         dump the executed-fault trace\n"
      "  --selftest      replay determinism check (exit 1 on mismatch)\n"
     "  --host-threads N  host worker threads for compute regions\n"
     "                  (1 = serial, 0 = auto; results are identical)\n");

bladed::treecode::FtResult run_once(const Options& o, double t_ref) {
  using namespace bladed;
  treecode::FtConfig ft;
  ft.base.ranks = o.ranks;
  ft.base.particles = o.particles;
  ft.base.steps = o.steps;
  ft.base.seed = o.seed;
  ft.base.cpu = &arch::tm5600_633();
  ft.base.host_threads = o.host_threads;
  ft.fault_seed = o.seed;
  ft.checkpoint_every = 2;
  ft.restart_penalty_seconds = 0.25;
  if (o.degrade) ft.on_node_loss = treecode::NodeLossPolicy::kDegrade;

  fault::ScheduleConfig sc;
  sc.nodes = o.ranks;
  sc.horizon_seconds = t_ref;
  sc.ambient = Celsius(o.ambient_c);
  sc.seed = o.seed;
  sc.mix.crash = 0.0;  // crashes are placed explicitly below
  // Auto-acceleration: aim for ~4 link-level events inside the run.
  sc.acceleration =
      o.acceleration > 0.0
          ? o.acceleration
          : 4.0 / (sc.reliability.failure_rate(sc.ambient) * o.ranks *
                   (t_ref / (kHoursPerYear.value() * 3600.0)));
  ft.schedule = fault::FaultSchedule::generate(sc);
  if (o.crash_at >= 0.0)
    ft.schedule.crash(static_cast<int>(o.seed % o.ranks), o.crash_at * t_ref);
  return treecode::run_parallel_nbody_ft(ft);
}

void report(const bladed::treecode::FtResult& r) {
  const auto& s = r.fault_stats;
  std::printf("attempts %d  restarts %d  checkpoints %d  final ranks %d\n",
              r.attempts, r.restarts, r.checkpoints, r.final_ranks);
  std::printf("virtual s: total %.6g  lost %.6g  (app %.6g)\n",
              r.total_virtual_seconds, r.lost_virtual_seconds,
              r.result.elapsed_seconds);
  std::printf(
      "executed faults: %llu drops  %llu corruptions (%llu caught)  "
      "%llu delays  %llu crashes  %llu retransmits  %llu lost\n",
      static_cast<unsigned long long>(s.drops),
      static_cast<unsigned long long>(s.corruptions),
      static_cast<unsigned long long>(s.crc_rejects),
      static_cast<unsigned long long>(s.delays),
      static_cast<unsigned long long>(s.crashes),
      static_cast<unsigned long long>(s.retransmits),
      static_cast<unsigned long long>(s.messages_lost));
}

bool same_state(const bladed::treecode::FtResult& a,
                const bladed::treecode::FtResult& b) {
  const auto& p = a.result.particles_out;
  const auto& q = b.result.particles_out;
  return a.fault_trace == b.fault_trace &&
         a.total_virtual_seconds == b.total_virtual_seconds && p.x == q.x &&
         p.y == q.y && p.z == q.z && p.vx == q.vx && p.vy == q.vy &&
         p.vz == q.vz;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  bladed::cli::Parser p("bladed-faultrun", kUsage);
  p.u64_value("--seed", &o.seed)
      .int_value("--ranks", &o.ranks, 1, 64)
      .size_value("--particles", &o.particles)
      .int_value("--steps", &o.steps, 1, 1000)
      .double_value("--ambient", &o.ambient_c, -273.0, 1000.0)
      .double_value("--accel", &o.acceleration, 0.0, 1e12)
      .double_value("--crash-at", &o.crash_at, -1.0, 1.0)
      .flag("--degrade", &o.degrade)
      .flag("--trace", &o.trace)
      .flag("--selftest", &o.selftest)
      .int_value("--host-threads", &o.host_threads, 0, 256);
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;

  try {
    // Fault-free reference run fixes the schedule horizon and crash time.
    bladed::treecode::ParallelConfig base;
    base.ranks = o.ranks;
    base.particles = o.particles;
    base.steps = o.steps;
    base.seed = o.seed;
    base.cpu = &bladed::arch::tm5600_633();
    base.host_threads = o.host_threads;
    const double t_ref =
        bladed::treecode::run_parallel_nbody(base).elapsed_seconds;

    const bladed::treecode::FtResult r = run_once(o, t_ref);
    report(r);
    if (o.trace) {
      for (const auto& e : r.fault_trace)
        std::printf("  t=%-12.6g %-10s node %d peer %d attempt %d\n", e.time,
                    bladed::fault::to_string(e.action), e.node, e.peer,
                    e.attempt);
    }
    if (o.selftest) {
      const bladed::treecode::FtResult again = run_once(o, t_ref);
      if (!same_state(r, again)) {
        std::fprintf(stderr,
                     "faultrun: replay DIVERGED (trace %zu vs %zu events)\n",
                     r.fault_trace.size(), again.fault_trace.size());
        return 1;
      }
      std::puts("faultrun: replay bit-identical (trace, timing, state)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultrun: %s\n", e.what());
    return 1;
  }
  return 0;
}
