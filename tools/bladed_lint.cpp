/// bladed-lint: static verification driver for the CMS layer.
///
/// Default mode loads the built-in program corpus (cms::lint_corpus) and
/// runs every diagnostic pass over it — program checks (CFG, dataflow,
/// interval analysis), translation verification of every region, and the
/// interpreter-vs-engine differential check. Any finding (warning or error)
/// fails the run: the shipped corpus must be spotless.
///
/// `--selftest` runs the checker against crafted *bad* programs and
/// translations and verifies each one is rejected with the expected
/// diagnostic code at the expected instruction index — the checker checking
/// itself.
///
/// `--opt` runs the verified optimizer pipeline (opt/opt.hpp) over the
/// optimizer corpus (cms::opt_corpus) and reports per-pass instruction
/// deltas plus engine cycle counts at opt_level 0 vs 2 — final machine
/// states must be bit-identical. A rejected pass (a transform whose proof
/// obligation failed) fails the run.
///
/// `--prove` runs the whole-program alias & safety analysis (prove/prove.hpp)
/// over the analyzer corpus (cms::prove_corpus): every memory access must
/// carry an in-bounds proof, every region a license, and the engine's
/// region-prover gate must accept every hot block. `--prove --selftest`
/// feeds the analyzer a seeded corpus of known-unsafe programs and verifies
/// each one is *refuted* (the specific bad access left unproven) — the
/// prover proving it can say no. `--prove --json` additionally prints the
/// bladed-prove-v1 report per program.
///
/// `--jit` runs the tier-3 dry-run lowering planner (jit/jit.hpp) over the
/// analyzer corpus (cms::prove_corpus): every fully-licensed region must
/// lower to a directly-threaded plan with at least one bounds-check-elided
/// memory op, without executing anything. A licensed region the lowerer
/// refuses (other than for a cold cache, which the dry run warms
/// hypothetically) fails the run.
///
/// `--mem-doubles N` overrides each corpus entry's machine memory size.
///
/// Exit codes (stable; CI gates on them): 0 clean, 1 at least one
/// error-severity finding (or a failed optimizer/analyzer proof), 2 usage
/// error, 3 warning-severity findings only, 4 unproven memory accesses in
/// `--prove` mode. All modes are wired into ctest.

#include <cstring>
#include <iostream>
#include <string>

#include "check/check.hpp"
#include "check/differential.hpp"
#include "cms/programs.hpp"
#include "common/rng.hpp"
#include "jit/jit.hpp"
#include "opt/opt.hpp"
#include "cli.hpp"
#include "prove/prove.hpp"
#include "wcet/wcet.hpp"

namespace {

using namespace bladed;
using cms::Instr;
using cms::Op;

constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWarnings = 3;
constexpr int kExitUnproven = 4;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

int run_corpus(bool verbose, std::size_t mem_override) {
  std::size_t findings = 0;
  std::size_t errors = 0;
  for (const cms::NamedProgram& entry : cms::lint_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    check::Report report = check::check_program(entry.program, mem);
    if (report.ok()) {
      report.merge(check::check_translations(entry.program));
      check::DifferentialOptions opt;
      opt.mem_doubles = mem;
      report.merge(check::differential_check(entry.program, opt));
    }
    if (!report.clean()) {
      findings += report.diagnostics().size();
      errors += report.error_count();
      std::cout << entry.name << ": " << report.error_count() << " error(s), "
                << report.warning_count() << " warning(s)\n"
                << report.to_string();
    } else if (verbose) {
      std::cout << entry.name << ": clean (" << entry.program.size()
                << " instructions)\n";
    }
  }
  if (findings != 0) {
    std::cout << "bladed-lint: " << findings << " finding(s), " << errors
              << " error-severity\n";
    return errors != 0 ? kExitErrors : kExitWarnings;
  }
  std::cout << "bladed-lint: corpus clean\n";
  return kExitClean;
}

bool same_bits_d(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// `--opt`: optimize the corpus, print per-pass deltas and the engine cycle
/// counts at opt_level 0 vs 2; final machine states must match bitwise.
int run_opt(bool verbose, std::size_t mem_override) {
  bool failed = false;
  for (const cms::NamedProgram& entry : cms::opt_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    opt::OptOptions opts;
    opts.level = 2;
    opts.mem_doubles = mem;
    const opt::OptResult res = opt::optimize(entry.program, opts);

    // Identical memory images; the level-2 engine consumes the optimizer
    // through the MorphingConfig hook, so the run exercises the same path
    // the ablation bench and users take.
    cms::MachineState s0(mem);
    Rng rng(0xb1ade);
    for (double& cell : s0.mem) cell = rng.uniform(-2.0, 2.0);
    cms::MachineState s1 = s0;
    cms::MorphingEngine e0((cms::MorphingConfig()));
    cms::MorphingConfig cfg1;
    cfg1.opt_level = 2;
    cfg1.optimizer = opt::engine_optimizer();
    cms::MorphingEngine e1(cfg1);
    const cms::MorphingStats st0 = e0.run(entry.program, s0);
    const cms::MorphingStats st1 = e1.run(entry.program, s1);

    bool identical = true;
    for (int r = 0; r < 16; ++r) identical &= s0.r[r] == s1.r[r];
    for (int f = 0; f < 8; ++f) identical &= same_bits_d(s0.f[f], s1.f[f]);
    for (std::size_t i = 0; identical && i < s0.mem.size(); ++i) {
      identical = same_bits_d(s0.mem[i], s1.mem[i]);
    }

    const double pct =
        st0.total_cycles == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(st1.total_cycles) -
                   static_cast<double>(st0.total_cycles)) /
                  static_cast<double>(st0.total_cycles);
    std::cout << entry.name << ": instrs " << entry.program.size() << " -> "
              << res.program.size() << ", cycles " << st0.total_cycles
              << " -> " << st1.total_cycles << " ("
              << (pct >= 0 ? "+" : "") << pct << "%), "
              << (identical ? "results identical" : "RESULTS DIVERGE")
              << "\n";
    for (const opt::PassDelta& d : res.deltas) {
      if (d.rejected) {
        std::cout << "  " << d.pass << ": REJECTED — " << d.note << "\n";
        failed = true;
      } else if (d.cost_rolled_back) {
        // Priced out by the wcet gate, not a proof failure: the certified
        // bound would have grown, so the cheaper program was kept.
        std::cout << "  " << d.pass << ": rolled back (cost) — " << d.note
                  << "\n";
      } else if (d.applied) {
        std::cout << "  " << d.pass << ": applied, " << d.instrs_before
                  << " -> " << d.instrs_after << "\n";
      } else if (verbose) {
        std::cout << "  " << d.pass << ": no change\n";
      }
    }
    if (!identical) failed = true;
  }
  std::cout << (failed ? "bladed-lint --opt: FAILED\n"
                       : "bladed-lint --opt: all proofs held\n");
  return failed ? kExitErrors : kExitClean;
}

/// `--prove`: analyze the corpus; every access must be proven in bounds,
/// every region licensed, and the engine's region-prover gate must accept
/// every block it translates.
int run_prove(bool verbose, std::size_t mem_override, bool json) {
  bool errors = false;
  std::size_t unproven = 0;
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    const prove::ProveResult res = prove::prove_program(entry.program, mem);
    if (!res.valid) {
      std::cout << entry.name << ": INVALID — " << res.error << "\n";
      errors = true;
      continue;
    }
    std::size_t licensed = res.licensed_region_count;
    std::cout << entry.name << ": " << res.proven_count << "/"
              << res.access_count << " accesses proven, " << licensed << "/"
              << res.regions.size() << " regions licensed, hot coverage "
              << 100.0 * res.hot_coverage << "%\n";
    std::size_t entry_unproven = 0;
    for (const prove::AccessProof& a : res.accesses) {
      if (a.kind == prove::ProofKind::kUnproven) {
        ++entry_unproven;
        std::cout << "  UNPROVEN " << (a.is_store ? "store" : "load")
                  << " @" << a.pc << ": " << a.detail << "\n";
      } else if (verbose) {
        std::cout << "  proven " << (a.is_store ? "store" : "load") << " @"
                  << a.pc << " [" << to_string(a.kind) << "]: " << a.detail
                  << "\n";
      }
    }
    if (verbose) {
      for (const prove::RegionLicense& r : res.regions) {
        std::cout << "  region @" << r.entry_pc << ": " << r.instr_count
                  << " instrs, " << r.access_count << " accesses, "
                  << (r.licensed ? "licensed" : "UNLICENSED")
                  << (r.is_loop ? ", loop" : "")
                  << (r.max_trips > 0
                          ? " (<= " + std::to_string(r.max_trips) + " trips)"
                          : "")
                  << ", alias pairs no/must/may " << r.no_alias_pairs << "/"
                  << r.must_alias_pairs << "/" << r.may_alias_pairs << "\n";
      }
    }
    if (json) std::cout << prove::to_json(res, entry.name) << "\n";
    unproven += entry_unproven;

    // The engine gate: a debug-mode run with the prover installed must
    // license every translated block end to end. Only meaningful for fully
    // proven entries — with unproven accesses the gate refusing (or the
    // interpreter trapping) is the expected outcome, and flagging it as an
    // error here would mask the distinct unproven exit code.
    if (entry_unproven != 0) continue;
    try {
      cms::MorphingConfig cfg;
      cfg.verify_translations = true;
      cfg.prover = prove::engine_prover();
      cms::MorphingEngine engine(cfg);
      cms::MachineState st(mem);
      Rng rng(0xb1ade);
      for (double& cell : st.mem) cell = rng.uniform(-2.0, 2.0);
      (void)engine.run(entry.program, st);
    } catch (const std::exception& e) {
      std::cout << "  ENGINE GATE REFUSED: " << e.what() << "\n";
      errors = true;
    }
  }
  if (errors) {
    std::cout << "bladed-lint --prove: FAILED\n";
    return kExitErrors;
  }
  if (unproven != 0) {
    std::cout << "bladed-lint --prove: " << unproven
              << " unproven access(es)\n";
    return kExitUnproven;
  }
  std::cout << "bladed-lint --prove: corpus fully proven\n";
  return kExitClean;
}

/// `--jit`: dry-run the tier-3 lowering planner over the analyzer corpus.
/// Every licensed region of a fully-proven program must compile; a refusal
/// (or a plan with no elided bounds checks on a memory-touching region)
/// means the tier would silently stay on tier-2 for code the prover
/// licensed — exactly the regression this mode exists to catch.
int run_jit(bool verbose, std::size_t mem_override) {
  bool failed = false;
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    const jit::LowerReport report = jit::lower_dry_run(entry.program, mem);
    if (!report.valid) {
      std::cout << entry.name << ": NOT LOWERABLE — " << report.error << "\n";
      failed = true;
      continue;
    }
    std::cout << entry.name << ": " << report.compiled_regions << "/"
              << report.plans.size() << " licensed regions lowered, "
              << report.total_raw_mem_ops
              << " bounds-check-elided memory op(s)\n";
    for (const jit::RegionPlan& p : report.plans) {
      if (!p.compiled) {
        std::cout << "  REFUSED @" << p.entry_pc << ": " << p.refusal << "\n";
        failed = true;
      }
    }
    if (verbose) std::cout << jit::to_string(report);
  }
  std::cout << (failed ? "bladed-lint --jit: FAILED\n"
                       : "bladed-lint --jit: all licensed regions lower\n");
  return failed ? kExitErrors : kExitClean;
}

/// `--wcet`: certify the analyzer corpus (wcet/wcet.hpp). Every program
/// must come back bounded — the corpus is the set of programs the whole
/// verified stack licenses end to end, so a missing cycle bound is a
/// regression in either the trip-count prover or the certifier. `--json`
/// prints the bladed-wcet-v1 envelope; unbounded programs reuse exit code 4
/// (prove's "no license, no number").
int run_wcet(bool verbose, std::size_t mem_override, bool json) {
  bool errors = false;
  std::size_t unbounded = 0;
  std::string rows;
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    const wcet::Certificate cert = wcet::certify(entry.program, mem);
    if (!cert.valid) {
      std::cout << entry.name << ": INVALID — " << cert.error << "\n";
      errors = true;
      continue;
    }
    if (!json) std::cout << entry.name << ": " << cert.to_string() << "\n";
    if (!cert.bounded) unbounded += cert.unbounded.size();
    if (verbose && !json) {
      for (const wcet::EntryCost& e : cert.entries) {
        std::cout << "  entry @" << e.entry_pc << ": <= " << e.max_dispatches
                  << " dispatch(es), interp " << e.interp_cycles
                  << ", translate " << e.translate_cycles << ", native "
                  << e.native_cycles << ", " << e.molecules
                  << " molecule(s)\n";
      }
    }
    if (json) {
      if (!rows.empty()) rows += ",";
      rows += "{\"name\":\"" + entry.name +
              "\",\"certificate\":" + cert.to_json() + "}";
    }
  }
  if (json) {
    // JSON mode keeps stdout a single parseable envelope; the verdict is
    // the exit code (and the envelope's per-program bounded flags).
    std::cout << "{\"schema\":\"bladed-wcet-v1\",\"programs\":[" << rows
              << "]}\n";
    if (errors) return kExitErrors;
    return unbounded != 0 ? kExitUnproven : kExitClean;
  }
  if (errors) {
    std::cout << "bladed-lint --wcet: FAILED\n";
    return kExitErrors;
  }
  if (unbounded != 0) {
    std::cout << "bladed-lint --wcet: " << unbounded
              << " unbounded site(s)\n";
    return kExitUnproven;
  }
  std::cout << "bladed-lint --wcet: corpus fully bounded\n";
  return kExitClean;
}

/// One wcet-selftest case: a program with an unlicensable cycle the
/// certifier must refuse at the expected header pc.
struct UnboundedCase {
  std::string name;
  cms::Program program;
  std::size_t header_pc;
};

/// `--wcet --selftest`: the corpus must be fully bounded with ordered,
/// internally consistent intervals, AND every seeded unlicensable loop must
/// get an unbounded verdict anchored at its header — the certifier proving
/// it can say no.
int run_wcet_selftest() {
  int failures = 0;

  // Side A: corpus programs are bounded and the intervals are sane.
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const wcet::Certificate cert =
        wcet::certify(entry.program, entry.mem_doubles);
    const bool ok = cert.valid && cert.bounded &&
                    cert.interpret.lower <= cert.interpret.upper &&
                    cert.tier2.lower <= cert.tier2.upper &&
                    cert.tier2.lower <= cert.interpret.lower &&
                    cert.tier3.lower == cert.tier2.lower &&
                    cert.tier3.upper == cert.tier2.upper &&
                    !cert.entries.empty();
    if (ok) {
      std::cout << "PASS bounded " << entry.name << " (tier2 <= "
                << cert.tier2.upper << " cycles)\n";
    } else {
      ++failures;
      std::cout << "FAIL bounded " << entry.name << ": " << cert.to_string()
                << "\n";
    }
  }

  // Side B: seeded programs whose cycles carry no trip-count license.
  std::vector<UnboundedCase> cases;
  {  // Latch is kBne: prove/bounds only licenses kBlt latches.
    cases.push_back({"bne-latch",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kMovi, 2, 0, 0, 16),
                      make(Op::kAddi, 1, 1, 0, 1),
                      make(Op::kBne, 1, 2, 0, 2), make(Op::kHalt)},
                     2});
  }
  {  // Self-loop with no induction variable at all.
    cases.push_back({"infinite-jmp",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kJmp, 0, 0, 0, 1), make(Op::kHalt)},
                     1});
  }
  {  // Guard IV stepped by a register add, not the canonical addi form.
    cases.push_back({"register-step",
                     {make(Op::kMovi, 1, 0, 0, 1),
                      make(Op::kMovi, 2, 0, 0, 64),
                      make(Op::kMovi, 3, 0, 0, 1),
                      make(Op::kAdd, 1, 1, 3),
                      make(Op::kBlt, 1, 2, 0, 3), make(Op::kHalt)},
                     3});
  }
  {  // Licensed outer loop around an unlicensable inner latch: the verdict
     // must anchor at the *inner* header.
    cases.push_back({"nested-inner-bne",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kMovi, 2, 0, 0, 4),
                      make(Op::kMovi, 3, 0, 0, 8),
                      make(Op::kMovi, 4, 0, 0, 0),
                      make(Op::kAddi, 4, 4, 0, 1),
                      make(Op::kBne, 4, 3, 0, 4),
                      make(Op::kAddi, 1, 1, 0, 1),
                      make(Op::kBlt, 1, 2, 0, 3), make(Op::kHalt)},
                     4});
  }

  for (const UnboundedCase& c : cases) {
    const wcet::Certificate cert = wcet::certify(c.program, 4096);
    bool hit = false;
    for (const wcet::UnboundedSite& s : cert.unbounded) {
      if (s.pc == c.header_pc) hit = true;
    }
    if (cert.valid && !cert.bounded && hit) {
      std::cout << "PASS unbounded " << c.name << " (@" << c.header_pc
                << ")\n";
    } else {
      ++failures;
      std::cout << "FAIL unbounded " << c.name << ": expected verdict @"
                << c.header_pc << ", got " << cert.to_string() << "\n";
    }
  }

  std::cout << "bladed-lint --wcet --selftest: "
            << (failures == 0 ? "all programs classified correctly\n"
                              : std::to_string(failures) + " failure(s)\n");
  return failures == 0 ? kExitClean : kExitErrors;
}

/// One prove-selftest case: a known-unsafe program the analyzer must
/// *refute* by leaving the access at `unsafe_pc` unproven.
struct UnsafeCase {
  std::string name;
  cms::Program program;
  std::size_t unsafe_pc;
};

/// `--prove --selftest`: the safe corpus must be fully licensed AND every
/// seeded unsafe program must be refuted at the expected instruction.
int run_prove_selftest() {
  int failures = 0;

  // Side A: everything in the shipped corpus is proven and licensed.
  for (const cms::NamedProgram& entry : cms::prove_corpus()) {
    const prove::ProveResult res =
        prove::prove_program(entry.program, entry.mem_doubles);
    const bool ok = res.valid && res.proven_count == res.access_count &&
                    res.licensed_region_count == res.regions.size();
    if (ok) {
      std::cout << "PASS safe " << entry.name << " (" << res.proven_count
                << "/" << res.access_count << " proven)\n";
    } else {
      ++failures;
      std::cout << "FAIL safe " << entry.name << ": " << res.proven_count
                << "/" << res.access_count << " proven, "
                << res.licensed_region_count << "/" << res.regions.size()
                << " regions licensed"
                << (res.valid ? "" : (", invalid: " + res.error)) << "\n";
    }
  }

  // Side B: seeded unsafe programs, each refuted at the bad access.
  std::vector<UnsafeCase> cases;
  {  // Store through a constant base provably past the end of memory.
    cases.push_back({"const-oob-store",
                     {make(Op::kMovi, 1, 0, 0, 100000),
                      make(Op::kFmovi, 0, 0, 0, 0),
                      make(Op::kFstore, 0, 1, 0, 0), make(Op::kHalt)},
                     2});
  }
  {  // Negative immediate offset off the zero base register.
    cases.push_back({"negative-offset-load",
                     {make(Op::kFload, 0, 0, 0, -3), make(Op::kHalt)},
                     0});
  }
  {  // Off-by-one loop: i runs to 4096 inclusive on a 4096-double machine.
    cases.push_back({"off-by-one-loop",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kMovi, 2, 0, 0, 4097),
                      make(Op::kFload, 1, 1, 0, 0),
                      make(Op::kAddi, 1, 1, 0, 1),
                      make(Op::kBlt, 1, 2, 0, 2), make(Op::kHalt)},
                     2});
  }
  {  // Strided IV overruns: j += 8 for 600 trips reaches mem[4792].
    cases.push_back(
        {"strided-overrun", cms::strided_sum_program(600), 4});
  }
  {  // Branch-dependent base straddling the limit: hull is [0, 4096].
    cases.push_back({"branch-dependent-base",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kMovi, 2, 0, 0, 4),
                      make(Op::kMovi, 3, 0, 0, 0),
                      make(Op::kMovi, 4, 0, 0, 2),
                      make(Op::kBlt, 3, 4, 0, 6),
                      make(Op::kAddi, 1, 0, 0, 4096),
                      make(Op::kFload, 1, 1, 0, 0),
                      make(Op::kAddi, 3, 3, 0, 1),
                      make(Op::kBlt, 3, 2, 0, 4), make(Op::kHalt)},
                     6});
  }
  {  // Guarded by kBne, not kBlt: no trip-count bound, widened to +inf.
    cases.push_back({"bne-guarded-loop",
                     {make(Op::kMovi, 1, 0, 0, 0),
                      make(Op::kMovi, 2, 0, 0, 16),
                      make(Op::kFload, 1, 1, 0, 0),
                      make(Op::kAddi, 1, 1, 0, 1),
                      make(Op::kBne, 1, 2, 0, 2), make(Op::kHalt)},
                     2});
  }

  for (const UnsafeCase& c : cases) {
    const prove::ProveResult res = prove::prove_program(c.program, 4096);
    bool refuted = false;
    std::string got;
    for (const prove::AccessProof& a : res.accesses) {
      if (a.pc == c.unsafe_pc) {
        refuted = res.valid && a.kind == prove::ProofKind::kUnproven;
        got = to_string(a.kind) + std::string(": ") + a.detail;
      }
    }
    // The engine gate must refuse the block holding the unsafe access.
    std::string why;
    const bool gate_refused = !prove::license_translation(
        c.program, 0, c.program.size(), 4096, &why);
    if (refuted && gate_refused) {
      std::cout << "PASS unsafe " << c.name << " (@" << c.unsafe_pc
                << " unproven; gate: " << why << ")\n";
    } else {
      ++failures;
      std::cout << "FAIL unsafe " << c.name << ": expected @" << c.unsafe_pc
                << " unproven + gate refusal, got "
                << (got.empty() ? "no access at that pc" : got)
                << (gate_refused ? "" : " (gate accepted)") << "\n";
    }
  }

  std::cout << "bladed-lint --prove --selftest: "
            << (failures == 0 ? "all programs classified correctly\n"
                              : std::to_string(failures) + " failure(s)\n");
  return failures == 0 ? kExitClean : kExitErrors;
}

/// One selftest case: the checker must emit `code` anchored at `instr`.
struct Expectation {
  std::string name;
  std::string code;
  std::size_t instr;
  check::Report report;
};

int run_selftest() {
  std::vector<Expectation> cases;

  {  // Read of a register no path ever writes (machine zero-fills: warning).
    cms::Program p = {make(Op::kFadd, 0, 1, 2), make(Op::kHalt)};
    cases.push_back({"uninit-register-read", "uninit-read", 0,
                     check::check_program(p)});
  }
  {  // Store whose address is provably past the end of memory.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 100000),
                      make(Op::kFmovi, 0, 0, 0, 0),
                      make(Op::kFstore, 0, 1, 0, 0), make(Op::kHalt)};
    cases.push_back({"oob-store-constant-base", "oob-store", 2,
                     check::check_program(p, 4096)});
  }
  {  // Negative immediate offset off the zero base register.
    cms::Program p = {make(Op::kFload, 0, 0, 0, -3), make(Op::kHalt)};
    cases.push_back({"oob-load-negative-offset", "oob-load", 0,
                     check::check_program(p, 4096)});
  }
  {  // Instruction 1 is jumped over and can never execute.
    cms::Program p = {make(Op::kJmp, 0, 0, 0, 2), make(Op::kMovi, 1, 0, 0, 7),
                      make(Op::kHalt)};
    cases.push_back({"unreachable-block", "unreachable", 1,
                     check::check_program(p)});
  }
  {  // r1 is written twice with no intervening read.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kMovi, 1, 0, 0, 2),
                      make(Op::kAddi, 2, 1, 0, 0), make(Op::kHalt)};
    cases.push_back({"dead-store", "dead-store", 0, check::check_program(p)});
  }
  {  // Conditional branch targeting one past the end: exit without halt.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 0), make(Op::kMovi, 2, 0, 0, 1),
                      make(Op::kBlt, 1, 2, 0, 3)};
    cases.push_back({"branch-to-end", "branch-exit", 2,
                     check::check_program(p)});
  }
  {  // Three ALU atoms crammed into one molecule (limit is two).
    cms::Program p = {make(Op::kAddi, 1, 0, 0, 1), make(Op::kAddi, 2, 0, 0, 2),
                      make(Op::kAddi, 3, 0, 0, 3), make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 4;
    cms::Molecule m0{};
    m0.atom_pc = {0, 1, 2, 0};
    m0.atoms = 3;
    cms::Molecule m1{};
    m1.atom_pc = {3, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"molecule-resource-limit", "resource-limit", 0,
                     check::verify_translation(p, t)});
  }
  {  // Producer and consumer issued in the same cycle: RAW hazard.
    cms::Program p = {make(Op::kAddi, 1, 0, 0, 1), make(Op::kAdd, 2, 1, 1),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {0, 1, 0, 0};
    m0.atoms = 2;
    cms::Molecule m1{};
    m1.atom_pc = {2, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"intra-molecule-raw-hazard", "intra-molecule-hazard", 1,
                     check::verify_translation(p, t)});
  }
  {  // Consumer scheduled before its producer.
    cms::Program p = {make(Op::kFmul, 1, 2, 3), make(Op::kFadd, 4, 1, 1),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {1, 0, 0, 0};
    m0.atoms = 1;
    cms::Molecule m1{};
    m1.atom_pc = {0, 0, 0, 0};
    m1.atoms = 1;
    cms::Molecule m2{};
    m2.atom_pc = {2, 0, 0, 0};
    m2.atoms = 1;
    t.molecules = {m0, m1, m2};
    cases.push_back({"dependence-order-reversed", "dep-order", 1,
                     check::verify_translation(p, t)});
  }
  {  // Valid schedule with its stall cycles stripped: latency uncovered, so
     // native_cycles() would undercount.
    cms::Program p = {make(Op::kFmul, 1, 2, 3), make(Op::kFadd, 4, 1, 1),
                      make(Op::kHalt)};
    cms::Translator tr;
    cms::Translation t = tr.translate(p, 0);
    for (cms::Molecule& m : t.molecules) m.stall = 0;
    cases.push_back({"cycle-count-mismatch", "cycle-count", 1,
                     check::verify_translation(p, t)});
  }
  {  // Branch atom hiding in a non-final molecule.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                      make(Op::kBlt, 2, 3, 0, 0), make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 2;
    cms::Molecule m0{};
    m0.atom_pc = {1, 0, 0, 0};
    m0.atoms = 1;
    cms::Molecule m1{};
    m1.atom_pc = {0, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"branch-not-last", "branch-placement", 1,
                     check::verify_translation(p, t)});
  }
  {  // An instruction covered twice, another not at all.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kMovi, 2, 0, 0, 2),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {0, 0, 0, 0};
    m0.atoms = 2;
    cms::Molecule m1{};
    m1.atom_pc = {2, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"coverage-duplicate", "coverage", 0,
                     check::verify_translation(p, t)});
  }

  int failures = 0;
  for (const Expectation& c : cases) {
    bool hit = false;
    for (const check::Diagnostic& d : c.report.diagnostics()) {
      if (d.code == c.code && d.instr == c.instr) hit = true;
    }
    if (hit) {
      std::cout << "PASS " << c.name << " (" << c.code << " @" << c.instr
                << ")\n";
    } else {
      ++failures;
      std::cout << "FAIL " << c.name << ": expected " << c.code << " @"
                << c.instr << ", got:\n"
                << (c.report.clean() ? std::string("  (no diagnostics)\n")
                                     : c.report.to_string());
    }
  }
  std::cout << "bladed-lint selftest: " << (cases.size() - failures) << "/"
            << cases.size() << " rejections behaved as expected\n";
  return failures == 0 ? kExitClean : kExitErrors;
}

constexpr const char* kUsage =
    "usage: bladed-lint [mode] [options]\n"
    "modes:\n"
    "  (default)          lint the built-in corpus: program checks,\n"
    "                     translation verification, differential check\n"
    "  --selftest         crafted bad programs/translations must be"
    " rejected\n"
    "  --opt              verified optimizer pipeline over opt_corpus\n"
    "  --prove            whole-program safety analysis over prove_corpus\n"
    "  --prove --selftest seeded unsafe programs must be refuted\n"
    "  --jit              tier-3 dry-run lowering plan over prove_corpus\n"
    "  --wcet             static cycle-bound certificates over prove_corpus\n"
    "  --wcet --selftest  seeded unlicensable loops must be refused\n"
    "options:\n"
    "  --verbose          per-entry detail\n"
    "  --json             with --prove / --wcet: machine-readable reports\n"
    "  --mem-doubles N    override each corpus entry's machine memory\n"
    "exit codes: 0 clean, 1 error findings / failed proof, 2 usage,\n"
    "3 warning findings only, 4 unproven accesses (--prove) or unbounded\n"
    "programs (--wcet)\n";

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  bool opt_mode = false;
  bool prove_mode = false;
  bool jit_mode = false;
  bool wcet_mode = false;
  bool verbose = false;
  bool json = false;
  std::size_t mem_override = 0;
  bladed::cli::Parser parser("bladed-lint", kUsage);
  parser.flag("--selftest", &selftest)
      .flag("--opt", &opt_mode)
      .flag("--prove", &prove_mode)
      .flag("--jit", &jit_mode)
      .flag("--wcet", &wcet_mode)
      .flag("--verbose", &verbose)
      .flag("--json", &json)
      .size_value("--mem-doubles", &mem_override);
  if (const int rc = parser.parse(argc, argv); rc >= 0) return rc;
  if (opt_mode && (selftest || prove_mode)) {
    std::cerr << "bladed-lint: --opt combines with neither --selftest nor"
                 " --prove\n"
              << kUsage;
    return 2;
  }
  if (jit_mode && (selftest || opt_mode || prove_mode || wcet_mode)) {
    std::cerr << "bladed-lint: --jit is a standalone mode\n" << kUsage;
    return 2;
  }
  if (wcet_mode && (opt_mode || prove_mode)) {
    std::cerr << "bladed-lint: --wcet combines only with --selftest\n"
              << kUsage;
    return 2;
  }
  if (wcet_mode && selftest) return run_wcet_selftest();
  if (wcet_mode) return run_wcet(verbose, mem_override, json);
  if (jit_mode) return run_jit(verbose, mem_override);
  if (prove_mode && selftest) return run_prove_selftest();
  if (prove_mode) return run_prove(verbose, mem_override, json);
  if (selftest) return run_selftest();
  if (opt_mode) return run_opt(verbose, mem_override);
  return run_corpus(verbose, mem_override);
}
