/// bladed-lint: static verification driver for the CMS layer.
///
/// Default mode loads the built-in program corpus (cms::lint_corpus) and
/// runs every diagnostic pass over it — program checks (CFG, dataflow,
/// interval analysis), translation verification of every region, and the
/// interpreter-vs-engine differential check. Any finding (warning or error)
/// fails the run: the shipped corpus must be spotless.
///
/// `--selftest` runs the checker against crafted *bad* programs and
/// translations and verifies each one is rejected with the expected
/// diagnostic code at the expected instruction index — the checker checking
/// itself.
///
/// `--opt` runs the verified optimizer pipeline (opt/opt.hpp) over the
/// optimizer corpus (cms::opt_corpus) and reports per-pass instruction
/// deltas plus engine cycle counts at opt_level 0 vs 2 — final machine
/// states must be bit-identical. A rejected pass (a transform whose proof
/// obligation failed) fails the run.
///
/// `--mem-doubles N` overrides each corpus entry's machine memory size.
///
/// Exit codes (stable; CI gates on them): 0 clean, 1 at least one
/// error-severity finding (or a failed optimizer proof), 3 warning-severity
/// findings only, 64 usage error. All three modes are wired into ctest.

#include <cstring>
#include <iostream>
#include <string>

#include "check/check.hpp"
#include "check/differential.hpp"
#include "cms/programs.hpp"
#include "common/rng.hpp"
#include "opt/opt.hpp"

namespace {

using namespace bladed;
using cms::Instr;
using cms::Op;

constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWarnings = 3;
constexpr int kExitUsage = 64;

Instr make(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm_i = imm;
  return in;
}

int run_corpus(bool verbose, std::size_t mem_override) {
  std::size_t findings = 0;
  std::size_t errors = 0;
  for (const cms::NamedProgram& entry : cms::lint_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    check::Report report = check::check_program(entry.program, mem);
    if (report.ok()) {
      report.merge(check::check_translations(entry.program));
      check::DifferentialOptions opt;
      opt.mem_doubles = mem;
      report.merge(check::differential_check(entry.program, opt));
    }
    if (!report.clean()) {
      findings += report.diagnostics().size();
      errors += report.error_count();
      std::cout << entry.name << ": " << report.error_count() << " error(s), "
                << report.warning_count() << " warning(s)\n"
                << report.to_string();
    } else if (verbose) {
      std::cout << entry.name << ": clean (" << entry.program.size()
                << " instructions)\n";
    }
  }
  if (findings != 0) {
    std::cout << "bladed-lint: " << findings << " finding(s), " << errors
              << " error-severity\n";
    return errors != 0 ? kExitErrors : kExitWarnings;
  }
  std::cout << "bladed-lint: corpus clean\n";
  return kExitClean;
}

bool same_bits_d(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// `--opt`: optimize the corpus, print per-pass deltas and the engine cycle
/// counts at opt_level 0 vs 2; final machine states must match bitwise.
int run_opt(bool verbose, std::size_t mem_override) {
  bool failed = false;
  for (const cms::NamedProgram& entry : cms::opt_corpus()) {
    const std::size_t mem =
        mem_override != 0 ? mem_override : entry.mem_doubles;
    opt::OptOptions opts;
    opts.level = 2;
    opts.mem_doubles = mem;
    const opt::OptResult res = opt::optimize(entry.program, opts);

    // Identical memory images; the level-2 engine consumes the optimizer
    // through the MorphingConfig hook, so the run exercises the same path
    // the ablation bench and users take.
    cms::MachineState s0(mem);
    Rng rng(0xb1ade);
    for (double& cell : s0.mem) cell = rng.uniform(-2.0, 2.0);
    cms::MachineState s1 = s0;
    cms::MorphingEngine e0((cms::MorphingConfig()));
    cms::MorphingConfig cfg1;
    cfg1.opt_level = 2;
    cfg1.optimizer = opt::engine_optimizer();
    cms::MorphingEngine e1(cfg1);
    const cms::MorphingStats st0 = e0.run(entry.program, s0);
    const cms::MorphingStats st1 = e1.run(entry.program, s1);

    bool identical = true;
    for (int r = 0; r < 16; ++r) identical &= s0.r[r] == s1.r[r];
    for (int f = 0; f < 8; ++f) identical &= same_bits_d(s0.f[f], s1.f[f]);
    for (std::size_t i = 0; identical && i < s0.mem.size(); ++i) {
      identical = same_bits_d(s0.mem[i], s1.mem[i]);
    }

    const double pct =
        st0.total_cycles == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(st1.total_cycles) -
                   static_cast<double>(st0.total_cycles)) /
                  static_cast<double>(st0.total_cycles);
    std::cout << entry.name << ": instrs " << entry.program.size() << " -> "
              << res.program.size() << ", cycles " << st0.total_cycles
              << " -> " << st1.total_cycles << " ("
              << (pct >= 0 ? "+" : "") << pct << "%), "
              << (identical ? "results identical" : "RESULTS DIVERGE")
              << "\n";
    for (const opt::PassDelta& d : res.deltas) {
      if (d.rejected) {
        std::cout << "  " << d.pass << ": REJECTED — " << d.note << "\n";
        failed = true;
      } else if (d.applied) {
        std::cout << "  " << d.pass << ": applied, " << d.instrs_before
                  << " -> " << d.instrs_after << "\n";
      } else if (verbose) {
        std::cout << "  " << d.pass << ": no change\n";
      }
    }
    if (!identical) failed = true;
  }
  std::cout << (failed ? "bladed-lint --opt: FAILED\n"
                       : "bladed-lint --opt: all proofs held\n");
  return failed ? kExitErrors : kExitClean;
}

/// One selftest case: the checker must emit `code` anchored at `instr`.
struct Expectation {
  std::string name;
  std::string code;
  std::size_t instr;
  check::Report report;
};

int run_selftest() {
  std::vector<Expectation> cases;

  {  // Read of a register no path ever writes (machine zero-fills: warning).
    cms::Program p = {make(Op::kFadd, 0, 1, 2), make(Op::kHalt)};
    cases.push_back({"uninit-register-read", "uninit-read", 0,
                     check::check_program(p)});
  }
  {  // Store whose address is provably past the end of memory.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 100000),
                      make(Op::kFmovi, 0, 0, 0, 0),
                      make(Op::kFstore, 0, 1, 0, 0), make(Op::kHalt)};
    cases.push_back({"oob-store-constant-base", "oob-store", 2,
                     check::check_program(p, 4096)});
  }
  {  // Negative immediate offset off the zero base register.
    cms::Program p = {make(Op::kFload, 0, 0, 0, -3), make(Op::kHalt)};
    cases.push_back({"oob-load-negative-offset", "oob-load", 0,
                     check::check_program(p, 4096)});
  }
  {  // Instruction 1 is jumped over and can never execute.
    cms::Program p = {make(Op::kJmp, 0, 0, 0, 2), make(Op::kMovi, 1, 0, 0, 7),
                      make(Op::kHalt)};
    cases.push_back({"unreachable-block", "unreachable", 1,
                     check::check_program(p)});
  }
  {  // r1 is written twice with no intervening read.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kMovi, 1, 0, 0, 2),
                      make(Op::kAddi, 2, 1, 0, 0), make(Op::kHalt)};
    cases.push_back({"dead-store", "dead-store", 0, check::check_program(p)});
  }
  {  // Conditional branch targeting one past the end: exit without halt.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 0), make(Op::kMovi, 2, 0, 0, 1),
                      make(Op::kBlt, 1, 2, 0, 3)};
    cases.push_back({"branch-to-end", "branch-exit", 2,
                     check::check_program(p)});
  }
  {  // Three ALU atoms crammed into one molecule (limit is two).
    cms::Program p = {make(Op::kAddi, 1, 0, 0, 1), make(Op::kAddi, 2, 0, 0, 2),
                      make(Op::kAddi, 3, 0, 0, 3), make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 4;
    cms::Molecule m0{};
    m0.atom_pc = {0, 1, 2, 0};
    m0.atoms = 3;
    cms::Molecule m1{};
    m1.atom_pc = {3, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"molecule-resource-limit", "resource-limit", 0,
                     check::verify_translation(p, t)});
  }
  {  // Producer and consumer issued in the same cycle: RAW hazard.
    cms::Program p = {make(Op::kAddi, 1, 0, 0, 1), make(Op::kAdd, 2, 1, 1),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {0, 1, 0, 0};
    m0.atoms = 2;
    cms::Molecule m1{};
    m1.atom_pc = {2, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"intra-molecule-raw-hazard", "intra-molecule-hazard", 1,
                     check::verify_translation(p, t)});
  }
  {  // Consumer scheduled before its producer.
    cms::Program p = {make(Op::kFmul, 1, 2, 3), make(Op::kFadd, 4, 1, 1),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {1, 0, 0, 0};
    m0.atoms = 1;
    cms::Molecule m1{};
    m1.atom_pc = {0, 0, 0, 0};
    m1.atoms = 1;
    cms::Molecule m2{};
    m2.atom_pc = {2, 0, 0, 0};
    m2.atoms = 1;
    t.molecules = {m0, m1, m2};
    cases.push_back({"dependence-order-reversed", "dep-order", 1,
                     check::verify_translation(p, t)});
  }
  {  // Valid schedule with its stall cycles stripped: latency uncovered, so
     // native_cycles() would undercount.
    cms::Program p = {make(Op::kFmul, 1, 2, 3), make(Op::kFadd, 4, 1, 1),
                      make(Op::kHalt)};
    cms::Translator tr;
    cms::Translation t = tr.translate(p, 0);
    for (cms::Molecule& m : t.molecules) m.stall = 0;
    cases.push_back({"cycle-count-mismatch", "cycle-count", 1,
                     check::verify_translation(p, t)});
  }
  {  // Branch atom hiding in a non-final molecule.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1),
                      make(Op::kBlt, 2, 3, 0, 0), make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 2;
    cms::Molecule m0{};
    m0.atom_pc = {1, 0, 0, 0};
    m0.atoms = 1;
    cms::Molecule m1{};
    m1.atom_pc = {0, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"branch-not-last", "branch-placement", 1,
                     check::verify_translation(p, t)});
  }
  {  // An instruction covered twice, another not at all.
    cms::Program p = {make(Op::kMovi, 1, 0, 0, 1), make(Op::kMovi, 2, 0, 0, 2),
                      make(Op::kHalt)};
    cms::Translation t;
    t.entry_pc = 0;
    t.instr_count = 3;
    cms::Molecule m0{};
    m0.atom_pc = {0, 0, 0, 0};
    m0.atoms = 2;
    cms::Molecule m1{};
    m1.atom_pc = {2, 0, 0, 0};
    m1.atoms = 1;
    t.molecules = {m0, m1};
    cases.push_back({"coverage-duplicate", "coverage", 0,
                     check::verify_translation(p, t)});
  }

  int failures = 0;
  for (const Expectation& c : cases) {
    bool hit = false;
    for (const check::Diagnostic& d : c.report.diagnostics()) {
      if (d.code == c.code && d.instr == c.instr) hit = true;
    }
    if (hit) {
      std::cout << "PASS " << c.name << " (" << c.code << " @" << c.instr
                << ")\n";
    } else {
      ++failures;
      std::cout << "FAIL " << c.name << ": expected " << c.code << " @"
                << c.instr << ", got:\n"
                << (c.report.clean() ? std::string("  (no diagnostics)\n")
                                     : c.report.to_string());
    }
  }
  std::cout << "bladed-lint selftest: " << (cases.size() - failures) << "/"
            << cases.size() << " rejections behaved as expected\n";
  return failures == 0 ? kExitClean : kExitErrors;
}

int usage() {
  std::cerr << "usage: bladed-lint [--selftest | --opt] [--verbose]"
               " [--mem-doubles N]\n"
               "exit codes: 0 clean, 1 error findings / failed optimizer"
               " proof, 3 warning findings only, 64 usage\n";
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  bool opt_mode = false;
  bool verbose = false;
  std::size_t mem_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest = true;
    } else if (std::strcmp(argv[i], "--opt") == 0) {
      opt_mode = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--mem-doubles") == 0 && i + 1 < argc) {
      try {
        mem_override = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
      if (mem_override == 0) return usage();
    } else {
      return usage();
    }
  }
  if (selftest && opt_mode) return usage();
  if (selftest) return run_selftest();
  if (opt_mode) return run_opt(verbose, mem_override);
  return run_corpus(verbose, mem_override);
}
