/// bladed-load: open-loop load generator (and chaos injector) for
/// bladed-serve. Arrivals fire at the configured rate regardless of server
/// latency; a seeded fraction of them are replaced by chaos connections
/// (garbage bytes, mid-request stalls, mid-request drops). Prints a human
/// summary, or one JSON object with every counter under --json (the CI soak
/// job uploads that as its artifact).

#include <cstdio>

#include "cli.hpp"
#include "serve/json.hpp"
#include "serve/loadgen.hpp"

namespace {

constexpr const char* kUsage =
    "usage: bladed-load --port N [options]\n"
    "  --port N          bladed-serve port on 127.0.0.1 (required)\n"
    "  --rps R           open-loop arrival rate (default 20)\n"
    "  --duration SECS   open-loop length (default 5)\n"
    "  --burst N         instead: N simultaneous requests, then stop\n"
    "  --seed S          chaos/body RNG seed (same seed = same mix)\n"
    "  --p-garbage P     probability an arrival sends garbage bytes\n"
    "  --p-stall P       probability an arrival stalls mid-request\n"
    "  --p-drop P        probability an arrival drops mid-request\n"
    "  --stall SECS      how long a stalling client holds the socket\n"
    "  --timeout SECS    per-request client timeout\n"
    "  --ranks N --particles N --steps N   request shape\n"
    "  --spread N        rotate request seeds over N configs (default 8)\n"
    "  --json            machine-readable report on stdout\n";

}  // namespace

int main(int argc, char** argv) {
  bladed::serve::LoadOptions opt;
  int port = 0;
  bool json = false;
  int ranks = 4;
  int particles = 256;
  int steps = 1;
  int spread = 8;

  bladed::cli::Parser p("bladed-load", kUsage);
  p.int_value("--port", &port, 1, 65535)
      .double_value("--rps", &opt.rps, 0.001, 1e6)
      .double_value("--duration", &opt.duration_seconds, 0.0, 86400)
      .int_value("--burst", &opt.burst, 0, 1 << 20)
      .u64_value("--seed", &opt.seed)
      .double_value("--p-garbage", &opt.p_garbage, 0.0, 1.0)
      .double_value("--p-stall", &opt.p_stall, 0.0, 1.0)
      .double_value("--p-drop", &opt.p_drop, 0.0, 1.0)
      .double_value("--stall", &opt.stall_seconds, 0.0, 3600)
      .double_value("--timeout", &opt.client_timeout_seconds, 0.01, 3600)
      .int_value("--ranks", &ranks, 1, 64)
      .int_value("--particles", &particles, 64, 1000000)
      .int_value("--steps", &steps, 1, 200)
      .int_value("--spread", &spread, 1, 1 << 20)
      .flag("--json", &json);
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;
  if (port == 0) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  opt.port = static_cast<std::uint16_t>(port);
  opt.body = [ranks, particles, steps, spread](std::uint64_t i) {
    return "{\"workload\":\"treecode\",\"arch\":\"TM5600\",\"ranks\":" +
           std::to_string(ranks) +
           ",\"particles\":" + std::to_string(particles) +
           ",\"steps\":" + std::to_string(steps) + ",\"seed\":" +
           std::to_string(i % static_cast<std::uint64_t>(spread) + 1) + "}";
  };

  try {
    const bladed::serve::LoadReport r = bladed::serve::run_load(opt);
    if (json) {
      bladed::serve::Json j = bladed::serve::Json::object();
      j.set("sent", r.sent)
          .set("completed", r.completed)
          .set("ok", r.ok)
          .set("degraded", r.degraded)
          .set("cached", r.cached)
          .set("shed", r.shed)
          .set("timeouts", r.timeouts)
          .set("errors_4xx", r.errors_4xx)
          .set("errors_5xx", r.errors_5xx)
          .set("resets", r.resets)
          .set("client_timeouts", r.client_timeouts)
          .set("chaos_garbage", r.chaos_garbage)
          .set("chaos_stall", r.chaos_stall)
          .set("chaos_drop", r.chaos_drop)
          .set("p50_ms", r.p50_ms)
          .set("p99_ms", r.p99_ms)
          .set("max_ms", r.max_ms);
      std::printf("%s\n", j.dump().c_str());
    } else {
      std::printf(
          "bladed-load: sent=%llu completed=%llu ok=%llu degraded=%llu "
          "cached=%llu shed=%llu timeouts=%llu 4xx=%llu 5xx=%llu "
          "resets=%llu client_timeouts=%llu\n"
          "chaos: garbage=%llu stall=%llu drop=%llu\n"
          "latency: p50=%.1fms p99=%.1fms max=%.1fms (%zu samples)\n",
          static_cast<unsigned long long>(r.sent),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.ok),
          static_cast<unsigned long long>(r.degraded),
          static_cast<unsigned long long>(r.cached),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.timeouts),
          static_cast<unsigned long long>(r.errors_4xx),
          static_cast<unsigned long long>(r.errors_5xx),
          static_cast<unsigned long long>(r.resets),
          static_cast<unsigned long long>(r.client_timeouts),
          static_cast<unsigned long long>(r.chaos_garbage),
          static_cast<unsigned long long>(r.chaos_stall),
          static_cast<unsigned long long>(r.chaos_drop), r.p50_ms, r.p99_ms,
          r.max_ms, r.latencies_ms.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bladed-load: %s\n", e.what());
    return 1;
  }
  return 0;
}
