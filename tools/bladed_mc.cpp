/// bladed-mc: stateless DPOR model checker for the engine's concurrency
/// protocols (src/mc/).
///
/// `--protocol handshake|recv-fastpath|slot-pool` explores every
/// inequivalent interleaving of the named protocol model (handshake runs
/// both of its scenarios) and exits 0 only if no interleaving deadlocks,
/// loses a wakeup, races, or breaks a model assertion. `--ranks` / `--slots`
/// scale the model (2-4 ranks, 1-2 slots); `--stats` prints explored /
/// pruned interleaving counts.
///
/// `--selftest` runs the seeded-bug corpus: every deliberately broken
/// protocol variant (dropped seq_cst, missing re-check after publish, early
/// slot release, ...) must be refuted with a counterexample trace, and every
/// shipped (bug-free) protocol must verify clean with a complete
/// exploration — the checker checking itself.
///
/// `--bug <name>` explores a seeded variant directly (exits 1 when the
/// violation is found, printing the replayable schedule); `--replay
/// a,b,c,...` re-executes one specific interleaving, e.g. a counterexample
/// schedule printed by a failing run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli.hpp"
#include "mc/explorer.hpp"
#include "mc/protocols.hpp"

namespace {

using namespace bladed;

struct Args {
  bool selftest = false;
  bool stats = false;
  bool have_protocol = false;
  mc::ModelConfig cfg;
  std::string scenario;  // restrict handshake to one scenario by model name
  std::vector<int> replay;
  bool have_replay = false;
  long budget = 0;  // 0: Explorer default
};

constexpr const char* kUsage =
    "usage: bladed-mc --selftest [--stats]\n"
    "       bladed-mc --protocol handshake|recv-fastpath|slot-pool\n"
    "                 [--bug <name>] [--ranks 2-4] [--slots 1-2]\n"
    "                 [--scenario <model-name>] [--stats]\n"
    "                 [--budget <max-executions>] [--replay a,b,c,...]\n";

void usage() { std::fputs(kUsage, stderr); }

bool parse_schedule(const std::string& s, std::vector<int>* out) {
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t end = s.find(',', i);
    if (end == std::string::npos) end = s.size();
    try {
      out->push_back(std::stoi(s.substr(i, end - i)));
    } catch (...) {
      return false;
    }
    i = end + 1;
  }
  return !out->empty();
}

void print_stats(const mc::ExploreStats& st) {
  std::printf(
      "    stats: %ld interleavings explored, %ld sleep-set pruned, "
      "%ld transitions, %ld backtrack points, exploration %s\n",
      st.executions, st.sleep_pruned, st.transitions, st.backtrack_points,
      st.complete ? "complete" : "budget-capped");
}

/// Explore every model of one protocol config; returns the first violation.
struct ProtocolVerdict {
  bool violated = false;
  std::string model;
  mc::ExploreResult result;
  mc::ExploreStats total;
  bool all_complete = true;
};

ProtocolVerdict explore_protocol(const mc::ModelConfig& cfg,
                                 const std::string& only_scenario,
                                 long budget = 0) {
  ProtocolVerdict v;
  for (const mc::Model& m : mc::build_models(cfg)) {
    if (!only_scenario.empty() && m.name != only_scenario) continue;
    mc::Explorer::Options opt;
    if (budget > 0) opt.max_executions = budget;
    mc::Explorer ex(opt);
    mc::ExploreResult r = ex.explore(m);
    v.total.executions += r.stats.executions;
    v.total.transitions += r.stats.transitions;
    v.total.sleep_pruned += r.stats.sleep_pruned;
    v.total.backtrack_points += r.stats.backtrack_points;
    v.all_complete = v.all_complete && (r.stats.complete || r.violation);
    if (r.violation && !v.violated) {
      v.violated = true;
      v.model = m.name;
      v.result = std::move(r);
    }
  }
  v.total.complete = v.all_complete;
  return v;
}

void print_violation(const ProtocolVerdict& v, const mc::ModelConfig& cfg) {
  std::printf("  model %s (ranks=%d slots=%d bug=%s): %s\n", v.model.c_str(),
              cfg.ranks, cfg.slots, mc::bug_name(cfg.bug),
              v.result.violation->kind.c_str());
  std::printf("  %s\n", v.result.violation->message.c_str());
  for (const std::string& s : v.result.end_states) {
    std::printf("    %s\n", s.c_str());
  }
  std::printf("  counterexample schedule:\n%s", v.result.schedule.c_str());
}

int run_selftest(bool stats) {
  int failures = 0;

  // Every shipped protocol must verify clean, with the reduced state space
  // fully explored (so "0 violations" is a proof over the model, not a
  // sampling claim).
  struct CleanCase {
    mc::Protocol protocol;
    int ranks;
    int slots;
  };
  // Slot-pool configs beyond 2 ranks explode past any test-time budget (a
  // 4th actor multiplies the unordered dependent pairs); deeper configs stay
  // reachable via `--protocol slot-pool --ranks 3 --budget N` on the CLI.
  const std::vector<CleanCase> clean = {
      {mc::Protocol::kHandshake, 2, 1},  {mc::Protocol::kHandshake, 3, 1},
      {mc::Protocol::kRecvFastpath, 2, 1}, {mc::Protocol::kRecvFastpath, 3, 1},
      {mc::Protocol::kSlotPool, 2, 1},   {mc::Protocol::kSlotPool, 2, 2},
  };
  for (const CleanCase& c : clean) {
    mc::ModelConfig cfg;
    cfg.protocol = c.protocol;
    cfg.ranks = c.ranks;
    cfg.slots = c.slots;
    const ProtocolVerdict v = explore_protocol(cfg, "");
    const bool ok = !v.violated && v.all_complete;
    std::printf("[%s] verify %s ranks=%d slots=%d (%ld interleavings)\n",
                ok ? "PASS" : "FAIL", mc::protocol_name(c.protocol), c.ranks,
                c.slots, v.total.executions);
    if (stats) print_stats(v.total);
    if (v.violated) {
      print_violation(v, cfg);
      ++failures;
    } else if (!v.all_complete) {
      std::printf("  exploration did not complete within budget\n");
      ++failures;
    }
  }

  // Every seeded bug must be refuted: the checker has to find at least one
  // interleaving that deadlocks, races, or breaks an assertion.
  for (const mc::SeededBug& sb : mc::seeded_bug_corpus()) {
    mc::ModelConfig cfg;
    cfg.protocol = sb.protocol;
    cfg.bug = sb.bug;
    cfg.ranks = 2;
    cfg.slots = 1;
    const ProtocolVerdict v = explore_protocol(cfg, "");
    std::printf("[%s] refute %s (%s)\n", v.violated ? "PASS" : "FAIL",
                sb.name, sb.description);
    if (stats) print_stats(v.total);
    if (v.violated) {
      std::printf("    counterexample: %s in model %s after %ld "
                  "interleavings\n",
                  v.result.violation->kind.c_str(), v.model.c_str(),
                  v.total.executions);
    } else {
      std::printf("    expected a violation but the variant verified "
                  "clean\n");
      ++failures;
    }
  }

  if (failures) {
    std::printf("mc selftest: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("mc selftest: all shipped protocols verified, all %zu seeded "
              "bugs refuted\n",
              mc::seeded_bug_corpus().size());
  return 0;
}

int run_replay(const Args& args) {
  const std::vector<mc::Model> models = mc::build_models(args.cfg);
  const mc::Model* chosen = nullptr;
  for (const mc::Model& m : models) {
    if (args.scenario.empty() || m.name == args.scenario) {
      chosen = &m;
      break;
    }
  }
  if (!chosen) {
    std::fprintf(stderr, "bladed-mc: no model named '%s'\n",
                 args.scenario.c_str());
    return 2;
  }
  mc::Explorer ex;
  mc::Executor::Result res = ex.replay(*chosen, args.replay);
  std::printf("replaying %s (%zu scheduled steps):\n", chosen->name.c_str(),
              args.replay.size());
  for (const std::string& s : res.end_states) {
    std::printf("  %s\n", s.c_str());
  }
  if (res.violation) {
    std::printf("violation: %s: %s\n", res.violation->kind.c_str(),
                res.violation->message.c_str());
    return 1;
  }
  std::printf("replay ran to completion with no violation\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  int budget = 0;
  bladed::cli::Parser p("bladed-mc", kUsage);
  p.flag("--selftest", &args.selftest)
      .flag("--stats", &args.stats)
      .value("--protocol",
             [&](const char* v) {
               if (!mc::parse_protocol(v, &args.cfg.protocol)) {
                 usage();
                 return false;
               }
               args.have_protocol = true;
               return true;
             })
      .value("--bug",
             [&](const char* v) {
               if (!mc::parse_bug(v, &args.cfg.bug)) {
                 usage();
                 return false;
               }
               return true;
             })
      .int_value("--ranks", &args.cfg.ranks, 2, 4)
      .int_value("--slots", &args.cfg.slots, 1, 2)
      .int_value("--budget", &budget, 1, 1 << 30)
      .string_value("--scenario", &args.scenario)
      .value("--replay", [&](const char* v) {
        if (!parse_schedule(v, &args.replay)) {
          usage();
          return false;
        }
        args.have_replay = true;
        return true;
      });
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;
  if (budget > 0) args.budget = budget;

  if (args.selftest) return run_selftest(args.stats);
  if (!args.have_protocol) {
    usage();
    return 2;
  }
  if (args.have_replay) return run_replay(args);

  const ProtocolVerdict v =
      explore_protocol(args.cfg, args.scenario, args.budget);
  std::printf("protocol %s (ranks=%d slots=%d bug=%s): %s\n",
              mc::protocol_name(args.cfg.protocol), args.cfg.ranks,
              args.cfg.slots, mc::bug_name(args.cfg.bug),
              v.violated ? "VIOLATION"
                         : (v.all_complete ? "verified (0 violations)"
                                           : "no violation (budget-capped)"));
  if (args.stats) print_stats(v.total);
  if (v.violated) {
    print_violation(v, args.cfg);
    return 1;
  }
  return v.all_complete ? 0 : 3;
}
