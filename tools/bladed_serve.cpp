/// bladed-serve: the long-lived simulation service. Binds 127.0.0.1, prints
/// the bound port (scripts scrape it when --port 0), and serves until
/// SIGTERM/SIGINT triggers a graceful drain: stop accepting, finish
/// in-flight simulations within --drain-timeout, cancel the rest, exit 0.

#include <cstdio>

#include "cli.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kUsage =
    "usage: bladed-serve [options]\n"
    "  --port N            listen port (0 = ephemeral; printed at startup)\n"
    "  --workers N         concurrent simulations (0 = host threads)\n"
    "  --queue N           admission queue depth beyond the workers\n"
    "  --cache N           result-cache (session) capacity\n"
    "  --fresh SECS        cached results younger than this answer repeats\n"
    "  --deadline SECS     default per-request deadline\n"
    "  --read-timeout SECS   slow-client cutoff (request must arrive)\n"
    "  --idle-timeout SECS   keep-alive idle cutoff\n"
    "  --write-timeout SECS  response flush cutoff\n"
    "  --drain-timeout SECS  grace for in-flight work on SIGTERM\n"
    "  --retry-after SECS  Retry-After value on 429/503\n"
    "  --max-connections N\n"
    "endpoints: GET /healthz /readyz /stats, POST /v1/simulate\n";

}  // namespace

int main(int argc, char** argv) {
  bladed::serve::ServerOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 8;
  int port = 0;
  int max_conns = static_cast<int>(opt.max_connections);

  bladed::cli::Parser p("bladed-serve", kUsage);
  p.int_value("--port", &port, 0, 65535)
      .int_value("--workers", &opt.workers, 0, 256)
      .size_value("--queue", &opt.queue_capacity)
      .size_value("--cache", &opt.cache_capacity)
      .double_value("--fresh", &opt.cache_fresh_seconds, 0.0, 1e9)
      .double_value("--deadline", &opt.default_deadline_seconds, 0.001, 3600)
      .double_value("--read-timeout", &opt.read_timeout_seconds, 0.01, 3600)
      .double_value("--idle-timeout", &opt.idle_timeout_seconds, 0.01, 3600)
      .double_value("--write-timeout", &opt.write_timeout_seconds, 0.01,
                    3600)
      .double_value("--drain-timeout", &opt.drain_timeout_seconds, 0.0, 3600)
      .int_value("--retry-after", &opt.retry_after_seconds, 0, 3600)
      .int_value("--max-connections", &max_conns, 1, 65536);
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;
  opt.port = static_cast<std::uint16_t>(port);
  opt.max_connections = static_cast<std::size_t>(max_conns);

  try {
    bladed::serve::Server server(opt);
    bladed::serve::Server::install_signal_handlers(&server);
    std::printf(
        "bladed-serve listening on 127.0.0.1:%u (workers=%d queue=%zu)\n",
        server.port(), opt.workers, opt.queue_capacity);
    std::fflush(stdout);
    server.run();
    const bladed::serve::ServerStats s = server.stats();
    std::printf(
        "bladed-serve drained: requests=%llu completed=%llu shed=%llu "
        "degraded=%llu timeouts=%llu\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.degraded_cached + s.degraded_approx),
        static_cast<unsigned long long>(s.deadline_timeouts));
    bladed::serve::Server::install_signal_handlers(nullptr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bladed-serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
