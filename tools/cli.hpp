#pragma once

/// Shared argv handling for the bladed-* tools. Every tool had grown the
/// same hand-rolled loop (string compare, bounds-checked value fetch,
/// usage-and-exit-2 on anything unknown); this is that loop once, driven by
/// a declarative option table:
///
///   bladed::cli::Parser p("bladed-serve", usage_text);
///   p.flag("--verbose", &verbose)
///    .int_value("--ranks", &ranks, 1, 64)
///    .value("--protocol", [&](const char* v) { return parse(v, &proto); });
///   if (const int rc = p.parse(argc, argv); rc >= 0) return rc;
///
/// parse() returns -1 to proceed, 0 after printing usage for --help/-h, and
/// 2 for unknown options, missing values, or failed conversions.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace bladed::cli {

class Parser {
 public:
  Parser(std::string tool, std::string usage)
      : tool_(std::move(tool)), usage_(std::move(usage)) {}

  /// Presence option: `--name` sets *out = true.
  Parser& flag(const char* name, bool* out) {
    opts_.push_back({name, [out](const char*) {
                       *out = true;
                       return true;
                     },
                     false});
    return *this;
  }

  /// Valued option: `--name V` calls fn(V); fn returns false to reject.
  Parser& value(const char* name, std::function<bool(const char*)> fn) {
    opts_.push_back({name, std::move(fn), true});
    return *this;
  }

  Parser& string_value(const char* name, std::string* out) {
    return value(name, [out](const char* v) {
      *out = v;
      return true;
    });
  }

  Parser& int_value(const char* name, int* out, int lo, int hi) {
    return value(name, [this, name, out, lo, hi](const char* v) {
      char* end = nullptr;
      const long x = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || x < lo || x > hi) {
        std::fprintf(stderr, "%s: %s must be an integer in [%d, %d]\n",
                     tool_.c_str(), name, lo, hi);
        return false;
      }
      *out = static_cast<int>(x);
      return true;
    });
  }

  Parser& u64_value(const char* name, std::uint64_t* out) {
    return value(name, [this, name, out](const char* v) {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "%s: %s must be a non-negative integer\n",
                     tool_.c_str(), name);
        return false;
      }
      *out = x;
      return true;
    });
  }

  Parser& size_value(const char* name, std::size_t* out) {
    return value(name, [this, name, out](const char* v) {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "%s: %s must be a non-negative integer\n",
                     tool_.c_str(), name);
        return false;
      }
      *out = static_cast<std::size_t>(x);
      return true;
    });
  }

  Parser& double_value(const char* name, double* out, double lo, double hi) {
    return value(name, [this, name, out, lo, hi](const char* v) {
      char* end = nullptr;
      const double x = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(x >= lo) || !(x <= hi)) {
        std::fprintf(stderr, "%s: %s must be a number in [%g, %g]\n",
                     tool_.c_str(), name, lo, hi);
        return false;
      }
      *out = x;
      return true;
    });
  }

  /// -1 = parsed fine, proceed; otherwise the exit code for main to return.
  [[nodiscard]] int parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        std::fputs(usage_.c_str(), stdout);
        return 0;
      }
      const Opt* match = nullptr;
      for (const Opt& o : opts_) {
        if (o.name == a) {
          match = &o;
          break;
        }
      }
      if (match == nullptr) {
        std::fprintf(stderr, "%s: unknown option '%s'\n", tool_.c_str(), a);
        std::fputs(usage_.c_str(), stderr);
        return 2;
      }
      const char* v = nullptr;
      if (match->takes_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: %s needs a value\n", tool_.c_str(), a);
          return 2;
        }
        v = argv[++i];
      }
      if (!match->handle(v)) return 2;
    }
    return -1;
  }

 private:
  struct Opt {
    std::string name;
    std::function<bool(const char*)> handle;
    bool takes_value;
  };

  std::string tool_;
  std::string usage_;
  std::vector<Opt> opts_;
};

}  // namespace bladed::cli
